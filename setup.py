"""Setup shim so editable installs work without the `wheel` package.

The environment is offline; `pip install -e .` falls back to this legacy
path (PEP 660 editable wheels need `wheel`, which is not installed).
"""
from setuptools import setup

setup()
