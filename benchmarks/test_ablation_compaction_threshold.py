"""Ablation — the deletion-window compaction threshold (§4.2.1's "3 or more").

The paper fixes the minimum compactable run at 3 expired VRs.  Why 3?  A
window costs two stored signatures (plus a random window ID) and two SCPU
signatures to create; a run of length L frees L stored deletion proofs.
At L=2 the storage trade is a wash (2 proofs out, 2 bound signatures in)
while still costing SCPU verifications + signatures — strictly a loss; at
L=3 it begins to pay.  This ablation sweeps the threshold over a
mixed-retention workload and reports stored bytes and SCPU cost, showing
3 as the break-even the paper chose.
"""

from __future__ import annotations

import pytest

from repro.core.windows import WindowManager
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy

_THRESHOLDS = [3, 5, 9]
_RECORDS = 100


def _store_with_mixed_expiry(keyring, threshold):
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(keyring)))
    store.windows.compaction_threshold = threshold
    for i in range(_RECORDS):
        # Expired-run lengths cycle 2,4,6,8 between long-lived anchors,
        # so different thresholds compact different subsets.
        cycle = (i % 22)
        long_lived = cycle in (0, 3, 8, 15)
        store.write([b"r" * 64],
                    retention_seconds=1e9 if long_lived else 10.0)
    store.scpu.clock.advance(60.0)
    store.retention.tick(store.now)
    return store


@pytest.fixture(scope="module")
def sweep(paper_keyring):
    rows = {}
    for threshold in _THRESHOLDS:
        store = _store_with_mixed_expiry(paper_keyring, threshold)
        mark = store.scpu.meter.checkpoint()
        windows = store.windows.compact_expired_runs()
        scpu_cost = store.scpu.meter.delta(mark)
        rows[threshold] = {
            "windows": windows,
            "proofs_left": store.vrdt.proof_count(),
            "bytes": store.vrdt.estimated_bytes(),
            "scpu_ms": scpu_cost * 1000,
        }
    return rows


def test_threshold_sweep_table(sweep, benchmark):
    rows = [[str(t), str(r["windows"]), str(r["proofs_left"]),
             str(r["bytes"]), f"{r['scpu_ms']:.1f}"]
            for t, r in sweep.items()]
    print()
    print(format_table(
        ["threshold", "windows", "proofs left", "VRDT bytes", "SCPU ms"],
        rows, title="Compaction threshold ablation (mixed expiry runs)"))
    benchmark(lambda: None)


def test_lower_threshold_fewer_stored_proofs(sweep, benchmark):
    proofs = [sweep[t]["proofs_left"] for t in _THRESHOLDS]
    assert proofs == sorted(proofs)  # higher threshold → more proofs remain
    benchmark(lambda: None)


def test_lower_threshold_smaller_table(sweep, benchmark):
    sizes = [sweep[t]["bytes"] for t in _THRESHOLDS]
    assert sizes == sorted(sizes)
    benchmark(lambda: None)


def test_paper_minimum_is_enforced(benchmark, paper_keyring):
    """Thresholds below 3 are rejected outright — a window of 2 never pays."""
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    with pytest.raises(ValueError):
        WindowManager(store.scpu, store.vrdt, compaction_threshold=2)
    benchmark(lambda: None)
