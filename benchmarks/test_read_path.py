"""Read-path throughput — the "reads never touch the SCPU" design (§4.1).

"The SCPU is involved in *updates* only but not in *reads*, thus
minimizing the overhead for a query load dominated by read queries."
This benchmark sweeps the read fraction of a mixed workload and shows:

* read throughput is bounded by host/disk, not by the card;
* the SCPU's utilization falls linearly with the write fraction;
* adding WORM verification at the *client* costs client CPU, not store
  throughput (verification is embarrassingly parallel across clients).
"""

from __future__ import annotations

import pytest

from repro.sim.driver import SimulationConfig, make_sim_store, run_open_loop
from repro.sim.metrics import format_table
from repro.sim.workload import FixedSize, MixedWorkload

from conftest import fresh_keyring_copy

_READ_FRACTIONS = [0.0, 0.5, 0.9, 0.99]
_COUNT = 400
_RATE = 300.0


def _run(keyring, read_fraction):
    config = SimulationConfig(disk_count=32, host_count=8)
    simstore = make_sim_store(config=config, keyring=keyring)
    workload = MixedWorkload(rate=_RATE, read_fraction=read_fraction,
                             size_dist=FixedSize(4096), count=_COUNT, seed=21)
    metrics = run_open_loop(simstore, workload, config=config,
                            write_kwargs={"defer_data_hash": True})
    return metrics, simstore


@pytest.fixture(scope="module")
def sweep(paper_keyring):
    return {fraction: _run(fresh_keyring_copy(paper_keyring), fraction)
            for fraction in _READ_FRACTIONS}


def test_read_mix_table(sweep, benchmark):
    rows = []
    for fraction, (metrics, simstore) in sweep.items():
        util = simstore.utilization(simstore.sim.now)
        rows.append([
            f"{fraction:.0%}",
            f"{metrics.throughput():.0f}",
            f"{metrics.latency_summary('read')['p99'] * 1000:.1f}"
            if metrics.count("read") else "-",
            f"{util['scpu']:.2f}",
            f"{util['disk']:.2f}",
        ])
    print()
    print(format_table(
        ["read fraction", "total req/s", "read p99 ms", "scpu util",
         "disk util"],
        rows, title=f"Mixed workload at {_RATE:.0f} req/s (4KB records)"))
    benchmark(lambda: None)


def test_scpu_load_falls_with_read_fraction(sweep, benchmark):
    utils = [simstore.utilization(simstore.sim.now)["scpu"]
             for _, simstore in sweep.values()]
    assert utils == sorted(utils, reverse=True)
    # At 99% reads the card is essentially idle.
    assert utils[-1] < 0.05
    benchmark(lambda: None)


def test_read_heavy_load_sustained(sweep, benchmark):
    """At 99% reads, the full offered 300 req/s flows without queueing."""
    metrics, _ = sweep[0.99]
    assert metrics.throughput() > 0.9 * _RATE
    summary = metrics.latency_summary("read")
    assert summary["p99"] < 0.05
    benchmark(lambda: None)


def test_reads_cost_zero_scpu_seconds(sweep, benchmark):
    """Functional check on the model: read cost attribution is SCPU-free."""
    metrics, simstore = sweep[0.99]
    store = simstore.store
    marks = store._cost_checkpoints()
    store.read(1)
    costs = store._cost_delta(marks)
    assert costs["scpu"] == 0.0
    assert costs["disk"] > 0.0
    benchmark(lambda: None)
