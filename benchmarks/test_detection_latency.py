"""Operational security — how fast does auditing catch an insider?

Theorems 1 and 2 guarantee tampering is *detectable*; operationally what
matters is detection **latency**: the gap between the insider's act and
the first failed verification.  Two consumer behaviours bound it:

* **read-triggered**: a client touching the tampered record detects it
  immediately — latency is the record's inter-read time;
* **audit-triggered**: a scheduled full sweep (the
  :class:`~repro.core.audit.StoreAuditor`) bounds worst-case latency by
  the audit period, independent of read traffic.

This benchmark tampers with random records at random (virtual) times
under a periodic audit schedule and measures the discovery-delay
distribution — the operational complement to the paper's theorems.
"""

from __future__ import annotations

import random

import pytest

from repro.core.audit import StoreAuditor
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.metrics import format_table, summarize_latencies

from conftest import fresh_keyring_copy

_AUDIT_PERIOD = 3600.0       # hourly sweeps
_TRIALS = 24


@pytest.fixture(scope="module")
def latencies(paper_keyring):
    rng = random.Random(1234)
    ca = CertificateAuthority(bits=512)
    delays = []
    for _ in range(_TRIALS):
        store = StrongWormStore(
            scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
        client = store.make_client(ca, freshness_window=2 * _AUDIT_PERIOD)
        receipts = [store.write([bytes([i]) * 64], retention_seconds=1e9)
                    for i in range(8)]
        # The insider strikes at a random offset into the audit period.
        strike_offset = rng.uniform(0.0, _AUDIT_PERIOD)
        victim = rng.choice(receipts)
        store.scpu.clock.advance(strike_offset)
        store.blocks.unchecked_overwrite(victim.vrd.rdl[0].key,
                                         b"\xff" * 64)
        strike_time = store.now
        # Audits run on the hour; find the first that detects.
        detected_at = None
        for sweep in range(1, 4):
            next_audit = sweep * _AUDIT_PERIOD
            if next_audit < strike_time:
                continue
            store.scpu.clock.advance(next_audit - store.now)
            store.windows.refresh_current(force=True)
            report = StoreAuditor(store, client).sweep()
            if not report.clean:
                detected_at = store.now
                break
        assert detected_at is not None, "audit never caught the tamper"
        delays.append(detected_at - strike_time)
    return delays


def test_detection_latency_table(latencies, benchmark):
    summary = summarize_latencies(latencies)
    rows = [[k, f"{v:.0f}"] for k, v in summary.items()]
    print()
    print(format_table(
        ["statistic", "seconds"], rows,
        title=(f"Detection latency under hourly audits "
               f"({_TRIALS} insider strikes)")))
    benchmark(lambda: None)


def test_latency_bounded_by_audit_period(latencies, benchmark):
    """Worst case: caught by the first sweep after the strike."""
    assert max(latencies) <= _AUDIT_PERIOD + 1.0
    benchmark(lambda: None)


def test_mean_latency_about_half_period(latencies, benchmark):
    """Strikes are uniform in the period → mean delay ≈ period/2."""
    mean = sum(latencies) / len(latencies)
    assert 0.25 * _AUDIT_PERIOD < mean < 0.75 * _AUDIT_PERIOD
    benchmark(lambda: None)


def test_read_triggered_detection_is_immediate(paper_keyring, benchmark):
    ca = CertificateAuthority(bits=512)
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    client = store.make_client(ca)
    receipt = store.write([b"watched record"], retention_seconds=1e9)
    store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"tampered!!!!!!")
    from repro.core.errors import VerificationError
    with pytest.raises(VerificationError):
        client.verify_read(store.read(receipt.sn), receipt.sn)
    benchmark(lambda: None)
