"""Theorems 1 and 2 — the security game as a benchmark.

Runs the full insider attack suite (§2.1's Mallory, with superuser powers
and direct physical access to untrusted state) and prints the detection
table.  The reproduction targets:

* **Theorem 1**: every alter/remove attack is detected by verifying
  clients;
* **Theorem 2**: every hiding attack is detected — except within the
  *designed* freshness exposure window (§4.2.1 mechanism (ii)), which is
  reported explicitly, not hidden.

The benchmark unit is one full client-side read verification (two RSA
verifies + hash recomputation) — the cost Bob pays per audited record.
"""

from __future__ import annotations

import pytest

from repro.adversary.games import fresh_environment, run_suite
from repro.sim.metrics import format_table


@pytest.fixture(scope="module")
def suite():
    return run_suite()


def test_detection_table(suite, benchmark):
    rows = [[f"T{o.theorem}", o.name,
             "DETECTED" if o.detected else "undetected",
             "as designed" if o.as_expected else "UNEXPECTED"]
            for o in suite.outcomes]
    print()
    print(format_table(["thm", "attack", "outcome", "verdict"], rows,
                       title="Insider attack suite (Theorems 1 & 2)"))

    env = fresh_environment()
    receipt = env.store.write([b"benchmark record"], policy="sox")
    result = env.store.read(receipt.sn)
    benchmark(env.client.verify_read, result, receipt.sn)


def test_theorem1_holds(suite, benchmark):
    """No committed record altered or removed undetected."""
    for outcome in suite.by_theorem(1):
        assert outcome.detected, outcome.name
    benchmark(lambda: None)


def test_theorem2_holds(suite, benchmark):
    """No active record hidden, outside the designed freshness window."""
    undetected = [o.name for o in suite.by_theorem(2) if not o.detected]
    assert undetected == ["hide-within-freshness-window"]
    benchmark(lambda: None)


def test_suite_has_no_surprises(suite, benchmark):
    assert suite.theorems_hold
    assert suite.total >= 16
    benchmark(lambda: None)
