"""§5's closing observation — disk I/O, not the WORM layer, dominates.

"Ultimately, it is likely that ... I/O seek and transfer overheads are
likely to constitute the main operational bottlenecks (and not the WORM
layer).  Typical high-speed enterprise disks feature 3-4ms+ latencies for
individual block disk access, twice the projected average SCPU
overheads."

This benchmark decomposes per-operation virtual cost by device and checks
the paper's arithmetic: a random block access (~5.5 ms with seek +
rotation) is about twice the average per-write SCPU overhead in deferred
mode (~1 ms: two 512-bit signatures + small-record hashing), so a
read-heavy store seeking for every record bottlenecks on the spindle.
"""

from __future__ import annotations

import pytest

from repro.core.worm import StrongWormStore
from repro.hardware.calibration import ENTERPRISE_DISK
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy


@pytest.fixture(scope="module")
def decomposition(paper_keyring):
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    rows = {}
    for label, kwargs in [
        ("write strong 4KB", dict(strength=Strength.STRONG)),
        ("write deferred 4KB", dict(strength=Strength.WEAK,
                                    defer_data_hash=True)),
    ]:
        receipt = store.write([b"z" * 4096], retention_seconds=1e9, **kwargs)
        rows[label] = receipt.costs
        last_sn = receipt.sn
    marks = store._cost_checkpoints()
    store.read(last_sn)
    rows["read 4KB (random seek)"] = store._cost_delta(marks)
    return rows


def test_latency_decomposition_table(decomposition, benchmark):
    rows = []
    for label, costs in decomposition.items():
        total = sum(costs.values())
        rows.append([label] + [f"{costs[d] * 1000:.3f}"
                               for d in ("scpu", "host", "disk")]
                    + [f"{total * 1000:.3f}"])
    print()
    print(format_table(
        ["operation", "scpu ms", "host ms", "disk ms", "total ms"], rows,
        title="Per-operation latency decomposition (virtual ms)"))
    benchmark(ENTERPRISE_DISK.access_seconds, 4096)


def test_random_disk_access_matches_paper(benchmark):
    """'3-4ms+ latencies for individual block disk access'."""
    latency = ENTERPRISE_DISK.access_seconds(4096)
    assert latency >= 0.003
    benchmark(lambda: None)


def test_disk_seek_about_twice_deferred_scpu_overhead(decomposition, benchmark):
    """The paper's ''twice the projected average SCPU overheads''."""
    seek = ENTERPRISE_DISK.access_seconds(4096)
    scpu_per_write = decomposition["write deferred 4KB"]["scpu"]
    assert 1.5 < seek / scpu_per_write < 12.0
    benchmark(lambda: None)


def test_reads_are_disk_dominated(decomposition, benchmark):
    costs = decomposition["read 4KB (random seek)"]
    assert costs["scpu"] == 0.0
    assert costs["disk"] > 0.9 * sum(costs.values())
    benchmark(lambda: None)


def test_write_path_disk_cost_small_when_sequential(decomposition, benchmark):
    """Log-structured write placement keeps the spindle off the write
    critical path; the SCPU dominates writes, the disk dominates reads."""
    write = decomposition["write strong 4KB"]
    assert write["scpu"] > write["disk"]
    benchmark(lambda: None)
