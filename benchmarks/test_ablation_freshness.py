"""Ablation — §4.2.1's two freshness mechanisms for S_s(SN_current).

To stop the main CPU hiding recent records behind a stale upper bound,
the paper offers two options:

  (i) **per-read SCPU contact**: every client read fetches the current
      ``S_s(SN_current)`` from the SCPU itself;
 (ii) **timestamped refresh**: the SCPU re-signs the bound every few
      minutes; clients reject older values.

The paper picks (ii) "in general cases" — this benchmark shows why: under
(i) the SCPU sits on the *read* path, so a read-heavy store is capped by
the card (even serving a cached signature costs a DMA round trip; a
conservative fresh signature per read caps at ~848 reads/s), while under
(ii) reads run at host/disk speed and the SCPU spends one signature per
refresh interval, regardless of read rate.

The price of (ii) is the bounded deniability horizon measured in
``test_deniability_horizon``: refresh_interval + freshness_window.
"""

from __future__ import annotations

import pytest

from repro.hardware.calibration import SCPU_IBM_4764
from repro.hardware.device import TimedDevice
from repro.sim.engine import Simulator
from repro.sim.metrics import format_table

_READS = 2000
_WORKERS = 32
#: Host+disk cost of serving one cached 4KB read (seek + transfer).
_HOST_READ_SECONDS = 0.0008  # cache-friendly read path


def _read_throughput(scpu_cost_per_read: float) -> float:
    """Closed-loop read throughput with the given per-read SCPU charge."""
    sim = Simulator()
    scpu = TimedDevice(sim, "scpu", capacity=1)
    host = TimedDevice(sim, "host", capacity=4)
    remaining = [_READS]
    finished = []

    def reader():
        while remaining[0] > 0:
            remaining[0] -= 1
            yield from host.use(_HOST_READ_SECONDS)
            yield from scpu.use(scpu_cost_per_read)
            finished.append(sim.now)

    for _ in range(_WORKERS):
        sim.process(reader())
    sim.run()
    return _READS / finished[-1]


@pytest.fixture(scope="module")
def mechanisms():
    sign_cost = SCPU_IBM_4764.rsa_sign_seconds(1024)
    dma_cost = SCPU_IBM_4764.dma_seconds(256) + 2e-5  # round trip + dispatch
    return {
        "(i) fresh signature per read": _read_throughput(sign_cost),
        "(i) cached sig, SCPU round trip": _read_throughput(dma_cost),
        "(ii) timestamped refresh": _read_throughput(0.0),
    }


def test_freshness_mechanism_table(mechanisms, benchmark):
    rows = [[label, f"{rate:.0f}"] for label, rate in mechanisms.items()]
    print()
    print(format_table(["mechanism", "reads/s"], rows,
                       title="Read throughput under §4.2.1 freshness mechanisms"))
    benchmark(_read_throughput, 0.0)


def test_per_read_signing_caps_at_card_rate(mechanisms, benchmark):
    assert mechanisms["(i) fresh signature per read"] < 900
    benchmark(lambda: None)


def test_timestamp_refresh_reads_at_host_speed(mechanisms, benchmark):
    assert (mechanisms["(ii) timestamped refresh"]
            > 5 * mechanisms["(i) fresh signature per read"])
    benchmark(lambda: None)


def test_refresh_cost_independent_of_read_rate(benchmark):
    """Mechanism (ii)'s SCPU cost: one signature per interval, period."""
    sign_cost = SCPU_IBM_4764.rsa_sign_seconds(1024)
    refresh_interval = 120.0
    scpu_fraction = sign_cost / refresh_interval
    assert scpu_fraction < 1e-4  # < 0.01% of the card
    benchmark(lambda: None)


def test_deniability_horizon(benchmark):
    """The exposure (ii) buys: a fresh record can be denied for at most
    refresh_interval + freshness_window seconds (see the attack suite's
    hide-within-freshness-window / hide-with-stale-sn-current pair)."""
    from repro.adversary.attacks import (
        hide_with_stale_sn_current,
        hide_within_freshness_window,
    )
    from repro.adversary.games import fresh_environment

    inside = hide_within_freshness_window(fresh_environment())
    beyond = hide_with_stale_sn_current(fresh_environment())
    assert not inside.detected   # designed exposure, bounded
    assert beyond.detected       # and it really is bounded
    benchmark(lambda: None)
