"""Ablation — deferred strengthening under bursts (§4.3).

An update burst arrives at a rate above the strong-signing capacity
(~424/s with two 1024-bit signatures).  Three systems face it:

* **always-strong**: every write signed with 1024-bit keys immediately —
  the queue explodes and p99 latency grows with the burst length;
* **deferred-512**: writes witnessed with 512-bit signatures (≈2100/s
  capacity), strengthened during the idle period that follows;
* the invariant check: *every* deferred construct is strengthened within
  its security lifetime (zero violations) — the §4.3 safety condition.

Also measures how long after the burst the idle-time strengthening
backlog takes to drain, and that clients can read burst records
immediately (weakly signed) and strongly after the drain.
"""

from __future__ import annotations

import pytest

from repro.hardware.scpu import Strength
from repro.sim.driver import SimulationConfig, make_sim_store, run_open_loop
from repro.sim.metrics import format_table
from repro.sim.workload import BurstArrivals, FixedSize, RetentionSampler

from conftest import fresh_keyring_copy

#: One 2-second burst of 2400 writes at 1200/s — 3x the strong-signing
#: capacity (~424/s), comfortably inside the deferred capacity (~2100/s).
_BURST = dict(burst_rate=1200.0, burst_seconds=2.0, idle_seconds=1800.0,
              total_count=2400, seed=11)


def _run(keyring, strength):
    config = SimulationConfig(strengthen_when_idle=True,
                              maintenance_interval=10.0)
    simstore = make_sim_store(config=config, keyring=keyring)
    workload = BurstArrivals(size_dist=FixedSize(1024),
                             retention=RetentionSampler(), **_BURST)
    metrics = run_open_loop(
        simstore, workload, config=config, horizon=6 * 3600.0,
        write_kwargs=dict(strength=strength, defer_data_hash=True))
    return metrics, simstore.store


@pytest.fixture(scope="module")
def burst_results(paper_keyring):
    return {
        "always-strong": _run(fresh_keyring_copy(paper_keyring),
                              Strength.STRONG),
        "deferred-512": _run(fresh_keyring_copy(paper_keyring),
                             Strength.WEAK),
    }


def test_burst_absorption_table(burst_results, benchmark, paper_keyring):
    rows = []
    for label, (metrics, store) in burst_results.items():
        summary = metrics.latency_summary("write")
        rows.append([
            label,
            f"{metrics.throughput('write'):.0f}",
            f"{summary['p50'] * 1000:.1f}",
            f"{summary['p99'] * 1000:.1f}",
            f"{summary['max'] * 1000:.1f}",
            str(store.strengthening.strengthened_count),
            str(store.strengthening.lifetime_violations),
        ])
    print()
    print(format_table(
        ["mode", "rate/s", "p50 ms", "p99 ms", "max ms",
         "strengthened", "lifetime violations"],
        rows, title="Burst absorption — 2s @ 1200 writes/s (3x strong capacity)"))
    benchmark(lambda: None)


def test_strong_mode_queue_explodes(burst_results, benchmark):
    metrics, _ = burst_results["always-strong"]
    summary = metrics.latency_summary("write")
    # At 3x capacity the strong queue grows throughout the burst: the
    # backlog at burst end (~2/3 of 2400 writes) drains at ~424/s, so
    # worst-case latency reaches seconds.
    assert summary["max"] > 2.0
    benchmark(lambda: None)


def test_deferred_mode_absorbs_burst(burst_results, benchmark):
    strong, _ = burst_results["always-strong"]
    deferred, _ = burst_results["deferred-512"]
    # Deferred capacity (~2100/s) exceeds the burst rate: low queueing.
    assert deferred.latency_summary("write")["p99"] < 1.0
    assert (strong.latency_summary("write")["max"]
            > 5 * deferred.latency_summary("write")["max"])
    benchmark(lambda: None)


def test_all_constructs_strengthened_within_lifetime(burst_results, benchmark):
    """The §4.3 safety property: strengthening beats the 512-bit horizon."""
    _, store = burst_results["deferred-512"]
    assert store.strengthening.strengthened_count == _BURST["total_count"]
    assert store.strengthening.lifetime_violations == 0
    assert len(store.strengthening) == 0
    benchmark(lambda: None)


def test_deferred_hashes_all_verified(burst_results, benchmark):
    """The verify-later data hashes were all checked — and all honest."""
    _, store = burst_results["deferred-512"]
    assert len(store.hash_verification) == 0
    assert store.hash_verification.mismatches == []
    benchmark(lambda: None)
