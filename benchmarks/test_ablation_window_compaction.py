"""Ablation — deletion-window compaction bounds VRDT storage (§4.2.1).

When a store mixes regulations, records expire *out of insertion order*,
so per-record deletion proofs pile up inside the live window.  §4.2.1's
answer: replace any contiguous run of ≥3 expired SNs with two signed
window bounds, and advance ``SN_base`` past fully expired prefixes.

This benchmark drives a mixed-retention workload to expiry and compares
the VRDT footprint with and without the compaction maintenance, and
counts what compaction costs the SCPU (proof verifications + 2 signatures
per window — cheap, and spent during idle periods).
"""

from __future__ import annotations

import pytest

from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy

_RECORDS = 120


def _mixed_retention_store(keyring):
    """Interleaved short/long retentions → out-of-order expiry."""
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(keyring)))
    for i in range(_RECORDS):
        # Runs of 9 short-lived records punctuated by one long-lived
        # record every 10th — prefixes can't fully expire, so proofs
        # accumulate inside the window unless compacted.
        retention = 1e9 if i % 10 == 9 else 10.0 + (i % 3)
        store.write([b"r" * 128], retention_seconds=retention)
    store.scpu.clock.advance(60.0)
    store.retention.tick(store.now)
    return store


@pytest.fixture(scope="module")
def compaction(paper_keyring):
    uncompacted = _mixed_retention_store(paper_keyring)
    compacted = _mixed_retention_store(paper_keyring)
    before_bytes = uncompacted.vrdt.estimated_bytes()
    scpu_mark = compacted.scpu.meter.checkpoint()
    windows_created = compacted.windows.compact_expired_runs()
    compacted.windows.try_advance_base()
    scpu_cost = compacted.scpu.meter.delta(scpu_mark)
    return {
        "uncompacted": uncompacted,
        "compacted": compacted,
        "before_bytes": before_bytes,
        "windows_created": windows_created,
        "scpu_cost": scpu_cost,
    }


def test_compaction_table(compaction, benchmark, paper_keyring):
    uncompacted = compaction["uncompacted"]
    compacted = compaction["compacted"]
    rows = [
        ["uncompacted", str(uncompacted.vrdt.proof_count()),
         str(len(uncompacted.vrdt.deletion_windows)),
         f"{uncompacted.vrdt.estimated_bytes()}"],
        ["compacted", str(compacted.vrdt.proof_count()),
         str(len(compacted.vrdt.deletion_windows)),
         f"{compacted.vrdt.estimated_bytes()}"],
    ]
    print()
    print(format_table(
        ["state", "stored proofs", "windows", "VRDT bytes"], rows,
        title=(f"Window compaction — {_RECORDS} mixed-retention records, "
               f"{compaction['windows_created']} windows created, "
               f"SCPU cost {compaction['scpu_cost'] * 1000:.1f} ms")))
    benchmark.pedantic(_mixed_retention_store, args=(paper_keyring,),
                       rounds=1, iterations=1)


def test_storage_reduced(compaction, benchmark):
    assert (compaction["compacted"].vrdt.estimated_bytes()
            < 0.5 * compaction["uncompacted"].vrdt.estimated_bytes())
    benchmark(lambda: None)


def test_proofs_replaced_by_windows(compaction, benchmark):
    compacted = compaction["compacted"]
    # Runs of 9 expired records → compacted; proofs mostly gone.
    assert compacted.vrdt.proof_count() < 0.2 * (_RECORDS * 0.9)
    assert len(compacted.vrdt.deletion_windows) >= _RECORDS // 10 - 2
    benchmark(lambda: None)


def test_compaction_cost_is_idle_scale(compaction, benchmark):
    """The whole compaction pass costs well under a second of SCPU time —
    affordable in any idle period (verifications dominate, not signing)."""
    assert compaction["scpu_cost"] < 0.5
    benchmark(lambda: None)


def test_reads_still_provable_after_compaction(compaction, benchmark):
    """Every expired SN remains provably deleted after its proof was
    expelled — via the covering window (or the advanced base)."""
    from repro.crypto.keys import CertificateAuthority
    compacted = compaction["compacted"]
    ca = CertificateAuthority(bits=512)
    client = compacted.make_client(ca)
    compacted.windows.refresh_current(force=True)
    for sn in range(1, compacted.scpu.current_serial_number + 1):
        verified = client.verify_read(compacted.read(sn), sn)
        assert verified.status in ("active", "deleted")
    benchmark(lambda: None)
