"""Figure 1 — throughput variation with record size.

The paper's only performance figure: write throughput (records/second)
against record size, for the witnessing modes of §4.3.

Paper claims reproduced here:

* deferred 512-bit signatures: **2000-2500 records/s** in bursts;
* full-strength (1024-bit) signing: **450-500 records/s** sustained;
* throughput falls with record size once SCPU-side hashing (1.42-18.6
  MB/s SHA-1 + 75-90 MB/s DMA) dominates the two signatures;
* HMAC witnessing lifts the ceiling further (§4.3: "practically
  unlimited throughputs ... restricted by the SCPU-main memory bus").

Our substrate is a queueing model in virtual time, not the authors' P4
testbed, so the absolute numbers come from the paper's own Table 2
calibration and the *shape* — who wins, by what factor, where hashing
overtakes signing — is the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.hardware.scpu import Strength
from repro.sim.driver import make_sim_store, run_closed_loop
from repro.sim.metrics import format_table
from repro.sim.workload import ClosedLoopArrivals, FixedSize

from conftest import fresh_keyring_copy

#: Record sizes swept (bytes): 1 KB → 256 KB.
SIZES = [1024, 4096, 16384, 65536, 262144]

#: (label, write kwargs) — the modes §5 evaluates.
MODES = [
    ("strong-1024 / SCPU-hash", dict(strength=Strength.STRONG)),
    ("strong-1024 / host-hash", dict(strength=Strength.STRONG,
                                     defer_data_hash=True)),
    ("deferred-512 / SCPU-hash", dict(strength=Strength.WEAK)),
    ("deferred-512 / host-hash", dict(strength=Strength.WEAK,
                                      defer_data_hash=True)),
    ("HMAC / host-hash", dict(strength=Strength.HMAC,
                              defer_data_hash=True)),
]

_WRITES_PER_POINT = 200


def _throughput(keyring, size, write_kwargs):
    simstore = make_sim_store(keyring=keyring)
    metrics = run_closed_loop(
        simstore,
        ClosedLoopArrivals(FixedSize(size), _WRITES_PER_POINT),
        write_kwargs=dict(write_kwargs))
    return metrics.throughput("write")


@pytest.fixture(scope="module")
def figure1(paper_keyring):
    """Compute the full figure once; individual tests assert on slices."""
    series = {}
    for label, kwargs in MODES:
        series[label] = [
            _throughput(fresh_keyring_copy(paper_keyring), size, kwargs)
            for size in SIZES
        ]
    return series


def test_figure1_series(figure1, benchmark, paper_keyring):
    rows = []
    for label, values in figure1.items():
        rows.append([label] + [f"{v:.0f}" for v in values])
    print()
    print(format_table(
        ["mode \\ record size"] + [f"{s // 1024}KB" for s in SIZES],
        rows, title="Figure 1 — write throughput (records/s) vs record size"))

    # Time one full simulated point as the benchmark unit.
    benchmark.pedantic(
        _throughput,
        args=(fresh_keyring_copy(paper_keyring), 1024,
              dict(strength=Strength.WEAK, defer_data_hash=True)),
        rounds=1, iterations=1)


def test_deferred_mode_hits_paper_band(figure1, benchmark):
    """§5: 'update rates of over 2000-2500 records/second are possible'."""
    small_record_rate = figure1["deferred-512 / host-hash"][0]
    assert 2000 <= small_record_rate <= 2600
    from repro.hardware.calibration import SCPU_IBM_4764
    benchmark(SCPU_IBM_4764.rsa_sign_seconds, 512)


def test_strong_mode_hits_paper_band(figure1, benchmark):
    """§5: 'sustained throughputs of 450-500 records/second'.

    Two 1024-bit signatures at 848 sig/s bound the rate at 424/s; the
    paper's 450-500 band implies some pipelining slack — we accept the
    380-520 envelope around it.
    """
    small_record_rate = figure1["strong-1024 / host-hash"][0]
    assert 380 <= small_record_rate <= 520
    from repro.hardware.calibration import SCPU_IBM_4764
    benchmark(SCPU_IBM_4764.rsa_sign_seconds, 1024)


def test_deferral_speedup_factor(figure1, benchmark):
    """Deferred vs strong ≈ the 512/1024 signing-cost ratio (~5x)."""
    speedup = (figure1["deferred-512 / host-hash"][0]
               / figure1["strong-1024 / host-hash"][0])
    assert 4.0 < speedup < 6.0
    from repro.hardware.calibration import SCPU_IBM_4764
    benchmark(SCPU_IBM_4764.rsa_sign_rate, 512)


def test_scpu_hashing_dominates_large_records(figure1, benchmark):
    """The declining shape: SCPU-hash modes collapse with record size."""
    scpu_hash = figure1["deferred-512 / SCPU-hash"]
    assert scpu_hash[0] > 4 * scpu_hash[-1]
    # While host-hash modes stay nearly flat over the same range.
    host_hash = figure1["deferred-512 / host-hash"]
    assert host_hash[-1] > 0.3 * host_hash[0]
    from repro.hardware.calibration import SCPU_IBM_4764
    benchmark(SCPU_IBM_4764.sha_seconds, 65536)


def test_crossover_between_hashing_modes(figure1, benchmark):
    """At 1KB records SCPU-hashing costs little; by 64KB it dominates —
    the crossover where the §4.2.2 verify-later model starts to pay."""
    scpu_hash = figure1["deferred-512 / SCPU-hash"]
    host_hash = figure1["deferred-512 / host-hash"]
    small_gap = host_hash[0] / scpu_hash[0]
    large_gap = host_hash[3] / scpu_hash[3]
    assert small_gap < 1.5      # near parity at 1KB
    assert large_gap > 5.0      # an order of magnitude apart at 64KB
    from repro.hardware.calibration import HOST_P4_3_4GHZ
    benchmark(HOST_P4_3_4GHZ.sha_seconds, 65536)


def test_hmac_mode_fastest_everywhere(figure1, benchmark):
    """§4.3: HMACs remove the signing bottleneck entirely."""
    hmac = figure1["HMAC / host-hash"]
    deferred = figure1["deferred-512 / host-hash"]
    for h, d in zip(hmac, deferred):
        assert h > d
    import hmac as hmac_mod, hashlib
    benchmark(lambda: hmac_mod.new(b"k" * 32, b"m" * 100, hashlib.sha256).digest())
