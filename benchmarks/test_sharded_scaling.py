"""Sharded group-commit scaling — the multi-store answer to §4.3/§5.

§4.3 shows per-record SCPU witnessing bounds write throughput; §5 notes
results "naturally scale if multiple SCPUs are available".  The sharded
front-end takes that to production shape: N independent stores (one SCPU
each) behind one surface, plus group commit — multi-record VR writes
that pay the two witnessing signatures once per batch.

Two claims are asserted here, both in deterministic virtual time with
the paper's 1024-bit durable keys:

* write throughput scales **near-linearly 1 → 4 shards** at fixed
  record size (the acceptance bar is ≥3×);
* **group-commit batching beats per-record writes ≥1.5×** at equal
  shard count, because amortizing metasig/datasig across a batch
  removes the dominant per-record SCPU cost.
"""

from __future__ import annotations

import pytest

from repro.sim.driver import (
    SimulationConfig,
    make_sharded_sim_store,
    run_sharded_closed_loop,
)
from repro.sim.metrics import MetricsCollector, format_table
from repro.sim.workload import ClosedLoopArrivals, FixedSize

from conftest import fresh_keyring_copy

_SHARD_COUNTS = [1, 2, 4]
_RECORDS = 240
_RECORD_SIZE = 1024
_BATCH = 8


def _run(keyring, shard_count: int, batch_size: int) -> MetricsCollector:
    config = SimulationConfig(workers=64, host_count=8, disk_count=16)
    simstore = make_sharded_sim_store(shard_count, config=config,
                                      keyring=keyring)
    return run_sharded_closed_loop(
        simstore, ClosedLoopArrivals(FixedSize(_RECORD_SIZE), _RECORDS),
        config=config, batch_size=batch_size)


def _rate(keyring, shard_count: int, batch_size: int) -> float:
    return _run(keyring, shard_count, batch_size).throughput("write")


@pytest.fixture(scope="module")
def scaling(paper_keyring):
    """Per-record rates at 1/2/4 shards + the batched rate at 4 shards."""
    per_record = [_rate(fresh_keyring_copy(paper_keyring), n, 1)
                  for n in _SHARD_COUNTS]
    batched = _rate(fresh_keyring_copy(paper_keyring), _SHARD_COUNTS[-1],
                    _BATCH)
    return per_record, batched


def test_scaling_table(scaling, benchmark, paper_keyring):
    per_record, batched = scaling
    rows = [[str(n), f"{r:.0f}", f"{r / per_record[0]:.2f}x"]
            for n, r in zip(_SHARD_COUNTS, per_record)]
    rows.append([f"4 (batch={_BATCH})", f"{batched:.0f}",
                 f"{batched / per_record[0]:.2f}x"])
    print()
    print(format_table(
        ["shards", "writes/s", "vs 1 shard"], rows,
        title="Sharded group-commit scaling — write throughput, "
              "1KB records, strong signatures"))
    benchmark.pedantic(
        _rate, args=(fresh_keyring_copy(paper_keyring), 1, 1),
        rounds=1, iterations=1)


def test_four_shards_at_least_3x(scaling, benchmark):
    """Acceptance bar: ≥3× write throughput at 4 shards vs 1 shard."""
    per_record, _ = scaling
    ratio = per_record[2] / per_record[0]
    assert ratio >= 3.0, f"4-shard scaling only {ratio:.2f}x"
    assert ratio < 4.6, f"superlinear scaling {ratio:.2f}x suggests a bug"
    benchmark(lambda: None)


def test_two_shards_near_double(scaling, benchmark):
    per_record, _ = scaling
    assert 1.7 < per_record[1] / per_record[0] < 2.3
    benchmark(lambda: None)


def test_group_commit_beats_per_record(scaling, benchmark):
    """Acceptance bar: batching ≥1.5× over per-record at 4 shards."""
    per_record, batched = scaling
    gain = batched / per_record[2]
    assert gain >= 1.5, f"group-commit gain only {gain:.2f}x"
    benchmark(lambda: None)


def test_telemetry_attribution_reconciles(paper_keyring, telemetry_bus,
                                          benchmark):
    """An observed run's snapshot must agree with the legacy accounting.

    The same closed-loop group-commit workload, run with a
    :class:`~repro.obs.TelemetryBus` attached: the exported device
    attribution must reconcile exactly with ``cost_summary`` /
    ``health_report``, every write must appear in the latency histogram,
    and SCPU virtual seconds must dominate the host's — the §4.3 claim
    (SCPU witnessing, not main-CPU work, bounds throughput) read
    straight off the telemetry.  With ``--telemetry`` the snapshot
    lands in ``BENCH_*_telemetry.json`` beside the perf numbers.
    """
    from repro.core.config import StoreConfig
    from repro.obs import reconcile_sharded

    config = SimulationConfig(workers=64, host_count=8, disk_count=16)
    simstore = make_sharded_sim_store(
        2, config=config, keyring=fresh_keyring_copy(paper_keyring),
        store_config=StoreConfig(shard_count=2, observe=telemetry_bus))
    run_sharded_closed_loop(
        simstore, ClosedLoopArrivals(FixedSize(_RECORD_SIZE), _RECORDS),
        config=config, batch_size=_BATCH)

    snapshot = simstore.store.telemetry_snapshot()
    assert reconcile_sharded(simstore.store, snapshot) == []
    counters = snapshot["counters"]
    writes = snapshot["histograms"]["op.write.seconds"]
    assert writes["count"] == counters["store.writes"] > 0
    assert (counters["device.scpu.seconds"]
            > counters["device.host.seconds"])
    benchmark(lambda: None)


def test_merged_metrics_match_per_shard_samples(paper_keyring, benchmark):
    """MetricsCollector.merge reports the union of shard samples."""
    metrics = _run(fresh_keyring_copy(paper_keyring), 2, 1)
    # Split the samples in two and merge them back: same summary.
    left, right = MetricsCollector(), MetricsCollector()
    for i, sample in enumerate(metrics.samples):
        (left if i % 2 else right).record(sample)
    merged = MetricsCollector.merge([left, right])
    assert merged.count() == metrics.count() == _RECORDS
    assert merged.throughput("write") == pytest.approx(
        metrics.throughput("write"))
    benchmark(lambda: None)
