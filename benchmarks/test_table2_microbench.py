"""Table 2 — IBM 4764 vs P4@3.4GHz crypto micro-benchmarks.

Regenerates the paper's device-comparison table from the calibrated cost
models, and checks every cell against the published value.  The paper's
exact rows:

    Function  Context     IBM 4764        P4 @ 3.4Ghz
    RSA sig.  512 bits    4200/s (est.)   1315/s
              1024 bits   848/s           261/s
              2048 bits   316-470/s       43/s
    SHA-1     1KB blk.    1.42 MB/s       80 MB/s
              64KB blk.   18.6 MB/s       120+ MB/s
    DMA xfer  end-to-end  75-90 MB/s      1+ GB/s

pytest-benchmark additionally times this reproduction's *real* RSA
signing (pure Python) for context — those wall-clock numbers are not the
reproduction target; the virtual cost model is.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import SigningKey
from repro.hardware.calibration import HOST_P4_3_4GHZ, SCPU_IBM_4764
from repro.sim.metrics import format_table

_MB = 1024.0 * 1024.0

#: (label, paper SCPU value, paper host value, extractor)
_ROWS = [
    ("RSA sig. 512 bits  [sigs/s]", "4200 (est.)", "1315",
     lambda p: p.rsa_sign_rate(512)),
    ("RSA sig. 1024 bits [sigs/s]", "848", "261",
     lambda p: p.rsa_sign_rate(1024)),
    ("RSA sig. 2048 bits [sigs/s]", "316-470", "43",
     lambda p: p.rsa_sign_rate(2048)),
    ("SHA-1 1KB blk.     [MB/s]", "1.42", "80",
     lambda p: p.sha_rate_mb_s(1024)),
    ("SHA-1 64KB blk.    [MB/s]", "18.6", "120+",
     lambda p: p.sha_rate_mb_s(64 * 1024)),
    ("DMA xfer           [MB/s]", "75-90", "1024+",
     lambda p: p.dma_rate_mb_s),
]


def test_table2_regenerates(benchmark, paper_keyring):
    rows = []
    for label, paper_scpu, paper_host, extract in _ROWS:
        rows.append([
            label,
            f"{extract(SCPU_IBM_4764):.2f}",
            paper_scpu,
            f"{extract(HOST_P4_3_4GHZ):.2f}",
            paper_host,
        ])
    print()
    print(format_table(
        ["function", "SCPU model", "SCPU paper", "host model", "host paper"],
        rows, title="Table 2 — device micro-benchmarks (model vs paper)"))

    # Every modelled cell within the paper's reported value/range.
    assert SCPU_IBM_4764.rsa_sign_rate(512) == pytest.approx(4200)
    assert SCPU_IBM_4764.rsa_sign_rate(1024) == pytest.approx(848)
    assert 316 <= SCPU_IBM_4764.rsa_sign_rate(2048) <= 470
    assert HOST_P4_3_4GHZ.rsa_sign_rate(512) == pytest.approx(1315)
    assert HOST_P4_3_4GHZ.rsa_sign_rate(1024) == pytest.approx(261)
    assert HOST_P4_3_4GHZ.rsa_sign_rate(2048) == pytest.approx(43)
    assert SCPU_IBM_4764.sha_rate_mb_s(1024) == pytest.approx(1.42)
    assert SCPU_IBM_4764.sha_rate_mb_s(64 * 1024) == pytest.approx(18.6)
    assert 75 <= SCPU_IBM_4764.dma_rate_mb_s <= 90

    # Time the real (pure-Python) 1024-bit signing as the reference unit.
    message = b"x" * 64
    benchmark(paper_keyring.s_key.keypair.private.sign, message)


def test_signature_cost_ratio_matches_paper(benchmark):
    """§4.3's premise: how much faster is an x-bit signature than n-bit?

    The paper's deferral win rests on 512-bit signing being ~5x faster
    than 1024-bit on the card (4200/848 ≈ 4.95).
    """
    ratio = (SCPU_IBM_4764.rsa_sign_rate(512)
             / SCPU_IBM_4764.rsa_sign_rate(1024))
    assert 4.5 < ratio < 5.5
    benchmark(SCPU_IBM_4764.rsa_sign_seconds, 512)
