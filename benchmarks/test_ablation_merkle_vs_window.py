"""Ablation — window authentication (O(1)) vs Merkle trees (O(log n)).

§2.3/§4.1: "To escape the O(log n) per update cost of the straight-forward
choice of deploying Merkle trees ... we introduce a novel mechanism with
identical assurances but constant cost per update."

This benchmark measures *SCPU virtual seconds per write* — the scarce
resource — as the store grows, for both designs:

* **Strong WORM (window)**: 2 signatures + (small-record) hashing,
  independent of store size;
* **Merkle baseline**: 1 root signature + hashing + an O(log n) root-path
  recomputation inside the enclosure.

The window scheme's per-update cost must stay flat while Merkle's grows
with log(store size); the crossover in hash work appears immediately, and
the paper's "identical assurances" claim is checked by both detecting a
payload tamper.
"""

from __future__ import annotations

import pytest

from repro.baselines.merkle_worm import MerkleWormStore
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy

_STORE_SIZES = [64, 512, 4096]
_WINDOW_MEASURE = 32


def _window_cost_per_write(keyring, prefill):
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(keyring)))
    for _ in range(prefill):
        store.write([b"x" * 64], retention_seconds=1e9)
    mark = store.scpu.meter.checkpoint()
    for _ in range(_WINDOW_MEASURE):
        store.write([b"x" * 64], retention_seconds=1e9)
    return store.scpu.meter.delta(mark) / _WINDOW_MEASURE


def _merkle_cost_per_write(keyring, prefill):
    mstore = MerkleWormStore(
        SecureCoprocessor(keyring=fresh_keyring_copy(keyring)))
    for _ in range(prefill):
        mstore.write(b"x" * 64, retention_seconds=1e9)
    mark = mstore.scpu.meter.checkpoint()
    for _ in range(_WINDOW_MEASURE):
        mstore.write(b"x" * 64, retention_seconds=1e9)
    return mstore.scpu.meter.delta(mark) / _WINDOW_MEASURE


@pytest.fixture(scope="module")
def costs(paper_keyring):
    return {
        "window": [_window_cost_per_write(paper_keyring, n)
                   for n in _STORE_SIZES],
        "merkle": [_merkle_cost_per_write(paper_keyring, n)
                   for n in _STORE_SIZES],
    }


def test_update_cost_table(costs, benchmark, paper_keyring):
    rows = []
    for scheme, values in costs.items():
        rows.append([scheme] + [f"{v * 1e6:.0f}" for v in values])
    print()
    print(format_table(
        ["scheme \\ store size"] + [str(n) for n in _STORE_SIZES], rows,
        title="SCPU µs per write — window (O(1)) vs Merkle (O(log n))"))
    benchmark.pedantic(_window_cost_per_write, args=(paper_keyring, 64),
                       rounds=1, iterations=1)


def test_window_cost_flat(costs, benchmark):
    """O(1): per-write SCPU time independent of store size (±5%)."""
    values = costs["window"]
    assert max(values) / min(values) < 1.05
    benchmark(lambda: None)


def test_merkle_cost_grows(costs, benchmark):
    """O(log n): per-write SCPU time strictly grows with store size."""
    values = costs["merkle"]
    assert values[0] < values[1] < values[2]
    benchmark(lambda: None)


def test_gap_widens_with_store_size(costs, benchmark):
    small_gap = costs["merkle"][0] - costs["window"][0]
    large_gap = costs["merkle"][-1] - costs["window"][-1]
    assert large_gap > 1.5 * small_gap
    benchmark(lambda: None)


def test_proof_sizes(paper_keyring, benchmark):
    """Client-side proof bandwidth: O(1) window proofs vs O(log n) paths.

    A Strong WORM active read carries two fixed-size signatures; a Merkle
    read carries one signature plus a membership path that grows with the
    store.  Deletion proofs: one signature (or two window bounds) vs —
    in a Merkle design — a freshness-authenticated non-membership story
    the paper never even needs.
    """
    from repro.crypto.keys import CertificateAuthority
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    receipt = store.write([b"x" * 64], retention_seconds=1e9)
    window_proof_bytes = (len(receipt.vrd.metasig.signature)
                          + len(receipt.vrd.datasig.signature))

    rows = [["window (any store size)", str(window_proof_bytes)]]
    for size in (64, 4096):
        mstore = MerkleWormStore(
            SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
        for _ in range(size):
            mstore.write(b"x" * 64, retention_seconds=1e9)
        result = mstore.read(1)
        merkle_bytes = (len(result.signed_root.signature)
                        + sum(32 for _ in result.proof.path))
        rows.append([f"merkle @ {size} records", str(merkle_bytes)])
    print()
    print(format_table(["scheme", "proof bytes per active read"], rows,
                       title="Proof bandwidth: window vs Merkle"))
    small = int(rows[1][1])
    large = int(rows[2][1])
    assert large > small          # Merkle proof grows with the store
    assert window_proof_bytes == 256  # two 1024-bit signatures, always
    benchmark(lambda: None)


def test_identical_assurances(paper_keyring, benchmark):
    """Both schemes detect the same payload tamper ("identical assurances")."""
    from repro.crypto.keys import CertificateAuthority
    ca = CertificateAuthority(bits=512)

    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    client = store.make_client(ca)
    receipt = store.write([b"original"], retention_seconds=1e9)
    store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"tampered")
    from repro.core.errors import VerificationError
    with pytest.raises(VerificationError):
        client.verify_read(store.read(receipt.sn), receipt.sn)

    mstore = MerkleWormStore(
        SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    sn = mstore.write(b"original", retention_seconds=1e9)
    key, _, _ = mstore._records[sn]
    mstore.blocks.unchecked_overwrite(key, b"tampered")
    assert not mstore.verify_read(mstore.read(sn),
                                  mstore.scpu.public_keys()["s"])
    benchmark(lambda: None)
