"""Shared benchmark fixtures: paper-parameter keys, printing helpers.

Benchmarks reproduce the paper's evaluation with its actual parameters:
1024-bit durable SCPU keys, 512-bit short-lived burst keys (§4.3), and
the IBM 4764 / P4 cost calibration of Table 2.  Throughput numbers are
*virtual-time* results from the queueing model — deterministic across
machines — while pytest-benchmark additionally times the real
(functional) crypto of one representative operation on the host machine.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import SigningKey
from repro.hardware.scpu import ScpuKeyring
from repro.obs import TelemetryBus


#: The authentication backends the ablation benchmarks sweep.
ALL_SCHEMES = ("windows", "merkle", "accumulator")


def pytest_addoption(parser):
    parser.addoption(
        "--telemetry", action="store_true", default=False,
        help="write each telemetry-instrumented benchmark's bus snapshot "
             "to BENCH_<test>_telemetry.json next to the benchmark files, "
             "so perf trajectories carry device-attribution data")
    parser.addoption(
        "--scheme", action="append", default=None, choices=ALL_SCHEMES,
        help="restrict the authentication-scheme ablation to this backend "
             "(repeatable; default: all three)")


@pytest.fixture
def telemetry_bus(request) -> TelemetryBus:
    """A live bus for a benchmark store (``StoreConfig(observe=bus)``).

    With ``--telemetry`` the bus snapshot is exported after the test as
    ``BENCH_<testname>_telemetry.json`` alongside the benchmark sources;
    without the flag the bus still collects (the test can assert on it)
    but nothing is written.
    """
    bus = TelemetryBus()
    yield bus
    if request.config.getoption("--telemetry"):
        name = request.node.name.replace("[", "_").replace("]", "")
        out = Path(__file__).parent / f"BENCH_{name}_telemetry.json"
        out.write_text(json.dumps(bus.snapshot(), indent=2, sort_keys=True)
                       + "\n")


@pytest.fixture(scope="session")
def paper_keyring() -> ScpuKeyring:
    """1024-bit s/d keys + 512-bit burst key — the §4.3 parameters."""
    return ScpuKeyring(
        s_key=SigningKey.generate(1024, "s"),
        d_key=SigningKey.generate(1024, "d"),
        burst_key=SigningKey.generate(512, "burst"),
        hmac=HmacScheme(),
    )


def fresh_keyring_copy(keyring: ScpuKeyring) -> ScpuKeyring:
    """A shallow copy so per-store burst rotation can't cross-contaminate."""
    return ScpuKeyring(s_key=keyring.s_key, d_key=keyring.d_key,
                       burst_key=keyring.burst_key, hmac=keyring.hmac)
