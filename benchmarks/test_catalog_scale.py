"""Catalog indexing at scale: batch-build beats per-record insorts.

The hot-path campaign rebuilt :meth:`RecordCatalog.index_record` to
append into the sorted time lists and defer one ``sort()`` to the next
query (O(n log n) per bulk build) instead of ``bisect.insort``-ing each
entry (O(n²) element shifts across a rebuild).  This microbench pins
the win at scale against a reference insort build on the same records,
and checks the two builds answer queries identically.

Runs against a stub VRD table — the catalog only reads
``vrdt.get_active/is_active/active_sns`` — so the measurement isolates
index maintenance from crypto and storage costs.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass

import pytest

from repro.core.catalog import RecordCatalog

POLICIES = ("sec17a-4", "hipaa", "sox", "ferpa")


@dataclass
class _Attr:
    policy: str
    created_at: float
    expires_at: float
    litigation_hold: bool = False
    litigation_timeout: float = 0.0


@dataclass
class _Vrd:
    attr: _Attr


class _StubStore:
    """The slice of the store surface the catalog actually touches."""

    def __init__(self, count: int) -> None:
        self.now = 0.0
        self._vrds = {}
        for sn in range(1, count + 1):
            # Deterministic scatter (no Date/random in CI): a fixed
            # multiplicative hash keeps arrival order ≠ time order, so
            # the sort is not handed pre-sorted input.
            created = float((sn * 2654435761) % (10 * count))
            self._vrds[sn] = _Vrd(_Attr(
                policy=POLICIES[sn % len(POLICIES)],
                created_at=created,
                expires_at=created + 3600.0 * (1 + sn % 7),
            ))
        self.vrdt = self

    # vrdt surface
    @property
    def active_sns(self):
        return list(self._vrds)

    def get_active(self, sn):
        return self._vrds.get(sn)

    def is_active(self, sn):
        return sn in self._vrds


def _insort_reference_build(store: _StubStore):
    """The pre-campaign strategy: keep both lists sorted per record."""
    by_created, by_expiry = [], []
    for sn in store.active_sns:
        vrd = store.get_active(sn)
        bisect.insort(by_created, (vrd.attr.created_at, sn))
        bisect.insort(by_expiry, (vrd.attr.expires_at, sn))
    return by_created, by_expiry


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


class TestCatalogScale:
    def test_batch_build_beats_insort_build_at_scale(self):
        store = _StubStore(20_000)

        def batch():
            catalog = RecordCatalog(store)
            catalog.index_all()
            catalog._ensure_sorted()  # charge the deferred sort to the build
            return catalog

        catalog, batch_s = _timed(batch)
        (ref_created, ref_expiry), insort_s = _timed(
            lambda: _insort_reference_build(store))

        print(f"\nindex 20k records: batch {batch_s * 1e3:.1f} ms, "
              f"per-record insort {insort_s * 1e3:.1f} ms "
              f"({insort_s / batch_s:.1f}x)")
        # Same index, radically different build cost.  The margin is
        # ~10-100x in practice; assert only the direction so the gate
        # is robust to a noisy host.
        assert catalog._by_created == ref_created
        assert catalog._by_expiry == ref_expiry
        assert batch_s < insort_s

    def test_bulk_build_cost_grows_loglinearly(self):
        def build(count):
            store = _StubStore(count)
            catalog = RecordCatalog(store)
            catalog.index_all()
            catalog._ensure_sorted()
            return catalog

        build(4_000)  # warm allocator and code paths
        _, small_s = _timed(lambda: build(10_000))
        _, large_s = _timed(lambda: build(40_000))
        print(f"\nbulk build: 10k {small_s * 1e3:.1f} ms, "
              f"40k {large_s * 1e3:.1f} ms "
              f"({large_s / small_s:.1f}x for 4x records)")
        # O(n log n) predicts ~4.3x; a quadratic rebuild predicts ~16x.
        # The band is generous because wall-clock noise is real.
        assert large_s < 12 * small_s

    def test_queries_match_brute_force_at_scale(self):
        store = _StubStore(5_000)
        catalog = RecordCatalog(store)
        catalog.index_all()
        lo, hi = 1_000.0, 30_000.0
        expected = sorted(
            sn for sn, vrd in store._vrds.items()
            if lo <= vrd.attr.created_at < hi)
        assert list(catalog.created_between(lo, hi)) == expected
        for policy in POLICIES:
            expected = sorted(sn for sn, vrd in store._vrds.items()
                              if vrd.attr.policy == policy)
            assert list(catalog.by_policy(policy)) == expected

    def test_incremental_batches_amortize_to_one_sort_per_query(self,
                                                                monkeypatch):
        """Growth arrives in batches; each query pays one sort, not one
        insort per record — and insort is never used at all."""
        import repro.core.catalog as catalog_module

        store = _StubStore(2_000)
        catalog = RecordCatalog(store)

        def forbidden(*_a, **_k):  # pragma: no cover - failure path
            raise AssertionError("catalog used bisect.insort")

        monkeypatch.setattr(catalog_module.bisect, "insort", forbidden)
        sorts = []
        real_ensure = catalog._ensure_sorted

        def counting_ensure():
            if catalog._unsorted_tail:
                sorts.append(catalog._unsorted_tail)
            real_ensure()

        monkeypatch.setattr(catalog, "_ensure_sorted", counting_ensure)

        catalog.index_all()
        assert catalog.created_between(0.0, float("inf"))
        next_sn = len(store._vrds) + 1
        for sn in range(next_sn, next_sn + 500):
            store._vrds[sn] = _Vrd(_Attr(
                policy="sox", created_at=float(sn), expires_at=float(sn) + 1))
            catalog.index_record(sn)
        assert catalog.expiring_between(0.0, float("inf"))
        # Two bulk ingests -> exactly two sorts, sized to each batch.
        assert sorts == [2_000, 500]
