"""Realistic workload — the email-archive mixture behind §4.2's VRs.

Figure 1 sweeps fixed record sizes; real compliance archives see a
heavy-tailed mix (mostly small message bodies, occasional multi-megabyte
attachments).  This benchmark runs the :class:`EmailMixSize` blend
through the witnessing modes and reports effective records/s and MB/s —
the numbers an operator sizing a deployment actually needs — plus the
dedup win when popular attachments are content-addressed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dedup import DedupIndex
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.sim.driver import make_sim_store, run_closed_loop
from repro.sim.metrics import format_table
from repro.sim.workload import ClosedLoopArrivals, EmailMixSize

from conftest import fresh_keyring_copy

_COUNT = 150


def _run(keyring, write_kwargs):
    simstore = make_sim_store(keyring=keyring)
    metrics = run_closed_loop(
        simstore, ClosedLoopArrivals(EmailMixSize(), _COUNT, seed=5),
        write_kwargs=write_kwargs)
    rate = metrics.throughput("write")
    mb_s = metrics.bytes_written() / (1024 * 1024) / (
        max(s.finish for s in metrics.samples) or 1.0)
    return rate, mb_s


@pytest.fixture(scope="module")
def mix(paper_keyring):
    return {
        "strong-1024": _run(fresh_keyring_copy(paper_keyring),
                            dict(strength=Strength.STRONG,
                                 defer_data_hash=True)),
        "deferred-512": _run(fresh_keyring_copy(paper_keyring),
                             dict(strength=Strength.WEAK,
                                  defer_data_hash=True)),
        "deferred-512+scpu-hash": _run(fresh_keyring_copy(paper_keyring),
                                       dict(strength=Strength.WEAK)),
    }


def test_email_mix_table(mix, benchmark):
    rows = [[label, f"{rate:.0f}", f"{mb:.1f}"]
            for label, (rate, mb) in mix.items()]
    print()
    print(format_table(["mode", "records/s", "MB/s"], rows,
                       title="Email-archive mix (80% small, 18% medium, 2% large)"))
    benchmark(lambda: None)


def test_mix_bands_consistent_with_figure1(mix, benchmark):
    strong_rate, strong_mb = mix["strong-1024"]
    deferred_rate, deferred_mb = mix["deferred-512"]
    # Strong mode stays signature-bound (the ~100KB mean record hashes at
    # host speed faster than two 1024-bit signatures sign).
    assert 330 < strong_rate < 520
    # Deferred mode exposes the *next* bottleneck under realistic sizes:
    # host SHA at 120 MB/s caps byte throughput, so records/s lands well
    # below the 1KB-record figure — an honest consequence of the mixture,
    # and still ~1.5x the strong mode.
    assert deferred_rate > 1.4 * strong_rate
    assert 90 < deferred_mb < 130  # at the host hashing ceiling
    benchmark(lambda: None)


def test_scpu_hashing_hurts_under_real_sizes(mix, benchmark):
    """With attachments in the mix, card hashing drags the average down."""
    host_hash_rate, _ = mix["deferred-512"]
    scpu_hash_rate, _ = mix["deferred-512+scpu-hash"]
    assert scpu_hash_rate < 0.5 * host_hash_rate
    benchmark(lambda: None)


def test_attachment_dedup_saves_storage(paper_keyring, benchmark):
    """The §4.2 motivation quantified: popular attachments stored once."""
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    index = DedupIndex(store)
    rng = random.Random(7)
    attachments = [rng.randbytes(32 * 1024) for _ in range(5)]
    total_logical = 0
    for i in range(60):
        body = f"message {i}".encode() * 20
        attachment = rng.choice(attachments)  # popular attachments recur
        outcome = index.deposit([body, attachment], policy="sec17a-4")
        total_logical += len(body) + len(attachment)
    stored_physical = sum(store.blocks.size_of(k) for k in store.blocks.keys())
    savings = 1.0 - stored_physical / total_logical
    print(f"\ndedup: {total_logical // 1024} KB logical -> "
          f"{stored_physical // 1024} KB stored ({savings:.0%} saved)")
    assert savings > 0.5  # 60 emails share 5 attachments
    benchmark(lambda: None)
