"""Night-scan feasibility — §4.2.2's "updated during light load periods".

When VEXP overflows its secure-memory budget, the Retention Monitor
rebuilds it by linearly scanning the VRDT and verifying every entry's
metasig in the enclosure (the VRDT is untrusted — unverified expiry times
could starve or rush deletion).  The paper asserts this is affordable at
night; this benchmark measures the SCPU cost per scanned record and
extrapolates: how many records fit in an 8-hour idle window?

A 1024-bit verification costs ~28 µs on the card (e = 65537), so a
single card scans tens of millions of records per night — the paper's
"we expect this to not add any additional overhead in practice" holds
with orders of magnitude to spare.
"""

from __future__ import annotations

import pytest

from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy

_RECORDS = 500


@pytest.fixture(scope="module")
def scan_cost(paper_keyring):
    store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)),
        vexp_capacity=16)  # force capacity pressure
    for i in range(_RECORDS):
        store.write([b"x" * 64], retention_seconds=1e6 + i)
    assert store.retention.vexp.needs_rescan
    mark = store.scpu.meter.checkpoint()
    verified = store.retention.night_scan(store.now)
    cost = store.scpu.meter.delta(mark)
    return store, verified, cost


def test_night_scan_table(scan_cost, benchmark):
    store, verified, cost = scan_cost
    per_record = cost / verified
    eight_hours = 8 * 3600.0
    capacity = int(eight_hours / per_record)
    print()
    print(format_table(
        ["metric", "value"],
        [["records scanned", verified],
         ["SCPU seconds total", f"{cost:.3f}"],
         ["SCPU µs per record", f"{per_record * 1e6:.1f}"],
         ["records per 8h idle window", f"{capacity:,}"]],
        title="Night scan — VEXP rebuild with metasig verification"))
    assert capacity > 10_000_000  # tens of millions per night
    benchmark(lambda: None)


def test_scan_verifies_everything(scan_cost, benchmark):
    store, verified, _ = scan_cost
    assert verified == _RECORDS
    assert not store.retention.vexp.needs_rescan or verified > store.retention.vexp.capacity
    benchmark(lambda: None)


def test_scan_restores_earliest_expirations(scan_cost, benchmark):
    """Capacity pressure must never delay the *next* deletion."""
    store, _, _ = scan_cost
    head = store.retention.vexp.peek()
    assert head is not None
    expected_earliest = min(
        store.vrdt.get_active(sn).attr.expires_at
        for sn in store.vrdt.active_sns)
    assert head[0] == pytest.approx(expected_earliest)
    benchmark(lambda: None)
