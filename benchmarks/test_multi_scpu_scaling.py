"""§5 claim: "These results naturally scale if multiple SCPUs are available."

Sweeps the SCPU pool size at fixed record size and witnessing mode and
checks near-linear scaling until another device becomes the bottleneck.
Also reproduces the headline: "With a single secure co-processor ... over
2500 transactions per second" — reached here in HMAC burst mode (and
approached at 2000-2500 by deferred 512-bit signing, per Figure 1).
"""

from __future__ import annotations

import pytest

from repro.hardware.scpu import Strength
from repro.sim.driver import SimulationConfig, make_sim_store, run_closed_loop
from repro.sim.metrics import format_table
from repro.sim.workload import ClosedLoopArrivals, FixedSize

from conftest import fresh_keyring_copy

_COUNTS = [1, 2, 4]


def _rate(keyring, scpu_count, strength):
    config = SimulationConfig(scpu_count=scpu_count, workers=64,
                              host_count=8, disk_count=16)
    simstore = make_sim_store(config=config, keyring=keyring)
    metrics = run_closed_loop(
        simstore, ClosedLoopArrivals(FixedSize(1024), 300), config=config,
        write_kwargs=dict(strength=strength, defer_data_hash=True))
    return metrics.throughput("write")


@pytest.fixture(scope="module")
def scaling(paper_keyring):
    results = {}
    for strength in (Strength.STRONG, Strength.WEAK):
        results[strength] = [
            _rate(fresh_keyring_copy(paper_keyring), n, strength)
            for n in _COUNTS
        ]
    return results


def test_scaling_table(scaling, benchmark, paper_keyring):
    rows = []
    for strength, rates in scaling.items():
        rows.append([strength] + [f"{r:.0f}" for r in rates])
    print()
    print(format_table(
        ["mode \\ SCPUs"] + [str(n) for n in _COUNTS], rows,
        title="Multi-SCPU scaling — write throughput (records/s), 1KB records"))
    benchmark.pedantic(
        _rate, args=(fresh_keyring_copy(paper_keyring), 1, Strength.WEAK),
        rounds=1, iterations=1)


def test_two_scpus_near_double(scaling, benchmark):
    for strength, rates in scaling.items():
        assert 1.7 < rates[1] / rates[0] < 2.3, strength
    benchmark(lambda: None)


def test_four_scpus_near_quadruple(scaling, benchmark):
    for strength, rates in scaling.items():
        assert 3.2 < rates[2] / rates[0] < 4.5, strength
    benchmark(lambda: None)


def test_headline_2500_tps_single_scpu(paper_keyring, benchmark):
    """§1/§6: 'over 2500 transactions per second' with one SCPU.

    The deferred-512 mode reaches 2000-2500/s (Figure 1); with HMAC
    witnessing during the peak of the burst, a single card clears 2500.
    """
    rate = _rate(fresh_keyring_copy(paper_keyring), 1, Strength.HMAC)
    assert rate > 2500
    benchmark(lambda: None)
