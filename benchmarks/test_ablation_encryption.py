"""Ablation — the encryption-at-rest / crypto-shredding extension's cost.

Not a paper experiment (the extension goes beyond the paper's scope); this
ablation quantifies what the stronger Secure Deletion guarantee costs:

* per-write overhead: host-side ChaCha20 (SHA-like rate) + one SCPU key
  wrap (~100 µs) on top of the normal witnessing;
* per-read overhead: one SCPU key unwrap + host decryption — reads are no
  longer SCPU-free, the one architectural concession;
* epoch-rotation cost: O(active records) unwrap+wrap pairs, run in idle
  periods, amortized over deletion batches.
"""

from __future__ import annotations

import pytest

from repro.core.encryption import EncryptedWormStore
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.metrics import format_table

from conftest import fresh_keyring_copy

_SIZE = 16 * 1024


def _cost_of(fn, store):
    marks = store._cost_checkpoints()
    fn()
    return store._cost_delta(marks)


@pytest.fixture(scope="module")
def comparison(paper_keyring):
    plain_store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    enc_store = StrongWormStore(
        scpu=SecureCoprocessor(keyring=fresh_keyring_copy(paper_keyring)))
    encrypted = EncryptedWormStore(enc_store)

    from repro.crypto.keys import CertificateAuthority
    ca = CertificateAuthority(bits=512)
    plain_client = plain_store.make_client(ca)
    enc_client = enc_store.make_client(ca)

    payload = b"\x5c" * _SIZE
    results = {}
    plain_receipt = None
    enc_receipt = None

    def plain_write():
        nonlocal plain_receipt
        plain_receipt = plain_store.write([payload], policy="sox",
                                          defer_data_hash=True)

    def enc_write():
        nonlocal enc_receipt
        enc_receipt = encrypted.write(payload, policy="sox",
                                      defer_data_hash=True)

    results["plain write"] = _cost_of(plain_write, plain_store)
    results["encrypted write"] = _cost_of(enc_write, enc_store)
    results["plain read"] = _cost_of(
        lambda: plain_client.verify_read(plain_store.read(plain_receipt.sn),
                                         plain_receipt.sn), plain_store)
    results["encrypted read"] = _cost_of(
        lambda: encrypted.read_verified(enc_client, enc_receipt.sn), enc_store)
    return results, encrypted, enc_store


def test_overhead_table(comparison, benchmark):
    results, _, _ = comparison
    rows = [[label, f"{c['scpu'] * 1000:.3f}", f"{c['host'] * 1000:.3f}",
             f"{c['disk'] * 1000:.3f}"]
            for label, c in results.items()]
    print()
    print(format_table(["operation (16KB)", "scpu ms", "host ms", "disk ms"],
                       rows, title="Encryption-at-rest overhead"))
    benchmark(lambda: None)


def test_write_overhead_is_modest(comparison, benchmark):
    results, _, _ = comparison
    plain = sum(results["plain write"].values())
    encrypted = sum(results["encrypted write"].values())
    assert encrypted < 2.0 * plain  # well under doubling at 16KB
    benchmark(lambda: None)


def test_reads_pay_the_unwrap(comparison, benchmark):
    results, _, _ = comparison
    # The concession: encrypted reads touch the SCPU (one key unwrap).
    assert results["plain read"]["scpu"] == 0.0
    assert results["encrypted read"]["scpu"] > 0.0
    # But the unwrap is ~100µs — far below one disk seek.
    assert results["encrypted read"]["scpu"] < 0.001
    benchmark(lambda: None)


def test_rotation_cost_linear_in_survivors(comparison, benchmark):
    _, encrypted, enc_store = comparison
    for i in range(20):
        encrypted.write(b"x" * 128, policy="ferpa")
    mark = enc_store.scpu.meter.checkpoint()
    encrypted.shred_epoch()
    cost_21 = enc_store.scpu.meter.delta(mark)
    for i in range(40):
        encrypted.write(b"x" * 128, policy="ferpa")
    mark = enc_store.scpu.meter.checkpoint()
    encrypted.shred_epoch()
    cost_61 = enc_store.scpu.meter.delta(mark)
    assert 2.0 < cost_61 / cost_21 < 4.0  # ~linear in survivor count
    benchmark(lambda: None)
