"""Ablation — windows (O(1)) vs Merkle (O(log n)) vs RSA accumulator.

§2.3/§4.1: "To escape the O(log n) per update cost of the straight-forward
choice of deploying Merkle trees ... we introduce a novel mechanism with
identical assurances but constant cost per update."  PAPERS.md adds the
third contender: a trapdoor-assisted dynamic RSA accumulator whose SCPU
update is also O(1), but signed per write rather than amortized.

All three run as first-class backends behind ``StoreConfig.auth_scheme``
(the ``repro.baselines.merkle_worm`` special case this file's predecessor
measured is superseded), through one measurement core —
:mod:`repro.sim.ablation` — shared with the ``repro.cli auth-ablation``
artifact generator.  Expected shape, checked below:

* **update cost**: windows flat and cheapest; Merkle grows with log n;
  accumulator flat but with a per-write signature premium;
* **proof size**: windows and accumulator constant; Merkle O(log n);
* **reads**: SCPU-free for every scheme (the design invariant);
* **state size**: windows ~constant; Merkle and accumulator O(n).

Run a subset with ``--scheme`` (repeatable), e.g.::

    pytest benchmarks/test_ablation_auth_schemes.py --scheme windows \
        --scheme accumulator
"""

from __future__ import annotations

import pytest

from repro.sim.ablation import run_auth_ablation
from repro.sim.metrics import format_table

from conftest import ALL_SCHEMES

_STORE_SIZES = [64, 512, 4096]


@pytest.fixture(scope="module")
def sweeps(paper_keyring, request):
    """One full sweep per scheme selected via ``--scheme`` (default: all)."""
    selected = request.config.getoption("--scheme") or list(ALL_SCHEMES)
    return {scheme: run_auth_ablation(scheme, paper_keyring,
                                      sizes=_STORE_SIZES)
            for scheme in selected}


def _need(sweeps, *schemes):
    missing = [s for s in schemes if s not in sweeps]
    if missing:
        pytest.skip(f"scheme(s) {missing} deselected via --scheme")


def _column(sweeps, scheme, key):
    return [point[key] for point in sweeps[scheme]["points"]]


def test_three_way_cost_table(sweeps, benchmark, paper_keyring):
    rows = [[scheme] + [f"{v * 1e6:.0f}"
                        for v in _column(sweeps, scheme,
                                         "scpu_seconds_per_write")]
            for scheme in sweeps]
    print()
    print(format_table(
        ["scheme \\ prefill"] + [str(n) for n in _STORE_SIZES], rows,
        title="SCPU µs per write — windows / merkle / accumulator"))
    benchmark.pedantic(run_auth_ablation,
                       args=("windows", paper_keyring), kwargs={"sizes": [64]},
                       rounds=1, iterations=1)


def test_window_write_cost_flat(sweeps, benchmark):
    """O(1) amortized: per-write SCPU time independent of store size."""
    _need(sweeps, "windows")
    values = _column(sweeps, "windows", "scpu_seconds_per_write")
    assert max(values) / min(values) < 1.05
    benchmark(lambda: None)


def test_merkle_write_cost_grows(sweeps, benchmark):
    """O(log n): per-write SCPU time strictly grows with store size."""
    _need(sweeps, "merkle")
    values = _column(sweeps, "merkle", "scpu_seconds_per_write")
    assert values[0] < values[1] < values[2]
    benchmark(lambda: None)


def test_accumulator_write_cost_flat_with_signature_premium(sweeps, benchmark):
    """O(1) like windows, but paying a fresh signature every write."""
    _need(sweeps, "accumulator", "windows")
    values = _column(sweeps, "accumulator", "scpu_seconds_per_write")
    assert max(values) / min(values) < 1.05
    window_values = _column(sweeps, "windows", "scpu_seconds_per_write")
    assert min(values) > max(window_values)
    benchmark(lambda: None)


def test_merkle_gap_widens_with_store_size(sweeps, benchmark):
    _need(sweeps, "merkle", "windows")
    merkle = _column(sweeps, "merkle", "scpu_seconds_per_write")
    window = _column(sweeps, "windows", "scpu_seconds_per_write")
    gaps = [m - w for m, w in zip(merkle, window)]
    assert gaps[0] < gaps[1] < gaps[2]
    benchmark(lambda: None)


def test_reads_are_scpu_free_in_every_scheme(sweeps, benchmark):
    """The shared invariant: the active-read path never touches the card."""
    for scheme in sweeps:
        assert all(v == 0.0
                   for v in _column(sweeps, scheme, "read_scpu_seconds")), \
            scheme
    benchmark(lambda: None)


def test_witness_catchup_is_accumulator_only(sweeps, benchmark):
    """Cold-witness directory catch-up: the accumulator's host-side cost."""
    for scheme in ("windows", "merkle"):
        if scheme in sweeps:
            assert all(v == 0.0
                       for v in _column(sweeps, scheme,
                                        "witness_catchup_seconds")), scheme
    if "accumulator" in sweeps:
        values = _column(sweeps, "accumulator", "witness_catchup_seconds")
        assert all(v > 0.0 for v in values)
        assert values[0] < values[1] < values[2]  # staleness grows with n
    benchmark(lambda: None)


def test_proof_sizes(sweeps, benchmark):
    """Membership-proof bandwidth: constant / O(log n) / constant."""
    rows = [[scheme] + [str(int(v))
                        for v in _column(sweeps, scheme, "proof_bytes")]
            for scheme in sweeps]
    print()
    print(format_table(
        ["scheme \\ prefill"] + [str(n) for n in _STORE_SIZES], rows,
        title="Proof bytes per active read"))
    # "Constant" up to the decimal SN frontier inside the signed
    # statement — a digit per 10x growth, never a path per 2x.
    for scheme in ("windows", "accumulator"):
        if scheme in sweeps:
            values = _column(sweeps, scheme, "proof_bytes")
            assert max(values) - min(values) <= 4, scheme
    if "merkle" in sweeps:
        merkle = _column(sweeps, "merkle", "proof_bytes")
        assert merkle[2] - merkle[0] >= 32  # at least one more sibling
    benchmark(lambda: None)


def test_state_sizes(sweeps, benchmark):
    """Scheme-owned state: windows stays small; tree and cache grow O(n)."""
    if "windows" in sweeps:
        window = _column(sweeps, "windows", "state_bytes")
        assert max(window) - min(window) <= 8  # SN digits only
    for scheme in ("merkle", "accumulator"):
        if scheme in sweeps:
            values = _column(sweeps, scheme, "state_bytes")
            assert values[0] < values[1] < values[2]
    benchmark(lambda: None)
