#!/usr/bin/env python
"""SEC 17a-4 broker-dealer archive: end-of-day burst + idle strengthening.

The workload that motivates §4.3: a brokerage archives its trade blotter
in a sharp end-of-day burst that exceeds what full-strength SCPU signing
sustains.  The store absorbs the burst with short-lived 512-bit
signatures (and host-computed data hashes, verified later), then the
overnight idle period strengthens everything — well inside the weak
constructs' security lifetime.

Run:  python examples/sec17a4_broker_archive.py
"""

import random

from repro import CertificateAuthority, StrongWormStore, Strength, demo_keyring
from repro.hardware import SecureCoprocessor


def trade_record(rng: random.Random, i: int) -> bytes:
    side = rng.choice(["BUY", "SELL"])
    ticker = rng.choice(["ACME", "GLOBEX", "INITECH", "HOOLI"])
    qty = rng.randint(100, 10_000)
    price = rng.uniform(5.0, 500.0)
    return (f"T{i:06d} {side} {qty} {ticker} @ {price:.2f} "
            f"acct={rng.randint(10_000, 99_999)}").encode()


def main() -> None:
    rng = random.Random(17)
    ca = CertificateAuthority(bits=512)
    scpu = SecureCoprocessor(keyring=demo_keyring())
    store = StrongWormStore(scpu=scpu)
    client = store.make_client(ca)

    # -- 16:00: the end-of-day burst, witnessed weakly -----------------
    print("16:00 — archiving the day's blotter (burst mode)...")
    receipts = []
    for i in range(200):
        receipts.append(store.write(
            [trade_record(rng, i)],
            policy="sec17a-4",            # 6-year retention floor
            strength=Strength.WEAK,        # 512-bit burst signatures
            defer_data_hash=True,          # host hashes; SCPU verifies later
        ))
    burst_scpu_ms = sum(r.costs["scpu"] for r in receipts) * 1000
    print(f"  200 trades committed; SCPU spent {burst_scpu_ms:.1f} virtual ms "
          f"({burst_scpu_ms / 200:.2f} ms/trade)")

    # Records are immediately readable — flagged as weakly signed.
    sample = receipts[42]
    verified = client.verify_read(store.read(sample.sn), sample.sn)
    print(f"  spot check SN {sample.sn}: {verified.status}, "
          f"weakly_signed={verified.weakly_signed}")
    print(f"  strengthening backlog: {len(store.strengthening)} records, "
          f"unverified hashes: {len(store.hash_verification)}")

    # -- 16:30: the post-close lull does the §4.3 heavy lifting --------
    # Strengthening MUST land inside the 512-bit constructs' ~60-minute
    # security lifetime; a prudent operator drains the queue within the
    # first idle half hour, not overnight.
    print("16:30 — post-close lull, maintenance slice...")
    scpu.clock.advance(30 * 60.0)
    summary = store.maintenance()
    print(f"  strengthened {summary['strengthened']} signatures, "
          f"verified {summary['hashes_verified']} deferred hashes")
    print(f"  lifetime violations: "
          f"{store.strengthening.lifetime_violations} (must be 0)")
    print(f"  host-hash mismatches: "
          f"{store.hash_verification.mismatches} (must be [])")

    # -- next morning: everything strongly signed ----------------------
    verified = client.verify_read(store.read(sample.sn), sample.sn)
    print(f"09:00 — spot check SN {sample.sn}: {verified.status}, "
          f"weakly_signed={verified.weakly_signed}")

    # -- 6+ years later: retention passes, records become deletable ----
    print("2032 — retention expires; the RM shreds and issues proofs...")
    scpu.clock.advance(6.1 * 365 * 24 * 3600.0)
    summary = store.maintenance()
    print(f"  expired {summary['expired']} records, "
          f"compacted {summary['windows_compacted']} deletion window(s), "
          f"base advanced: {bool(summary['base_advanced'])}")
    verified = client.verify_read(store.read(sample.sn), sample.sn)
    print(f"  SN {sample.sn} now: {verified.status} "
          f"(proof: {verified.proof_kind})")
    print(f"  VRDT footprint: {store.vrdt.estimated_bytes()} bytes "
          f"for {store.scpu.current_serial_number} lifetime records")


if __name__ == "__main__":
    main()
