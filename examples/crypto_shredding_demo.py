#!/usr/bin/env python
"""Crypto-shredding: secure deletion that survives hoarded media copies.

§1's Secure Deletion demands that deleted records "not be recoverable
even with unrestricted access to the underlying storage medium".
Overwrite passes handle the store's own disks — but not the copy Mallory
made of the raw medium *last month*.  The encrypted-records extension
closes that hole:

1. records are encrypted at rest under per-record DEKs;
2. DEKs are wrapped by an epoch key that exists only inside the SCPU;
3. deletion = shred the ciphertext + drop the DEK from the survivor set;
4. the next epoch rotation destroys the old epoch key inside the
   enclosure — at which point every hoarded copy (ciphertext + wrapped
   DEK) on any medium anywhere becomes undecryptable noise.

Run:  python examples/crypto_shredding_demo.py
"""

from repro import CertificateAuthority, StrongWormStore, demo_keyring
from repro.core.encryption import EncryptedWormStore
from repro.hardware import SecureCoprocessor


def main() -> None:
    ca = CertificateAuthority(bits=512)
    scpu = SecureCoprocessor(keyring=demo_keyring())
    store = StrongWormStore(scpu=scpu)
    estore = EncryptedWormStore(store)
    client = store.make_client(ca)

    # -- two records: one regrettable, one routine -----------------------
    secret = estore.write(b"payroll exception list, Q2", retention_seconds=60.0)
    routine = estore.write(b"office seating chart", policy="ferpa")
    print(f"committed SN {secret.sn} (60s retention) and SN {routine.sn}")
    on_disk = store.blocks.get(secret.vrd.rdl[0].key)
    print(f"on disk, SN {secret.sn} is ciphertext: {on_disk[:24].hex()}...")

    # -- Mallory images the whole medium today ---------------------------
    hoarded_ciphertext = bytes(on_disk)
    hoarded_wrapped_dek = estore.wrapped_table()[secret.sn]
    print("Mallory images the disk AND the wrapped-DEK table "
          f"(epoch {estore.current_epoch}).")

    # -- reads still work for authorized clients --------------------------
    read = estore.read_verified(client, secret.sn)
    print(f"authorized verified read: {read.plaintext!r}")

    # -- retention passes; maintenance shreds + rotates the epoch ---------
    scpu.clock.advance(120.0)
    summary = estore.maintenance()
    print(f"maintenance: expired={summary['expired']}, "
          f"DEKs destroyed={summary['deks_destroyed']}, "
          f"now in epoch {estore.current_epoch}")

    # -- the hoarded copy is now cryptographic noise ------------------------
    from repro.hardware.scpu import WrappedKey
    hoarded = WrappedKey.from_dict(hoarded_wrapped_dek)
    try:
        scpu.unwrap_key(hoarded)
        print("FAILURE: hoarded DEK unwrapped!")
    except ValueError as exc:
        print(f"hoarded wrapped DEK refused by the SCPU: {exc}")
    print(f"hoarded ciphertext ({len(hoarded_ciphertext)} bytes) is "
          "undecryptable without the destroyed epoch key.")

    # -- the routine record sailed through the rotation --------------------
    read = estore.read_verified(client, routine.sn)
    print(f"survivor still reads fine: {read.plaintext!r}")


if __name__ == "__main__":
    main()
