#!/usr/bin/env python
"""Regenerate Figure 1 from the command line (ASCII plot included).

Sweeps record sizes for each witnessing mode of §4.3 and prints both the
table and a rough ASCII rendering of the paper's figure.  All numbers are
virtual-time throughput under the Table 2 device calibration.

Run:  python examples/throughput_figure1.py [--quick]
"""

import sys

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import SigningKey
from repro.hardware.scpu import ScpuKeyring, Strength
from repro.sim.driver import make_sim_store, run_closed_loop
from repro.sim.metrics import format_table
from repro.sim.workload import ClosedLoopArrivals, FixedSize

SIZES = [1024, 4096, 16384, 65536, 262144]
MODES = [
    ("strong-1024", dict(strength=Strength.STRONG, defer_data_hash=True)),
    ("deferred-512", dict(strength=Strength.WEAK, defer_data_hash=True)),
    ("deferred-512+scpu-hash", dict(strength=Strength.WEAK)),
    ("hmac", dict(strength=Strength.HMAC, defer_data_hash=True)),
]


def paper_keyring() -> ScpuKeyring:
    print("generating 1024-bit SCPU keys (the paper's parameters)...")
    return ScpuKeyring(
        s_key=SigningKey.generate(1024, "s"),
        d_key=SigningKey.generate(1024, "d"),
        burst_key=SigningKey.generate(512, "burst"),
        hmac=HmacScheme(),
    )


def ascii_plot(series: dict, width: int = 56) -> str:
    peak = max(max(values) for values in series.values())
    lines = ["records/s (each bar row: one record size, 1KB -> 256KB)"]
    for label, values in series.items():
        lines.append(f"{label}:")
        for size, value in zip(SIZES, values):
            bar = "#" * max(1, int(value / peak * width))
            lines.append(f"  {size // 1024:4d}KB |{bar} {value:.0f}")
    return "\n".join(lines)


def main() -> None:
    count = 60 if "--quick" in sys.argv else 200
    keyring = paper_keyring()
    series = {}
    for label, kwargs in MODES:
        series[label] = []
        for size in SIZES:
            simstore = make_sim_store(keyring=keyring)
            metrics = run_closed_loop(
                simstore, ClosedLoopArrivals(FixedSize(size), count),
                write_kwargs=dict(kwargs))
            series[label].append(metrics.throughput("write"))
        print(f"  {label}: done")

    print()
    rows = [[label] + [f"{v:.0f}" for v in values]
            for label, values in series.items()]
    print(format_table(
        ["mode \\ size"] + [f"{s // 1024}KB" for s in SIZES], rows,
        title="Figure 1 — throughput vs record size (records/s)"))
    print()
    print(ascii_plot(series))
    print()
    print("paper bands: deferred 2000-2500/s, strong 450-500/s at small sizes")


if __name__ == "__main__":
    main()
