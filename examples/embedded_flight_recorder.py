#!/usr/bin/env python
"""Embedded block-level WORM: a flight-data-recorder scenario (§4.1).

The paper notes its mechanisms can live "inside a block-level storage
device interface (e.g., in embedded scenarios without namespaces or
indexing constraints)".  This example plays that out: a recorder writes
fixed-size telemetry frames to consecutive LBAs of a WORM block device.
After an incident, an investigator reads the device back with full
verification — and catches the one frame an insider doctored, plus the
LBA-remap trick of serving a boring frame in place of a damning one.

Run:  python examples/embedded_flight_recorder.py
"""

import struct

from repro import CertificateAuthority, StrongWormStore, demo_keyring
from repro.blockdev import BlockWriteError, WormBlockDevice
from repro.core.errors import VerificationError
from repro.hardware import SecureCoprocessor

FRAME = struct.Struct(">Idd16s")  # seq, altitude, airspeed, note


def telemetry_frame(seq: int, altitude: float, airspeed: float,
                    note: bytes = b"") -> bytes:
    return FRAME.pack(seq, altitude, airspeed, note.ljust(16, b"\x00"))


def main() -> None:
    ca = CertificateAuthority(bits=512)
    store = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
    device = WormBlockDevice(store, block_size=64, capacity_blocks=256,
                             retention_seconds=25 * 365 * 24 * 3600.0)
    client = store.make_client(ca)

    # -- the flight: frames stream to consecutive blocks -------------------
    profile = [(0, 0.0, 0.0, b"taxi"), (1, 120.0, 140.0, b"rotate"),
               (2, 900.0, 210.0, b"climb"), (3, 9500.0, 430.0, b"cruise"),
               (4, 9400.0, 445.0, b"OVERSPEED WARN"),
               (5, 7200.0, 410.0, b"descent"), (6, 0.0, 45.0, b"landing")]
    for seq, alt, speed, note in profile:
        device.write_block(seq, telemetry_frame(seq, alt, speed, note))
    print(f"recorded {device.blocks_written} frames "
          f"({device.capacity_bytes} B device, write-once LBAs)")

    # Write-once really means once:
    try:
        device.write_block(4, telemetry_frame(4, 9400.0, 430.0, b"nominal"))
    except BlockWriteError as exc:
        print(f"in-flight overwrite attempt refused: {exc}")

    # -- post-incident: the insider gets to the raw medium -----------------
    sn = device.sn_of(4)
    vrd = store.vrdt.get_active(sn)
    doctored = telemetry_frame(4, 9400.0, 430.0, b"nominal")
    framed = store.blocks.get(vrd.rdl[0].key)[:16] + doctored.ljust(48, b"\x00")
    store.blocks.unchecked_overwrite(vrd.rdl[0].key, framed)
    print("insider rewrites frame 4 on the raw medium ('OVERSPEED' -> 'nominal')")
    # ...and also remaps LBA 4 to serve the boring cruise frame:
    remap_backup = device._lba_map[4]
    device._lba_map[4] = device._lba_map[3]

    # -- the investigation ---------------------------------------------------
    print("investigator replays the device with verification:")
    device._lba_map[4] = remap_backup  # first: the remap variant
    for lba in range(7):
        try:
            frame = device.read_block_verified(client, lba)
            seq, alt, speed, note = FRAME.unpack(frame[:FRAME.size])
            label = note.rstrip(b"\x00").decode("ascii", "replace")
            print(f"  LBA {lba}: seq={seq} alt={alt:7.1f} note={label!r} OK")
        except VerificationError as exc:
            print(f"  LBA {lba}: TAMPERED — {str(exc)[:60]}")

    device._lba_map[4] = device._lba_map[3]
    try:
        device.read_block(4)
    except VerificationError as exc:
        print(f"remap also caught: {str(exc)[:64]}")


if __name__ == "__main__":
    main()
