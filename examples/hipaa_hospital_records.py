#!/usr/bin/env python
"""HIPAA hospital records: secure deletion, litigation holds, shared VRs.

A hospital archives patient records under HIPAA (6-year retention, PHI
*must* be destroyed at end-of-life with a multi-pass shred).  Mid-life, a
malpractice suit places a court-ordered litigation hold on one chart —
which then outlives its retention period until the court releases it.
Radiology images are shared across VRs (the §4.2 popular-attachment
pattern), so a shared image survives until the *last* VR referencing it
expires.

This example uses the on-disk block store so you can watch the files
appear and disappear.

Run:  python examples/hipaa_hospital_records.py
"""

import tempfile
from pathlib import Path

from repro import CertificateAuthority, SigningKey, StrongWormStore, demo_keyring
from repro.crypto.envelope import Envelope, Purpose
from repro.hardware import SecureCoprocessor
from repro.storage.block_store import DirectoryBlockStore

YEAR = 365.0 * 24 * 3600


def credential(regulator: SigningKey, sn: int, now: float):
    """A court order: S_reg(SN, current_time) per §4.2.2 Litigation."""
    return regulator.sign_envelope(Envelope(
        purpose=Purpose.LITIGATION_CREDENTIAL,
        fields={"sn": sn}, timestamp=now))


def main() -> None:
    ca = CertificateAuthority(bits=512)
    court = SigningKey.generate(512, role="regulator")
    scpu = SecureCoprocessor(keyring=demo_keyring())
    blockdir = Path(tempfile.mkdtemp(prefix="hipaa-worm-"))
    store = StrongWormStore(
        scpu=scpu,
        block_store=DirectoryBlockStore(blockdir),
        regulator_public_key=court.public,
    )
    client = store.make_client(ca)
    print(f"block store on disk: {blockdir}")

    # -- admissions: two charts share one radiology image ---------------
    xray = store.write([b"<DICOM image: chest x-ray, 2.1MB>"], policy="hipaa")
    xray_rd = xray.vrd.rdl[0]
    chart_a = store.write([b"Patient A: pneumonia, treated, discharged"],
                          policy="hipaa", shared_rds=[xray_rd],
                          mac_label="phi", dac_owner="dr-chen")
    chart_b = store.write([b"Patient B: routine screening, clear"],
                          policy="hipaa", shared_rds=[xray_rd],
                          mac_label="phi", dac_owner="dr-chen")
    print(f"admitted: x-ray SN {xray.sn}, charts SN {chart_a.sn} "
          f"(shares image), SN {chart_b.sn} (shares image)")
    print(f"  files on disk: {len(list(store.blocks.keys()))}")

    # -- year 3: malpractice suit → litigation hold on chart A ----------
    scpu.clock.advance(3 * YEAR)
    hold = credential(court, chart_a.sn, store.now)
    store.lit_hold(chart_a.sn, hold, hold_timeout=store.now + 5 * YEAR)
    print(f"year 3: court hold placed on SN {chart_a.sn} "
          f"(metasig re-issued by the SCPU)")

    # -- year 6.5: HIPAA retention passes ---------------------------------
    scpu.clock.advance(3.5 * YEAR)
    summary = store.maintenance()
    print(f"year 6.5: maintenance expired {summary['expired']} records")
    print(f"  chart A (held): "
          f"{client.verify_read(store.read(chart_a.sn), chart_a.sn).status}")
    print(f"  chart B: "
          f"{client.verify_read(store.read(chart_b.sn), chart_b.sn).status}")
    # The shared x-ray payload survives while chart A references it.
    assert xray_rd.key in store.blocks
    print(f"  shared x-ray payload still on disk "
          f"(chart A references it): True")

    # -- year 8: the court releases the hold ------------------------------
    scpu.clock.advance(1.5 * YEAR)
    release = credential(court, chart_a.sn, store.now)
    store.lit_release(chart_a.sn, release)
    summary = store.maintenance()
    print(f"year 8: hold released; maintenance expired "
          f"{summary['expired']} record(s) — DoD 3-pass shred (HIPAA PHI)")
    verified = client.verify_read(store.read(chart_a.sn), chart_a.sn)
    print(f"  chart A now: {verified.status} (proof: {verified.proof_kind})")
    print(f"  files on disk: {len(list(store.blocks.keys()))} "
          f"(no PHI traces remain)")

    # Every SN is still accountable: active, deleted-with-proof, or
    # never allocated — nothing can silently vanish.
    store.windows.refresh_current(force=True)
    for sn in range(1, scpu.current_serial_number + 1):
        status = client.verify_read(store.read(sn), sn).status
        print(f"  SN {sn}: {status}")


if __name__ == "__main__":
    main()
