#!/usr/bin/env python
"""Compliant migration: moving a WORM store to new media (§1).

"Retention periods are measured in years ... compliant data migration
mechanisms are required to transfer information from obsolete to new
storage media while preserving the associated security assurances."

A 2018-vintage store (aging disks, aging SCPU) migrates to new hardware:

1. the source SCPU signs a manifest over the full package;
2. the destination SCPU verifies the manifest and every record's
   signatures before re-witnessing anything;
3. retention clocks carry over (a record 4 years into a 6-year period
   has 2 years left, not 6);
4. a record Mallory doctored on the old store's disks is REFUSED at
   import — migration is precisely where altered history would otherwise
   be laundered into a clean new store.

Run:  python examples/compliant_migration.py
"""

from repro import (
    CertificateAuthority,
    StrongWormStore,
    demo_keyring,
    export_package,
    import_package,
)
from repro.hardware import SecureCoprocessor

YEAR = 365.0 * 24 * 3600


def main() -> None:
    ca = CertificateAuthority(bits=512)

    # -- the obsolete store, 4 years into service ------------------------
    old = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
    ledger = old.write([b"general ledger FY2022"], policy="sox")
    contracts = old.write([b"vendor contracts 2022-2029"], policy="sec17a-4")
    doomed = old.write([b"press clippings"], retention_seconds=1 * YEAR)
    old.scpu.clock.advance(4 * YEAR)
    old.maintenance()  # the clippings expired along the way
    print(f"source store: {len(old.vrdt.active_sns)} active records, "
          f"{old.vrdt.proof_count()} deletion proofs, 4 years of history")

    # -- Mallory doctors one record on the old disks before the move -----
    old.blocks.unchecked_overwrite(
        contracts.vrd.rdl[0].key, b"vendor contracts 2022-2029 [REDACTED]")
    print("(Mallory quietly rewrites the contracts record on the old disks)")

    # -- export: source SCPU signs the migration manifest -----------------
    package = export_package(old, ca)
    print(f"exported package: {len(package.blocks)} payloads, manifest "
          f"signed by source SCPU at t={package.manifest.timestamp:.0f}")

    # -- import: new store, new SCPU, new keys ----------------------------
    new = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
    new.scpu.clock.advance(4 * YEAR)  # wall-clock time is shared
    report = import_package(new, package, ca)

    print(f"import report: migrated={report.migrated}, "
          f"rejected={len(report.rejected)}, "
          f"archived deletion proofs={report.archived_deletion_proofs}")
    for sn, reason in report.rejected:
        print(f"  REJECTED source SN {sn}: {reason}")

    # -- the clean record carried its retention clock ---------------------
    new_sn = report.sn_mapping[ledger.sn]
    vrd = new.vrdt.get_active(new_sn)
    remaining = (vrd.attr.expires_at - new.now) / YEAR
    print(f"ledger migrated as SN {new_sn}: "
          f"{remaining:.1f} years of retention remaining (not reset to 7)")

    # -- and verifies under the new store's trust chain -------------------
    client = new.make_client(ca)
    verified = client.verify_read(new.read(new_sn), new_sn)
    print(f"verified on new store: {verified.status}, "
          f"data={verified.data!r}")


if __name__ == "__main__":
    main()
