#!/usr/bin/env python
"""Sharded ingest: four SCPUs, one store surface, group-commit batching.

§4.3 shows per-record SCPU witnessing bounds write throughput; §5 notes
the results "naturally scale if multiple SCPUs are available".  This
example stands up a 4-shard :class:`ShardedWormStore`, ingests a batch
of audit events with group commit, then verifies a read from each shard
with ONE client — the shards share a keyring, so one certificate set
covers them all.

Run:  python examples/sharded_ingest.py
"""

from repro import CertificateAuthority, StoreConfig, demo_keyring
from repro.core.sharded import ShardedWormStore


def main() -> None:
    ca = CertificateAuthority(bits=512)
    store = ShardedWormStore.build(
        shard_count=4, keyring=demo_keyring(),
        config=StoreConfig(group_commit_size=8))
    client = store.make_client(ca)

    # 1. Group-commit 16 audit events in one call: each shard receives
    #    4 records and witnesses them with a single metasig/datasig pair.
    events = [b"audit event %02d: wire transfer approved" % i
              for i in range(16)]
    receipts = store.write_batch(events, policy="sox")
    per_record = store.write([b"one-off, unbatched record"], policy="sox")
    print(f"group-committed {len(receipts)} records across "
          f"{store.shard_count} shards "
          f"({receipts[0].batch_size} records per witnessing signature)")

    # 2. Receipts carry stable locators -- (shard_id, sn, record_index) --
    #    that survive being written down.
    sample = receipts[5]
    print(f"receipt 5 locator: {sample.locator.pack()!r} "
          f"(strength={sample.strength})")

    # 3. Amortization, made visible: a batched record's attributable SCPU
    #    cost vs. the same record written alone.
    batched_ms = sample.costs["scpu"] * 1000
    alone_ms = per_record.costs["scpu"] * 1000
    print(f"SCPU cost per record: {batched_ms:.2f} virtual ms batched "
          f"vs {alone_ms:.2f} alone ({alone_ms / batched_ms:.1f}x saved)")

    # 4. One client verifies reads from every shard.
    for receipt in (receipts[0], receipts[5], receipts[15], per_record):
        verified = client.verify_read(store.read(receipt.locator),
                                      receipt.sn)
        assert verified.status == "active"
    print(f"verified one read from each of {store.shard_count} shards "
          "with a single client")

    # 5. Maintenance splits its budget across the shards' idle periods.
    store.advance_clocks(300.0)
    summary = store.maintenance(strengthen_budget=64)
    print(f"maintenance slice: {summary['windows_compacted']} windows "
          f"compacted, {summary['expired']} expired")

    costs = store.cost_summary()
    print(f"total virtual cost: scpu={costs['scpu'] * 1000:.1f}ms "
          f"host={costs['host'] * 1000:.1f}ms "
          f"disk={costs['disk'] * 1000:.1f}ms")


if __name__ == "__main__":
    main()
