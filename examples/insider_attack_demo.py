#!/usr/bin/env python
"""Insider attack demo: soft-WORM falls, Strong WORM detects (§2.1, §3, §5).

Re-enacts the paper's threat story.  Alice archives a record; later she
regrets it and — as "Mallory", with superuser powers and physical disk
access — rewrites history.  Against a software-only WORM product (the
§3 state of the art) the alteration is *undetectable*.  Against the
SCPU-backed Strong WORM every attack in the suite is caught, except the
one deliberately bounded exposure (§4.2.1), which is reported honestly.

Run:  python examples/insider_attack_demo.py
"""

from repro.adversary.games import run_suite
from repro.baselines.soft_worm import SoftWormStore
from repro.sim.manual_clock import ManualClock
from repro.sim.metrics import format_table


def soft_worm_falls() -> None:
    print("=" * 72)
    print("Act I — the EMC-Centera-class soft-WORM (§3)")
    print("=" * 72)
    soft = SoftWormStore(clock=ManualClock())
    rid = soft.write(b"2026-03-14: wire $4.2M to offshore acct #7741",
                     retention_seconds=6 * 365 * 24 * 3600.0)
    print(f"Alice archives the wire record (id {rid}).")

    try:
        soft.overwrite(rid, b"nothing to see here")
    except Exception as exc:
        print(f"API overwrite refused, as advertised: {exc}")

    print("Mallory opens the drive enclosure (direct media access)...")
    soft.insider_rewrite(rid, b"2026-03-14: wire $4.2K to vendor acct #0001")
    result = soft.read(rid)
    print(f"Auditor reads id {rid}: checksum_ok={result.checksum_ok}")
    print(f"  -> {result.data.decode()}")
    print("The product's own verification blesses the forged record.")
    print("History has been rewritten, UNDETECTED.\n")


def strong_worm_detects() -> None:
    print("=" * 72)
    print("Act II — Strong WORM: the full insider attack suite (§5)")
    print("=" * 72)
    suite = run_suite()
    rows = [[f"T{o.theorem}", o.name,
             "DETECTED" if o.detected else "undetected",
             (o.detail[:48] + "...") if len(o.detail) > 51 else o.detail]
            for o in suite.outcomes]
    print(format_table(["thm", "attack", "outcome", "how"], rows))
    print()
    print(f"{suite.detected}/{suite.total} attacks detected.")
    undetected = [o for o in suite.outcomes if not o.detected]
    for o in undetected:
        print(f"undetected (BY DESIGN): {o.name} — a record can be denied "
              f"for at most refresh_interval + freshness_window seconds "
              f"after its write (§4.2.1 mechanism (ii)).")
    print(f"Theorems 1 and 2 hold: {suite.theorems_hold}")


def main() -> None:
    soft_worm_falls()
    strong_worm_detects()


if __name__ == "__main__":
    main()
