#!/usr/bin/env python
"""Replicated WORM archive: surviving destruction, localizing tampering.

Three replicas, each with its own SCPU and proof system.  An insider
corrupts one replica's media and physically destroys another's SCPU; the
archive keeps serving verified reads from the survivor, and the
divergence audit pinpoints exactly which replica went bad.

Run:  python examples/replicated_archive.py
"""

from repro import CertificateAuthority, StrongWormStore, demo_keyring
from repro.core.replication import MirroredWormStore
from repro.hardware import SecureCoprocessor
from repro.sim.manual_clock import ManualClock


def main() -> None:
    ca = CertificateAuthority(bits=512)
    clock = ManualClock()
    stores = [StrongWormStore(scpu=SecureCoprocessor(
        keyring=demo_keyring(), clock=clock)) for _ in range(3)]
    clients = [store.make_client(ca) for store in stores]
    archive = MirroredWormStore(stores, clients)
    print(f"archive: {archive.replica_count} replicas, independent SCPUs")

    # -- commit the quarter's filings ------------------------------------
    filings = [archive.write([f"10-Q filing, section {i}".encode()],
                             policy="sox") for i in range(4)]
    print(f"committed {archive.record_count} records "
          f"(per-replica SNs e.g. {filings[0].replica_sns})")

    # -- disaster strikes ---------------------------------------------------
    victim = filings[2]
    replica0 = stores[0]
    sn0 = victim.replica_sns[0]
    rd = replica0.vrdt.get_active(sn0).rdl[0]
    replica0.blocks.unchecked_overwrite(rd.key, b"doctored filing!!")
    print("replica 0: insider rewrites one filing on the raw medium")
    stores[1].scpu.tamper.trip()
    print("replica 1: enclosure breached -> SCPU zeroized itself")

    # -- the archive still answers, with proofs -----------------------------
    data = archive.read_verified(victim.record_id)
    print(f"verified read still succeeds (served by replica 2): {data!r}")

    # -- and the audit localizes the damage -----------------------------------
    report = archive.audit_divergence()
    print(f"divergence audit: checked={report.checked}, "
          f"clean={report.clean}")
    bad_replicas = sorted({replica for _, replica in report.unavailable})
    print(f"replicas with unverifiable records: {bad_replicas} "
          "(0 = tampered media, 1 = dead SCPU)")
    per_replica = {}
    for record_id, replica in report.unavailable:
        per_replica.setdefault(replica, []).append(record_id)
    for replica, records in sorted(per_replica.items()):
        print(f"  replica {replica}: record ids {records}")


if __name__ == "__main__":
    main()
