#!/usr/bin/env python
"""Quickstart: write, verify, expire, and prove deletion in 40 lines.

Run:  python examples/quickstart.py
"""

from repro import CertificateAuthority, StrongWormStore, demo_keyring
from repro.hardware import SecureCoprocessor


def main() -> None:
    # A regulatory CA certifies the SCPU's keys; clients trust only the CA.
    ca = CertificateAuthority(bits=512)
    scpu = SecureCoprocessor(keyring=demo_keyring())
    store = StrongWormStore(scpu=scpu)
    client = store.make_client(ca)

    # 1. Commit a record under Sarbanes-Oxley (7-year retention floor).
    receipt = store.write([b"Q3 board minutes: the merger is approved."],
                          policy="sox")
    print(f"committed SN {receipt.sn} "
          f"(SCPU cost {receipt.costs['scpu'] * 1000:.2f} virtual ms)")

    # 2. Read it back and *verify* — signatures, freshness, the works.
    verified = client.verify_read(store.read(receipt.sn), receipt.sn)
    print(f"verified read: status={verified.status!r}, "
          f"data={verified.data[:30]!r}...")

    # 3. A second record with a short retention, to watch it expire.
    brief = store.write([b"temporary scratch data"], retention_seconds=60.0)

    # 4. Time passes; the Retention Monitor shreds the expired record.
    scpu.clock.advance(120.0)
    summary = store.maintenance()
    print(f"maintenance: {summary['expired']} record(s) expired and shredded")

    # 5. Reading the deleted record yields a *proof* of rightful deletion.
    verified = client.verify_read(store.read(brief.sn), brief.sn)
    print(f"SN {brief.sn}: status={verified.status!r} "
          f"(proof kind: {verified.proof_kind})")

    # 6. Reading a never-written SN proves it never existed.
    verified = client.verify_read(store.read(999), 999)
    print(f"SN 999: status={verified.status!r}")


if __name__ == "__main__":
    main()
