"""Unit tests for the telemetry bus (counters, gauges, histograms, events).

The bus is untrusted main-CPU bookkeeping: it never reads a clock
(callers stamp virtual times), a disabled bus is a pure no-op, and the
snapshot is the single export surface everything downstream (schema
check, reconciliation, benchmarks) keys on.
"""

from __future__ import annotations

import pytest

from repro.obs import DEFAULT_BUCKETS, NULL_BUS, Histogram, TelemetryBus
from repro.sim.tracing import TraceRecorder


class TestCounters:
    def test_inc_and_read(self):
        bus = TelemetryBus()
        bus.inc("store.writes")
        bus.inc("store.writes", 2.0)
        assert bus.counter("store.writes") == 3.0

    def test_untouched_counter_reads_zero(self):
        assert TelemetryBus().counter("never.touched") == 0.0

    def test_declared_counter_appears_in_snapshot_at_zero(self):
        bus = TelemetryBus()
        bus.declare_counter("store.reads")
        assert bus.snapshot()["counters"] == {"store.reads": 0.0}

    def test_counters_are_monotonic(self):
        bus = TelemetryBus()
        with pytest.raises(ValueError):
            bus.inc("store.writes", -1.0)

    def test_fractional_increments_accumulate(self):
        bus = TelemetryBus()
        bus.inc("device.scpu.seconds", 0.25)
        bus.inc("device.scpu.seconds", 0.5)
        assert bus.counter("device.scpu.seconds") == pytest.approx(0.75)


class TestGauges:
    def test_multiple_providers_sum(self):
        # One provider per shard; the snapshot reports the store total.
        bus = TelemetryBus()
        bus.register_gauge("strengthen.backlog", lambda: 3.0)
        bus.register_gauge("strengthen.backlog", lambda: 4.0)
        assert bus.gauge_value("strengthen.backlog") == 7.0
        assert bus.snapshot()["gauges"]["strengthen.backlog"] == 7.0

    def test_gauges_are_pull_style(self):
        bus = TelemetryBus()
        backlog = [5]
        bus.register_gauge("depth", lambda: float(backlog[0]))
        assert bus.gauge_value("depth") == 5.0
        backlog[0] = 2
        assert bus.gauge_value("depth") == 2.0

    def test_unregistered_gauge_reads_zero(self):
        assert TelemetryBus().gauge_value("nope") == 0.0


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        data = h.as_dict()
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(106.2)
        assert data["buckets"] == [
            {"le": 1.0, "count": 2},
            {"le": 10.0, "count": 3},
            {"le": "+Inf", "count": 4},
        ]

    def test_bounds_are_sorted(self):
        assert Histogram(buckets=(5.0, 1.0)).bounds == (1.0, 5.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_bus_observe_creates_on_first_use(self):
        bus = TelemetryBus()
        bus.observe("op.write.seconds", 0.3)
        histogram = bus.histogram("op.write.seconds")
        assert histogram is not None
        assert histogram.count == 1
        assert histogram.bounds == tuple(sorted(DEFAULT_BUCKETS))

    def test_declared_histogram_in_snapshot_when_empty(self):
        bus = TelemetryBus()
        bus.declare_histogram("op.read.seconds")
        data = bus.snapshot()["histograms"]["op.read.seconds"]
        assert data["count"] == 0
        assert data["sum"] == 0.0


class TestEvents:
    def test_events_record_virtual_time_and_fields(self):
        bus = TelemetryBus()
        bus.event("failover", 12.5, from_shard=1, to_shard=2)
        (event,) = bus.events
        assert event.time == 12.5
        assert event.as_dict() == {"name": "failover", "t": 12.5,
                                   "from_shard": 1, "to_shard": 2}

    def test_capacity_drops_are_counted_not_silent(self):
        bus = TelemetryBus(event_capacity=2)
        for i in range(5):
            bus.event("tick", float(i))
        assert len(bus.events) == 2
        assert bus.events_dropped == 3
        snapshot = bus.snapshot()["events"]
        assert snapshot["count"] == 2
        assert snapshot["dropped"] == 3
        assert snapshot["by_name"] == {"tick": 2}


class TestSpans:
    def test_spans_forward_to_trace_recorder(self):
        trace = TraceRecorder()
        bus = TelemetryBus(trace=trace)
        bus.span("write", "scpu", 0.0, 1.5, device="scpu")
        assert len(trace) == 1
        assert bus.snapshot()["spans"] == 1

    def test_span_without_sink_is_noop(self):
        bus = TelemetryBus()
        bus.span("write", "scpu", 0.0, 1.5)
        assert bus.snapshot()["spans"] == 0


class TestDeviceCharge:
    def test_maintains_ops_and_seconds_counters(self):
        bus = TelemetryBus()
        bus.device_charge("scpu", "sign", 1.2)
        bus.device_charge("scpu", "verify", 0.3)
        assert bus.counter("device.scpu.ops") == 2.0
        assert bus.counter("device.scpu.seconds") == pytest.approx(1.5)


class TestDisabledBus:
    def test_every_mutator_is_a_noop(self):
        bus = TelemetryBus(enabled=False)
        bus.declare_counter("c")
        bus.inc("c", 5.0)
        bus.register_gauge("g", lambda: 9.0)
        bus.declare_histogram("h")
        bus.observe("h", 1.0)
        bus.event("e", 0.0)
        bus.device_charge("scpu", "sign", 1.0)
        assert bus.counter("c") == 0.0
        assert bus.gauge_value("g") == 0.0
        assert bus.histogram("h") is None
        assert bus.events == ()
        assert bus.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
            "events": {"count": 0, "dropped": 0, "by_name": {}},
            "spans": 0,
        }

    def test_null_bus_is_shared_and_disabled(self):
        assert NULL_BUS.enabled is False
        NULL_BUS.inc("should.not.stick")
        assert NULL_BUS.snapshot()["counters"] == {}
