"""Exporters, the schema-subset validator, and the `obs` CLI end to end."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.obs import (
    TelemetryBus,
    load_schema,
    snapshot_json,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    validate,
)
from repro.sim.tracing import TraceRecorder

SCHEMA_PATH = Path(__file__).parents[2] / "scripts" / "obs_schema.json"


def populated_bus() -> TelemetryBus:
    bus = TelemetryBus(trace=TraceRecorder())
    bus.inc("store.writes", 3)
    bus.register_gauge("strengthen.backlog", lambda: 2.0)
    bus.observe("op.write.seconds", 0.4, buckets=(0.1, 1.0))
    bus.event("failover", 5.0, from_shard=0, to_shard=1)
    bus.event("maintenance", 9.0)
    bus.span("write", "scpu", 0.0, 1.5, device="scpu")
    return bus


class TestJsonl:
    def test_one_json_object_per_event_in_order(self):
        lines = to_jsonl(populated_bus()).splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed == [
            {"name": "failover", "t": 5.0, "from_shard": 0, "to_shard": 1},
            {"name": "maintenance", "t": 9.0},
        ]

    def test_empty_bus_exports_empty_string(self):
        assert to_jsonl(TelemetryBus()) == ""


class TestPrometheus:
    def test_counters_gauges_histograms_rendered(self):
        text = to_prometheus(populated_bus())
        assert "# TYPE repro_store_writes counter" in text
        assert "repro_store_writes 3.0" in text
        assert "# TYPE repro_strengthen_backlog gauge" in text
        assert "repro_strengthen_backlog 2.0" in text
        assert "# TYPE repro_op_write_seconds histogram" in text
        assert 'repro_op_write_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_op_write_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_op_write_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_op_write_seconds_count 1" in text

    def test_dotted_names_mapped_to_metric_grammar(self):
        bus = TelemetryBus()
        bus.inc("device.scpu.seconds", 1.5)
        assert "repro_device_scpu_seconds 1.5" in to_prometheus(bus)


class TestChromeTrace:
    def test_spans_export_as_trace_events(self):
        events = json.loads(to_chrome_trace(populated_bus()))
        assert any(e.get("name") == "write" for e in events)

    def test_no_sink_exports_empty_document(self):
        assert json.loads(to_chrome_trace(TelemetryBus())) == []


class TestSnapshotJson:
    def test_round_trips_the_snapshot(self):
        bus = populated_bus()
        assert json.loads(snapshot_json(bus)) == json.loads(
            json.dumps(bus.snapshot()))


class TestSchemaValidator:
    def test_committed_schema_loads(self):
        schema = load_schema(SCHEMA_PATH)
        assert schema["type"] == "object"

    def test_valid_instance_passes(self):
        schema = {"type": "object", "required": ["a"],
                  "properties": {"a": {"type": "integer"}},
                  "additionalProperties": {"type": "number"}}
        assert validate({"a": 1, "b": 2.5}, schema) == []

    def test_missing_required_key_reported(self):
        schema = {"type": "object", "required": ["counters"]}
        problems = validate({}, schema)
        assert problems == ["$: missing required key 'counters'"]

    def test_wrong_type_reported_with_path(self):
        schema = {"type": "object",
                  "properties": {"spans": {"type": "integer"}}}
        problems = validate({"spans": "three"}, schema)
        assert problems == ["$.spans: expected integer, got str"]

    def test_bool_is_not_a_number(self):
        # bool subclasses int; the schema means real numbers.
        assert validate(True, {"type": "number"}) != []
        assert validate(True, {"type": "integer"}) != []
        assert validate(True, {"type": "boolean"}) == []

    def test_array_items_validated_by_index(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        problems = validate([1, "x", 3], schema)
        assert problems == ["$[1]: expected integer, got str"]

    def test_additional_properties_false_rejects_extras(self):
        schema = {"type": "object", "properties": {"a": {}},
                  "additionalProperties": False}
        assert validate({"a": 1, "b": 2}, schema) == \
            ["$: unexpected key 'b'"]

    def test_counter_rename_fails_the_committed_schema(self):
        """The CI property: renaming a counter must be a schema violation."""
        bus = TelemetryBus()
        snapshot = bus.snapshot()
        problems = validate(snapshot, load_schema(SCHEMA_PATH))
        # An empty bus is missing every required name — same failure mode
        # a rename produces for the one renamed counter.
        assert any("store.writes" in p for p in problems)
        assert any("strengthen.lifetime_violations" in p for p in problems)


class TestObsCli:
    def test_fault_free_run_exits_clean(self, capsys):
        assert main(["obs", "--shards", "2", "--records", "12",
                     "--fault-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "reconciliation vs health_report/cost_summary: OK" in out

    def test_snapshot_passes_committed_schema(self, capsys):
        assert main(["obs", "--shards", "2", "--records", "12",
                     "--fault-rate", "0", "--format", "snapshot",
                     "--check", str(SCHEMA_PATH)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert validate(snapshot, load_schema(SCHEMA_PATH)) == []
        counters = snapshot["counters"]
        # Every write in this run is a group commit (one multi-record
        # write() per group), and the CLI reads 8 receipts back.
        assert counters["store.writes"] == counters["sharded.group_commits"]
        assert counters["store.writes"] > 0
        assert counters["store.reads"] == 8

    def test_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "telemetry.jsonl"
        assert main(["obs", "--shards", "2", "--records", "12",
                     "--fault-rate", "0", "--format", "jsonl",
                     "--out", str(target)]) == 0
        for line in target.read_text().strip().splitlines():
            json.loads(line)
        capsys.readouterr()

    def test_invalid_arguments_rejected(self, capsys):
        assert main(["obs", "--shards", "0"]) == 2
        assert main(["obs", "--shards", "1", "--tamper-after", "5"]) == 2
        capsys.readouterr()
