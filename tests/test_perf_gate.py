"""The perf gate's tolerance-band comparison (no benches run here).

``compare_baseline`` is the function scripts/check.sh trusts to catch
hot-path regressions, so its direction convention is pinned by tests:
``*_per_sec``/``_gain``/``_speedup``/``_hits`` leaves are throughput-like
(may not drop), every other numeric leaf is cost-like (may not grow),
improvements always pass, and structural drift is an exact-match error.
"""

import pytest

from repro.perf import TOLERANCE, compare_baseline


def test_identical_baselines_pass():
    data = {"headline": {"writes_per_sec": 100.0, "scpu_crossings": 10}}
    assert compare_baseline(data, data) == []


def test_throughput_drop_beyond_band_fails():
    old = {"writes_per_sec": 100.0}
    assert compare_baseline(old, {"writes_per_sec": 91.0}) == []
    problems = compare_baseline(old, {"writes_per_sec": 89.0})
    assert len(problems) == 1
    assert "regressed below" in problems[0]


def test_cost_growth_beyond_band_fails():
    old = {"scpu_crossings": 100}
    assert compare_baseline(old, {"scpu_crossings": 110}) == []
    problems = compare_baseline(old, {"scpu_crossings": 112})
    assert len(problems) == 1
    assert "grew past" in problems[0]


def test_improvements_always_pass():
    old = {"writes_per_sec": 100.0, "scpu_crossings": 100,
           "sig_cache_hits": 50}
    new = {"writes_per_sec": 500.0, "scpu_crossings": 3,
           "sig_cache_hits": 400}
    assert compare_baseline(old, new) == []


def test_direction_follows_leaf_key_not_path():
    # A cost leaf nested under a throughput-sounding parent stays a cost.
    old = {"group_commit": {"scpu_bytes_crossed": 100}}
    new = {"group_commit": {"scpu_bytes_crossed": 120}}
    assert compare_baseline(old, new)
    # And list indices are stripped before the suffix check.
    old = {"points": [{"records_per_sec": 100.0}]}
    new = {"points": [{"records_per_sec": 80.0}]}
    assert compare_baseline(old, new)


def test_structural_drift_is_reported():
    old = {"points": [{"shards": 1}], "headline": {"batch": 8}}
    new = {"points": [{"shards": 1}, {"shards": 2}], "headline": {"batch": 8}}
    problems = compare_baseline(old, new)
    assert any("not in committed baseline" in p for p in problems)
    problems = compare_baseline(new, old)
    assert any("missing from regenerated run" in p for p in problems)


def test_non_numeric_leaves_must_match_exactly():
    old = {"workload": {"mode": "strong"}}
    new = {"workload": {"mode": "weak"}}
    problems = compare_baseline(old, new)
    assert problems and "!=" in problems[0]
    # bool is not "numeric within 10%".
    assert compare_baseline({"flag": True}, {"flag": False})


def test_custom_tolerance_widens_the_band():
    old = {"writes_per_sec": 100.0}
    new = {"writes_per_sec": 75.0}
    assert compare_baseline(old, new, tolerance=TOLERANCE)
    assert compare_baseline(old, new, tolerance=0.30) == []
