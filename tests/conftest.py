"""Shared fixtures: fast keyrings, stores, clients, and a CA.

Key generation dominates test start-up, so 512-bit keys are used
throughout (the smallest size whose code path is identical to the paper's
1024/512 production parameters).  Each store gets a *fresh* keyring —
attacks and burst-key rotation mutate key state, and cross-test key
sharing would make "unknown key" assertions meaningless.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.adversary.attacks import AttackEnvironment
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority, SigningKey
from repro.hardware.scpu import SecureCoprocessor


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    """One regulatory CA for the whole session (its key never mutates)."""
    return CertificateAuthority(bits=512)


@pytest.fixture(scope="session")
def regulator_key() -> SigningKey:
    """The litigation authority's signing key."""
    return SigningKey.generate(512, role="regulator")


@pytest.fixture
def scpu() -> SecureCoprocessor:
    """A fresh SCPU with fast keys and a manually advanced clock."""
    return SecureCoprocessor(keyring=demo_keyring())


@pytest.fixture
def store(scpu, regulator_key) -> StrongWormStore:
    """A fresh store provisioned with the session's regulation authority."""
    return StrongWormStore(scpu=scpu,
                           regulator_public_key=regulator_key.public)


@pytest.fixture
def client(store, ca):
    """A verifying client bootstrapped from the session CA."""
    return store.make_client(ca)


@pytest.fixture
def env(store, client) -> AttackEnvironment:
    """An adversary playground: store + client."""
    return AttackEnvironment(store=store, client=client)
