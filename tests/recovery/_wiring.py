"""Fixtures and wiring helpers for the cross-site replication suite.

Every test builds the same topology: a primary ShardedWormStore whose
intent journal is mirrored synchronously to a :class:`ReplicaSite`
standby, with the catalog shipped asynchronously by a
:class:`ReplicationPump` over a fault-injectable transport.  All timing
is virtual (one shared ManualClock per site).
"""

from __future__ import annotations

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.sharded import ShardedWormStore
from repro.recovery import (ReplicaSite, ReplicatedIntentJournal,
                            ReplicationPump, ReplicationTransport)
from repro.sim.manual_clock import ManualClock
from repro.storage.journal import MemoryIntentJournal


def make_site(plan=None, ca=None, shard_count=2, group_commit_size=4,
              obs=None, snapshot_interval=3600.0, retransmit_after=1.0):
    """One primary site wired for replication to a fresh standby."""
    clock = ManualClock()
    transport = ReplicationTransport(plan=plan, obs=obs)
    replica = ReplicaSite()
    journal = ReplicatedIntentJournal(
        MemoryIntentJournal(), transport, replica, clock=clock, obs=obs)
    store = ShardedWormStore.build(
        shard_count=shard_count, keyring=demo_keyring(), clock=clock,
        config=StoreConfig(group_commit_size=group_commit_size,
                           observe=obs),
        journal=journal)
    pump = ReplicationPump(store, transport, replica, ca=ca,
                           snapshot_interval=snapshot_interval,
                           retransmit_after=retransmit_after, obs=obs)
    return store, transport, replica, pump


def drain(store, pump, cycles=30, tick=2.0):
    """Pump until nothing is unacknowledged or in flight."""
    for _ in range(cycles):
        store.advance_clocks(tick)
        pump.pump()
        if pump.unacked_count == 0 and pump.transport.in_flight == 0:
            return
    raise AssertionError(
        f"replication did not drain in {cycles} cycles "
        f"(unacked={pump.unacked_count}, "
        f"in_flight={pump.transport.in_flight})")


def make_standby(shard_count=2, obs=None):
    """A freshly provisioned (empty) site for recovery to rebuild."""
    return ShardedWormStore.build(
        shard_count=shard_count, keyring=demo_keyring(),
        clock=ManualClock(), config=StoreConfig(observe=obs))
