"""Service-layer failback: 503 gating while recovering, then promote().

The service front-end must (a) refuse mutating traffic with a stable,
retryable problem while its site is being rebuilt, (b) keep serving
reads the whole time, and (c) fail over to the recovered store without
tenants noticing anything worse than a pause: old locators keep
resolving (aliases), deferred tickets issued by the dead site redeem
on the new one, and the accounting reconciles clean.
"""

from __future__ import annotations

import pytest

from _wiring import drain, make_site, make_standby
from repro.recovery import SiteRecovery
from repro.service import ServiceRequest, TenantConfig, WormService


def _request(operation, tenant="acme", **params):
    return ServiceRequest(operation=operation, tenant=tenant, params=params)


def _write(service, tenant="acme", payload=b"ledger", **params):
    params.setdefault("retention_seconds", 3600.0)
    return service.handle(_request("write", tenant=tenant,
                                   payload=payload, **params))


def make_service(store, ca):
    return WormService(store, ca=ca, tenants=[
        TenantConfig("acme", rate=2.0, burst=4, max_deferred=8)])


class TestRecoveryGate:
    def test_writes_refused_503_while_recovering(self, ca):
        store, transport, replica, pump = make_site(ca=ca)
        service = make_service(store, ca)
        written = _write(service, payload=b"before the disaster")
        assert written.status == 201

        store.begin_recovery()
        refused = _write(service, payload=b"during recovery")
        assert refused.status == 503
        assert refused.problem.code == "site-recovering"
        assert float(refused.headers["Retry-After"]) >= 1.0

        # Reads keep serving: recovered records are verifiable as soon
        # as VERIFY passed; refusing reads would only add downtime.
        store.advance_clocks(5.0)  # refill the read token
        read = service.handle(_request(
            "read", locator=written.body["locator"]))
        assert read.status == 200
        assert read.body["payload"] == b"before the disaster"

        store.resume_service()
        store.advance_clocks(5.0)
        accepted = _write(service, payload=b"after recovery")
        assert accepted.status == 201

    def test_expire_and_hold_also_gated(self, ca):
        store, transport, replica, pump = make_site(ca=ca)
        service = make_service(store, ca)
        written = _write(service)
        store.begin_recovery()
        store.advance_clocks(5.0)
        for operation, params in (
                ("expire", {"locator": written.body["locator"]}),
                ("hold", {"locator": written.body["locator"],
                          "authorization": b"x"})):
            response = service.handle(_request(operation, **params))
            assert response.status == 503
            assert response.problem.code == "site-recovering"


class TestPromote:
    def test_failback_preserves_tenant_state(self, ca):
        store, transport, replica, pump = make_site(ca=ca)
        service = make_service(store, ca)

        # Four accepted writes drain the burst; the fifth defers.  The
        # deferred submit is journalled (and mirrored) but its group
        # never flushes: the site dies with the ticket pending.
        old_locators = {}
        for i in range(4):
            response = _write(service, payload=b"acme-%d" % i)
            assert response.status == 201
            old_locators[response.body["locator"]] = b"acme-%d" % i
        deferred = _write(service, payload=b"deferred-write")
        assert deferred.status == 202
        ticket = deferred.body["ticket"]
        drain(store, pump)  # catalog + journal fully replicated

        standby = make_standby()
        report = SiteRecovery(replica, standby, ca).run()
        service.promote(standby, report)
        standby.advance_clocks(300.0)  # refill buckets on the new clock

        # Old (pre-disaster) locators keep resolving through aliases.
        for locator, payload in old_locators.items():
            read = service.handle(_request("read", locator=locator))
            assert read.status == 200, read.body
            assert read.body["payload"] == payload
            standby.advance_clocks(2.0)

        # The deferred ticket issued by the dead site redeems here.
        redeemed = service.handle(_request("redeem", ticket=ticket))
        assert redeemed.status == 200
        assert redeemed.body["state"] == "durable"
        durable = service.handle(_request(
            "read", locator=redeemed.body["locator"]))
        assert durable.body["payload"] == b"deferred-write"

        # Writes flow again, and the books balance.
        standby.advance_clocks(5.0)
        accepted = _write(service, payload=b"post-failback")
        assert accepted.status == 201
        assert service.reconcile() == []

    def test_promote_ignores_recovery_internal_tags(self, ca):
        # Journal entries with no caller tag re-commit under the
        # recovery pass's own handle; promote() must skip them rather
        # than crash unpacking an unknown tag shape.
        store, transport, replica, pump = make_site(ca=ca)
        service = make_service(store, ca)
        _write(service, payload=b"anchor")
        store.submit(b"untagged-out-of-band")  # journalled, unflushed
        drain(store, pump)

        standby = make_standby()
        report = SiteRecovery(replica, standby, ca).run()
        assert report.journal_requeued >= 1
        service.promote(standby, report)  # must not raise
        assert service.reconcile() == []
