"""SiteRecovery: staged, verified, resumable rebuild of a dead site.

The primary dies after (or mid-way through) replicating to the
standby; these tests rebuild a fresh site from the untrusted replica
and check the paper's guarantee survives the disaster: everything the
rebuilt site serves verifies against the dead site's CA-certified SCPU
keys, a lying replica trips :class:`TamperedError` terminally, and no
acknowledged write is lost (the journal mirror re-ingests whatever the
catalog had not shipped).
"""

from __future__ import annotations

import json

import pytest

from _wiring import drain, make_site, make_standby
from repro.core.errors import RecoveryError, TamperedError
from repro.core.locator import RecordLocator
from repro.crypto.keys import CertificateAuthority
from repro.recovery import RecoveryStage, SiteRecovery


def _populated_site(ca, records=8, pending=0, tags=()):
    """A primary with *records* flushed + *pending* unflushed writes,
    fully replicated, then killed (we simply stop using it)."""
    store, transport, replica, pump = make_site(ca=ca)
    for i in range(records):
        store.submit(b"durable-%d" % i)
    for tag in tags:
        store.submit(b"tagged:" + repr(tag).encode(), tag=tag)
    receipts = store.flush()
    for i in range(pending):
        store.submit(b"pending-%d" % i)
    drain(store, pump)
    return store, replica, receipts


class TestHappyPath:
    def test_full_recovery_rebuilds_a_verifiable_site(self, ca):
        primary, replica, receipts = _populated_site(ca, records=8)
        standby = make_standby()
        recovery = SiteRecovery(replica, standby, ca)
        report = recovery.run()

        assert report.complete
        assert report.stages_completed == list(RecoveryStage.ORDER)
        # Counters are per VR (group commit packs records into VRs);
        # the locator mapping is per record and must cover all eight.
        assert report.records_verified == report.records_replayed > 0
        assert len(report.locator_mapping) == 8
        assert report.windows_verified >= 2  # SN_current + SN_base
        assert report.rto_seconds > 0
        assert standby.site_state == "active"

        # Every pre-disaster locator maps to a record the *standby's*
        # verifying client accepts — nothing was laundered in.
        client = standby.make_client(ca)
        for receipt in receipts:
            old = receipt.locator.pack()
            new = RecordLocator.unpack(report.locator_mapping[old])
            verified = client.verify_read(standby.read(new), new.sn)
            assert verified.status == "active"
            payload = standby.read_record(report.locator_mapping[old])
            assert payload == primary.read_record(old)

    def test_rto_includes_the_wan_transfer(self, ca):
        _, replica, _ = _populated_site(ca, records=4)
        standby = make_standby()
        slow = SiteRecovery(replica, standby, ca, link_bandwidth=1e3)
        report = slow.run()
        assert report.transfer_seconds > 0
        assert report.rto_seconds >= report.transfer_seconds


class TestZeroAcknowledgedLoss:
    def test_unflushed_tail_is_reingested_from_the_journal(self, ca):
        # Three writes were admitted (journalled + mirrored) but the
        # site died before their group commit: the catalog never saw
        # them, the mirrored journal did.
        primary, replica, _ = _populated_site(ca, records=5, pending=3)
        standby = make_standby()
        report = SiteRecovery(replica, standby, ca).run()
        assert report.journal_requeued == 3
        payloads = set()
        for shard in standby.shards:
            for sn in shard.vrdt.active_sns:
                result = shard.read(sn)
                payloads.update(result.records)
        for i in range(3):
            assert b"pending-%d" % i in payloads

    def test_deferred_tickets_survive_under_their_tags(self, ca):
        tag = ("acme", "t-42")
        store, transport, replica, pump = make_site(ca=ca)
        store.submit(b"anchor")
        store.flush()
        store.submit(b"deferred", tag=tag)  # admitted, never flushed
        drain(store, pump)
        standby = make_standby()
        report = SiteRecovery(replica, standby, ca).run()
        assert tag in report.tagged_receipts
        locator = report.tagged_receipts[tag].locator
        assert standby.read_record(locator) == b"deferred"


class TestTamperDetection:
    def test_corrupted_replica_block_is_terminal(self, ca):
        # The standby's disk lies: one payload byte differs from what
        # the dead SCPU signed.  VERIFY must refuse the whole recovery,
        # not import around it.
        _, replica, _ = _populated_site(ca, records=6)
        shard_history = replica._shards[0].history
        payload = next(p for p in shard_history if p.get("blocks"))
        key = sorted(payload["blocks"])[0]
        data = payload["blocks"][key]
        payload["blocks"][key] = bytes([data[0] ^ 0xFF]) + data[1:]
        standby = make_standby()
        recovery = SiteRecovery(replica, standby, ca)
        with pytest.raises(TamperedError):
            recovery.run()
        assert RecoveryStage.VERIFY not in recovery.checkpoint()["completed"]

    def test_in_flight_corruption_targets_the_payload(self, ca):
        # The transport's tamper fault flips a block byte, which is
        # exactly the damage VERIFY's data-hash check catches.
        _, replica, _ = _populated_site(ca, records=2)
        shard_id = replica.shard_ids[0]
        from repro.recovery import ReplicationArtifact
        history = replica._shards[shard_id].history
        payload = next(p for p in history if p.get("blocks"))
        artifact = ReplicationArtifact(
            stream="catalog:0", seq=99, kind="delta", created_at=0.0,
            payload=payload, size_bytes=1)
        corrupted = artifact.corrupted()
        key = sorted(payload["blocks"])[0]
        assert corrupted.payload["blocks"][key] != payload["blocks"][key]

    def test_forged_certificates_are_terminal(self, ca):
        _, replica, _ = _populated_site(ca, records=2)
        impostor_ca = CertificateAuthority(bits=512)
        standby = make_standby()
        with pytest.raises(TamperedError):
            SiteRecovery(replica, standby, impostor_ca).run()

    def test_missing_certificates_are_a_recovery_error(self, ca):
        # Pump wired without a CA: the meta stream never ships, so the
        # dead site's keys cannot be trusted -- refuse, don't guess.
        store, transport, replica, pump = make_site(ca=None)
        store.submit(b"record")
        store.flush()
        drain(store, pump)
        standby = make_standby()
        with pytest.raises(RecoveryError):
            SiteRecovery(replica, standby, ca).run()


class TestResumability:
    def test_checkpoint_round_trips_through_json(self, ca):
        _, replica, _ = _populated_site(ca, records=4)
        standby = make_standby()
        first = SiteRecovery(replica, standby, ca)
        for _ in range(3):  # DISCOVER, DOWNLOAD, VERIFY
            first.step()
        saved = json.loads(json.dumps(first.checkpoint()))
        resumed = SiteRecovery(replica, standby, ca, checkpoint=saved)
        assert resumed.stage == RecoveryStage.REPLAY
        report = resumed.run()
        assert report.complete
        assert len(report.locator_mapping) == 4  # every record landed
        assert standby.site_state == "active"

    def test_resume_skips_already_replayed_shards(self, ca):
        _, replica, _ = _populated_site(ca, records=6)
        standby = make_standby()
        first = SiteRecovery(replica, standby, ca)
        for _ in range(4):  # ...through REPLAY
            first.step()
        replayed = first.checkpoint()["counts"]["records_replayed"]
        saved = json.loads(json.dumps(first.checkpoint()))
        resumed = SiteRecovery(replica, standby, ca, checkpoint=saved)
        report = resumed.run()
        # No double imports: the resumed pass only ran RESUME, and the
        # journal had nothing left to cover.
        assert report.records_replayed == replayed
        assert report.journal_requeued == 0

    def test_recovering_state_is_reported_while_rebuilding(self, ca):
        _, replica, _ = _populated_site(ca, records=2)
        standby = make_standby()
        recovery = SiteRecovery(replica, standby, ca)
        recovery.step()  # DISCOVER flips the site into recovery
        assert standby.recovering
        assert standby.health_report()["site_state"] == "recovering"
        recovery.run()
        assert not standby.recovering
        assert standby.health_report()["site_state"] == "active"
