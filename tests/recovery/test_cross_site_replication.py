"""Replication mechanics: streams, ordering, faults, the journal mirror.

The transport is an adversarial WAN (loss, delay, reordering,
corruption from a deterministic FaultPlan); these tests pin down the
behaviours recovery depends on: per-stream in-order application with
gap buffering, retransmission until acknowledged, the synchronous
journal mirror failing loud instead of acknowledging an unreplicated
write, and replication lag showing up in telemetry.
"""

from __future__ import annotations

import pytest

from _wiring import drain, make_site
from repro.core.errors import ReplicationError
from repro.faults import FaultPlan
from repro.obs import TelemetryBus
from repro.recovery import ReplicaSite, ReplicationArtifact


def _artifact(stream, seq, payload=None, created_at=0.0):
    return ReplicationArtifact(
        stream=stream, seq=seq, kind="delta", created_at=created_at,
        payload=payload or {"shard_id": 0, "kind": "delta", "vrds": [],
                            "blocks": {}, "expired": []},
        size_bytes=64)


class TestReplicaOrdering:
    def test_gap_is_buffered_until_contiguous(self):
        replica = ReplicaSite()
        assert replica.apply(_artifact("catalog:0", 2)) == 0  # gap: waits
        assert replica.ack("catalog:0") == 0
        assert replica.apply(_artifact("catalog:0", 1)) == 2  # drains both
        assert replica.ack("catalog:0") == 2

    def test_duplicates_apply_zero(self):
        replica = ReplicaSite()
        assert replica.apply(_artifact("catalog:0", 1)) == 1
        assert replica.apply(_artifact("catalog:0", 1)) == 0  # retransmit
        assert replica.ack("catalog:0") == 1

    def test_streams_are_independent(self):
        replica = ReplicaSite()
        assert replica.apply(_artifact("catalog:1",
                                       1, {"shard_id": 1})) == 1
        assert replica.ack("catalog:0") == 0
        assert replica.ack("catalog:1") == 1


class TestTransportFaults:
    def test_lost_artifact_is_retransmitted_until_acked(self):
        plan = FaultPlan().transient(after_ops=1, op="replicate.send",
                                     count=2)
        store, transport, replica, pump = make_site(plan=plan)
        store.submit(b"survives loss")
        store.flush()
        drain(store, pump)
        assert replica.ack("catalog:0") >= 1 or replica.ack("catalog:1") >= 1
        assert plan.injected["transient"] == 2

    def test_latency_spike_reorders_but_replica_absorbs_it(self):
        # The first catalog artifact is delayed 30s; its successor
        # arrives first and must wait in the gap buffer.
        plan = FaultPlan().latency(seconds=30.0, after_ops=1,
                                   op="replicate.send")
        store, transport, replica, pump = make_site(plan=plan,
                                                    shard_count=1)
        store.submit(b"first")
        store.flush()
        store.advance_clocks(1.0)
        pump.pump()  # ships delta #1 (delayed in flight)
        store.submit(b"second")
        store.flush()
        store.advance_clocks(0.2)
        pump.pump()  # ships delta #2, which arrives first -> buffered
        assert replica.ack("catalog:0") == 0
        drain(store, pump)  # the spike elapses; both apply in order
        assert replica.ack("catalog:0") >= 2
        image = replica.materialize_shard(0)
        assert len(image["vrds"]) == 2

    def test_sync_path_exhaustion_refuses_the_write(self):
        # Link down past the retry budget: the journal mirror raises
        # instead of acknowledging an unreplicated write.
        plan = FaultPlan().transient(after_ops=1, op="replicate.sync",
                                     count=64)
        store, transport, replica, pump = make_site(plan=plan)
        with pytest.raises(ReplicationError):
            store.submit(b"never acknowledged")

    def test_sync_path_rides_out_short_outages(self):
        plan = FaultPlan().transient(after_ops=1, op="replicate.sync",
                                     count=3)
        store, transport, replica, pump = make_site(plan=plan)
        store.submit(b"persistent")  # 3 drops, 4th attempt lands
        assert len(replica.journal_ledger()) == 1
        assert transport.sync_delay_seconds > 0


class TestJournalMirror:
    def test_every_acknowledged_write_has_a_mirrored_entry(self):
        store, transport, replica, pump = make_site()
        for i in range(5):
            store.submit(b"rec-%d" % i)
        store.flush()
        ledger = replica.journal_ledger()
        assert [e.payload for e in ledger] == [
            b"rec-%d" % i for i in range(5)]
        assert all(e.committed and e.locator is not None for e in ledger)

    def test_uncommitted_tail_is_mirrored_before_the_crash(self):
        store, transport, replica, pump = make_site(group_commit_size=8)
        store.submit(b"pending-a")
        store.submit(b"pending-b", tag=("acme", "t-1"))
        # No flush: the primary dies here.  The standby already holds
        # both intents, tags restored to their tuple form.
        ledger = replica.journal_ledger()
        assert [e.committed for e in ledger] == [False, False]
        assert ledger[1].tag == ("acme", "t-1")

    def test_mirror_matches_the_local_ledger(self):
        store, transport, replica, pump = make_site()
        for i in range(6):
            store.submit(b"x%d" % i)
        store.flush()
        store.submit(b"tail")
        local = store._journal.ledger()
        mirrored = replica.journal_ledger()
        assert [(e.entry_id, e.committed, e.locator) for e in local] == \
               [(e.entry_id, e.committed, e.locator) for e in mirrored]


class TestPump:
    def test_catalog_converges_to_the_primary(self, ca):
        store, transport, replica, pump = make_site(ca=ca)
        for i in range(9):
            store.submit(b"record-%d" % i)
        store.flush()
        drain(store, pump)
        assert replica.source_certificates  # meta stream shipped
        total = 0
        for shard_id in replica.shard_ids:
            image = replica.materialize_shard(shard_id)
            assert image["sn_current"] is not None
            total += len(image["vrds"])
        assert total == sum(len(store.shard(s).vrdt.active_sns)
                            for s in range(store.shard_count))

    def test_snapshot_subsumes_the_delta_chain(self):
        store, transport, replica, pump = make_site(
            snapshot_interval=50.0, shard_count=1)
        store.submit(b"early")
        store.flush()
        drain(store, pump, tick=1.0)
        store.advance_clocks(60.0)  # past the snapshot interval
        store.submit(b"late")
        store.flush()
        drain(store, pump, tick=1.0)
        shard_replica = replica._shards[0]
        assert shard_replica.history[0]["kind"] == "snapshot"
        image = replica.materialize_shard(0)
        assert len(image["vrds"]) == 2

    def test_lag_is_observed_into_the_histogram(self):
        bus = TelemetryBus()
        store, transport, replica, pump = make_site(obs=bus)
        store.submit(b"measured")
        store.flush()
        drain(store, pump)
        snapshot = bus.snapshot()
        lag = snapshot["histograms"]["replication.lag_seconds"]
        assert lag["count"] >= 1
        assert snapshot["counters"]["replication.artifacts_shipped"] >= 1
        assert snapshot["counters"]["replication.artifacts_applied"] >= 1
        assert snapshot["counters"]["replication.journal_ops"] >= 2
