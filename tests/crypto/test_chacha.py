"""Unit tests for the from-scratch ChaCha20 (RFC 7539 vectors included)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha import ChaCha20, chacha20_block, chacha20_xor


class TestRfc7539Vectors:
    def test_block_function_vector(self):
        """RFC 7539 §2.3.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block == bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")

    def test_encryption_vector(self):
        """RFC 7539 §2.4.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                     b"offer you only one tip for the future, sunscreen would "
                     b"be it.")
        ciphertext = chacha20_xor(key, nonce, plaintext, initial_counter=1)
        assert ciphertext.startswith(bytes.fromhex("6e2e359a2568f980"))
        assert chacha20_xor(key, nonce, ciphertext,
                            initial_counter=1) == plaintext


class TestProperties:
    def test_self_inverse(self):
        key = b"k" * 32
        nonce = b"n" * 12
        data = b"some plaintext of awkward length!"
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data

    def test_different_keys_differ(self):
        nonce = b"n" * 12
        a = chacha20_xor(b"a" * 32, nonce, b"data")
        b = chacha20_xor(b"b" * 32, nonce, b"data")
        assert a != b

    def test_different_nonces_differ(self):
        key = b"k" * 32
        a = chacha20_xor(key, b"a" * 12, b"data")
        b = chacha20_xor(key, b"b" * 12, b"data")
        assert a != b

    def test_empty_input(self):
        assert chacha20_xor(b"k" * 32, b"n" * 12, b"") == b""

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 1, b"n" * 12)

    def test_nonce_length_enforced(self):
        with pytest.raises(ValueError):
            chacha20_block(b"k" * 32, 1, b"short")

    def test_counter_range_enforced(self):
        with pytest.raises(ValueError):
            chacha20_block(b"k" * 32, 2**32, b"n" * 12)

    def test_wrapper_class(self):
        cipher = ChaCha20(b"k" * 32)
        ct = cipher.encrypt(b"n" * 12, b"hello")
        assert cipher.decrypt(b"n" * 12, ct) == b"hello"

    @given(st.binary(max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_arbitrary(self, data):
        key = b"\x07" * 32
        nonce = b"\x0b" * 12
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data
