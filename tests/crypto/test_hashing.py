"""Unit tests for chained and incremental hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import (
    ChainedHasher,
    IncrementalMultisetHash,
    chained_hash,
    digest,
    hexdigest,
)


class TestDigest:
    def test_known_sha256(self):
        assert hexdigest(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")

    def test_digest_and_hexdigest_agree(self):
        assert digest(b"abc").hex() == hexdigest(b"abc")

    def test_algorithm_selectable(self):
        assert len(digest(b"abc", "sha1")) == 20
        assert len(digest(b"abc", "sha256")) == 32


class TestChainedHash:
    def test_deterministic(self):
        chunks = [b"one", b"two", b"three"]
        assert chained_hash(chunks) == chained_hash(chunks)

    def test_order_sensitive(self):
        assert chained_hash([b"a", b"b"]) != chained_hash([b"b", b"a"])

    def test_boundary_shifts_change_digest(self):
        # Same bytes, different chunking — must differ (length prefixes).
        assert chained_hash([b"ab", b"c"]) != chained_hash([b"a", b"bc"])
        assert chained_hash([b"abc"]) != chained_hash([b"ab", b"c"])

    def test_empty_sequence_distinct_from_empty_chunk(self):
        assert chained_hash([]) != chained_hash([b""])

    def test_streaming_matches_oneshot(self):
        chunks = [b"alpha", b"", b"gamma" * 100]
        hasher = ChainedHasher()
        for chunk in chunks:
            hasher.update(chunk)
        assert hasher.digest() == chained_hash(chunks)
        assert hasher.count == 3

    def test_streaming_empty(self):
        assert ChainedHasher().digest() == chained_hash([])

    @given(st.lists(st.binary(max_size=64), max_size=8))
    @settings(max_examples=50)
    def test_streaming_always_matches_oneshot(self, chunks):
        hasher = ChainedHasher()
        for chunk in chunks:
            hasher.update(chunk)
        assert hasher.digest() == chained_hash(chunks)


class TestIncrementalMultisetHash:
    def test_order_independent(self):
        a = IncrementalMultisetHash.of([b"x", b"y", b"z"])
        b = IncrementalMultisetHash.of([b"z", b"x", b"y"])
        assert a.digest() == b.digest()

    def test_multiset_not_set(self):
        once = IncrementalMultisetHash.of([b"x"])
        twice = IncrementalMultisetHash.of([b"x", b"x"])
        assert once.digest() != twice.digest()

    def test_remove_inverts_add(self):
        h = IncrementalMultisetHash.of([b"a", b"b"])
        before = h.digest()
        h.add(b"c")
        h.remove(b"c")
        assert h.digest() == before
        assert h.count == 2

    def test_empty_hash_is_zero_count(self):
        h = IncrementalMultisetHash()
        assert h.count == 0
        assert h.digest() == (0).to_bytes(33, "big")

    def test_copy_is_independent(self):
        h = IncrementalMultisetHash.of([b"a"])
        clone = h.copy()
        clone.add(b"b")
        assert h.digest() != clone.digest()
        assert h.count == 1 and clone.count == 2

    def test_length_prefix_prevents_concat_confusion(self):
        a = IncrementalMultisetHash.of([b"ab"])
        b = IncrementalMultisetHash.of([b"a", b"b"])
        assert a.digest() != b.digest()

    @given(st.lists(st.binary(min_size=1, max_size=16), max_size=10))
    @settings(max_examples=50)
    def test_any_permutation_agrees(self, elements):
        import random
        shuffled = list(elements)
        random.Random(42).shuffle(shuffled)
        assert (IncrementalMultisetHash.of(elements).digest()
                == IncrementalMultisetHash.of(shuffled).digest())

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_remove_all_returns_to_empty(self, elements):
        h = IncrementalMultisetHash.of(elements)
        for element in elements:
            h.remove(element)
        assert h.digest() == IncrementalMultisetHash().digest()
