"""Unit tests for the number-theory substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numtheory import (
    SMALL_PRIMES,
    egcd,
    generate_prime,
    is_probable_prime,
    modinv,
    random_odd_int,
)


class TestEgcd:
    def test_coprime_pair(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_common_factor(self):
        g, x, y = egcd(12, 18)
        assert g == 6
        assert 12 * x + 18 * y == 6

    def test_zero_operand(self):
        g, x, y = egcd(0, 7)
        assert g == 7
        assert 0 * x + 7 * y == 7

    @given(st.integers(min_value=1, max_value=10**12),
           st.integers(min_value=1, max_value=10**12))
    def test_bezout_identity_holds(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestModinv:
    def test_known_inverse(self):
        assert modinv(3, 11) == 4  # 3*4 = 12 ≡ 1 (mod 11)

    def test_inverse_of_one(self):
        assert modinv(1, 97) == 1

    def test_no_inverse_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_negative_input_normalized(self):
        inv = modinv(-3, 11)
        assert (-3 * inv) % 11 == 1

    @given(st.integers(min_value=2, max_value=10**9))
    def test_inverse_property_modulo_prime(self, a):
        p = 1_000_000_007  # prime
        if a % p == 0:
            return
        inv = modinv(a, p)
        assert (a * inv) % p == 1


class TestPrimality:
    def test_small_primes_accepted(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 1009):
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for n in (0, 1, 4, 6, 9, 15, 1001):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes to many bases; Miller-Rabin must catch them.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^89 - 1 is a Mersenne prime.
        assert is_probable_prime(2**89 - 1)

    def test_large_known_composite(self):
        # 2^83 - 1 = 167 * ... is composite.
        assert not is_probable_prime(2**83 - 1)

    def test_product_of_two_primes_rejected(self):
        p = generate_prime(64)
        q = generate_prime(64)
        assert not is_probable_prime(p * q)


class TestGeneration:
    def test_generated_prime_has_exact_bits(self):
        for bits in (32, 64, 128, 256):
            p = generate_prime(bits)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_odd_int_is_odd_and_sized(self):
        for _ in range(20):
            n = random_odd_int(64)
            assert n % 2 == 1
            assert n.bit_length() == 64
            # Top two bits forced so products have full size.
            assert (n >> 62) == 0b11

    def test_random_odd_int_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_odd_int(2)

    def test_small_primes_table_is_sound(self):
        assert SMALL_PRIMES[0] == 2
        assert SMALL_PRIMES[-1] < 2048
        # Spot-check: table contains exactly the primes below 50.
        below_50 = tuple(p for p in SMALL_PRIMES if p < 50)
        assert below_50 == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
