"""Unit tests for the Merkle-tree baseline structure."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleProof, MerkleTree


class TestStructure:
    def test_empty_tree_has_stable_root(self):
        assert MerkleTree().root() == MerkleTree().root()
        assert MerkleTree().size == 0

    def test_single_leaf(self):
        t = MerkleTree([b"only"])
        assert t.size == 1
        proof = t.prove(0)
        assert len(proof) == 0
        assert t.verify(b"only", proof, t.root())

    def test_append_changes_root(self):
        t = MerkleTree([b"a"])
        r1 = t.root()
        t.append(b"b")
        assert t.root() != r1

    def test_same_leaves_same_root(self):
        leaves = [bytes([i]) for i in range(13)]
        assert MerkleTree(leaves).root() == MerkleTree(leaves).root()

    def test_leaf_order_matters(self):
        assert (MerkleTree([b"a", b"b"]).root()
                != MerkleTree([b"b", b"a"]).root())

    def test_leaf_interior_domain_separation(self):
        # A 2-leaf tree's root must differ from a 1-leaf tree whose leaf
        # is the concatenation of the children (classic CVE pattern).
        two = MerkleTree([b"a", b"b"])
        fake_leaf = two._levels[0][0] + two._levels[0][1]
        one = MerkleTree([fake_leaf])
        assert one.root() != two.root()


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_leaves_provable(self, size):
        leaves = [f"leaf-{i}".encode() for i in range(size)]
        t = MerkleTree(leaves)
        root = t.root()
        for i, leaf in enumerate(leaves):
            proof = t.prove(i)
            assert t.verify(leaf, proof, root)
            assert MerkleTree.verify_static(leaf, proof, root)

    def test_wrong_leaf_rejected(self):
        t = MerkleTree([b"a", b"b", b"c"])
        assert not t.verify(b"x", t.prove(1), t.root())

    def test_wrong_index_proof_rejected(self):
        t = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not t.verify(b"a", t.prove(1), t.root())

    def test_stale_root_rejected(self):
        t = MerkleTree([b"a", b"b"])
        old_root = t.root()
        t.append(b"c")
        assert not t.verify(b"c", t.prove(2), old_root)

    def test_out_of_range_proof_raises(self):
        t = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            t.prove(1)

    def test_proof_size_logarithmic(self):
        t = MerkleTree([bytes([i % 251]) for i in range(1024)])
        proof = t.prove(512)
        assert len(proof) == 10  # log2(1024)


class TestUpdates:
    def test_update_changes_root_and_proofs_still_work(self):
        leaves = [f"v{i}".encode() for i in range(10)]
        t = MerkleTree(leaves)
        t.update(3, b"patched")
        assert t.verify(b"patched", t.prove(3), t.root())
        assert t.verify(b"v4", t.prove(4), t.root())
        assert not t.verify(b"v3", t.prove(3), t.root())

    def test_update_out_of_range(self):
        t = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            t.update(5, b"x")

    def test_update_cost_is_logarithmic(self):
        t = MerkleTree([bytes([i % 251]) for i in range(2048)])
        before = t.hash_evaluations
        t.update(1000, b"new")
        path_cost = t.hash_evaluations - before
        assert path_cost <= math.ceil(math.log2(2048)) + 2

    def test_append_equivalent_to_rebuild(self):
        leaves = [f"x{i}".encode() for i in range(37)]
        incremental = MerkleTree()
        for leaf in leaves:
            incremental.append(leaf)
        assert incremental.root() == MerkleTree(leaves).root()


class TestPropertyBased:
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_every_leaf_verifies_after_random_build(self, leaves):
        t = MerkleTree(leaves)
        root = t.root()
        for i, leaf in enumerate(leaves):
            assert MerkleTree.verify_static(leaf, t.prove(i), root)

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=20),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_updates_keep_all_proofs_valid(self, leaves, data):
        t = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        replacement = data.draw(st.binary(min_size=1, max_size=16))
        t.update(index, replacement)
        current = list(leaves)
        current[index] = replacement
        root = t.root()
        for i, leaf in enumerate(current):
            assert MerkleTree.verify_static(leaf, t.prove(i), root)
