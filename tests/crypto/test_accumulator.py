"""Unit tests for the dynamic RSA accumulator primitive."""

from __future__ import annotations

import pytest

from repro.crypto.accumulator import TrapdoorAccumulator  # wormlint: disable=W001 - unit tests exercise the enclosure-side primitive directly
from repro.crypto.accumulator import (
    PRIME_BITS,
    WitnessDirectory,
    hash_to_prime,
    verify_membership,
)
from repro.crypto.numtheory import is_probable_prime


def make_accumulator(bits: int = 256):
    return TrapdoorAccumulator(bits=bits)  # wormlint: disable=W001 - test-local factory for the enclosure-side primitive


# ------------------------------------------------------------- hash_to_prime

def test_hash_to_prime_is_deterministic_and_prime():
    p1 = hash_to_prime(41)
    p2 = hash_to_prime(41)
    assert p1 == p2
    assert is_probable_prime(p1)
    assert p1.bit_length() == PRIME_BITS


def test_hash_to_prime_distinct_for_distinct_sns():
    primes = {hash_to_prime(sn) for sn in range(1, 64)}
    assert len(primes) == 63


def test_hash_to_prime_rejects_negative():
    with pytest.raises(ValueError):
        hash_to_prime(-1)


# ------------------------------------------------------- trapdoor operations

def test_add_then_witness_verifies():
    acc = make_accumulator()
    prime = acc.add(7)
    assert prime == hash_to_prime(7)
    witness = acc.witness(7)
    assert verify_membership(witness, prime, acc.value, acc.modulus)


def test_add_is_idempotent():
    acc = make_accumulator()
    acc.add(7)
    value = acc.value
    acc.add(7)
    assert acc.value == value
    assert acc.member_count == 1


def test_remove_invalidates_witness():
    acc = make_accumulator()
    acc.add(7)
    acc.add(8)
    witness = acc.witness(7)
    prime = acc.remove(7)
    assert not acc.contains(7)
    assert not verify_membership(witness, prime, acc.value, acc.modulus)


def test_remove_undoes_add_exactly():
    # Trapdoor removal is an exact inverse: the value returns to what it
    # was before the member joined (same insertion order).
    acc = make_accumulator()
    acc.add(1)
    before = acc.value
    acc.add(2)
    acc.remove(2)
    assert acc.value == before


def test_remove_absent_member_raises():
    acc = make_accumulator()
    with pytest.raises(ValueError):
        acc.remove(99)
    with pytest.raises(ValueError):
        acc.witness(99)


def test_forged_witness_rejected():
    acc = make_accumulator()
    acc.add(7)
    witness = acc.witness(7)
    assert not verify_membership(witness + 1, hash_to_prime(7),
                                 acc.value, acc.modulus)


def test_spliced_witness_rejected():
    # A witness for member 7 does not prove membership of 8: verifiers
    # recompute the prime from the requested SN.
    acc = make_accumulator()
    acc.add(7)
    acc.add(8)
    witness_7 = acc.witness(7)
    assert not verify_membership(witness_7, hash_to_prime(8),
                                 acc.value, acc.modulus)


def test_verify_membership_range_checks():
    acc = make_accumulator()
    acc.add(7)
    prime = hash_to_prime(7)
    assert not verify_membership(0, prime, acc.value, acc.modulus)
    assert not verify_membership(acc.modulus, prime, acc.value, acc.modulus)
    assert not verify_membership(acc.witness(7), 1, acc.value, acc.modulus)


def test_fixed_width_encodings():
    acc = make_accumulator(bits=256)
    widths = set()
    for sn in range(1, 9):
        acc.add(sn)
        widths.add(len(acc.value_bytes()))
    assert widths == {32}
    assert len(acc.modulus_bytes()) == 32


def test_zeroize_destroys_trapdoor_state():
    acc = make_accumulator()
    acc.add(7)
    acc.zeroize()
    assert acc.member_count == 0
    assert acc.value == 0


# --------------------------------------------------------- witness directory

def _synced_directory(acc, charge=None) -> WitnessDirectory:
    directory = WitnessDirectory(acc.modulus, charge=charge)
    directory.value = acc.value
    return directory


def test_directory_updates_witness_after_additions():
    acc = make_accumulator()
    directory = _synced_directory(acc)
    prime_7 = acc.add(7)
    directory.observe_add(prime_7, acc.value)
    directory.publish(7, prime_7, acc.witness(7))
    for sn in (8, 9, 10):
        directory.observe_add(acc.add(sn), acc.value)
    witness = directory.witness_for(7)
    assert verify_membership(witness, prime_7, acc.value, acc.modulus)


def test_directory_updates_witness_after_removal_via_bezout():
    acc = make_accumulator()
    directory = _synced_directory(acc)
    prime_7 = acc.add(7)
    directory.observe_add(prime_7, acc.value)
    directory.publish(7, prime_7, acc.witness(7))
    prime_8 = acc.add(8)
    directory.observe_add(prime_8, acc.value)
    acc.remove(8)
    directory.observe_remove(prime_8, acc.value)
    witness = directory.witness_for(7)
    assert verify_membership(witness, prime_7, acc.value, acc.modulus)


def test_directory_evicts_removed_member():
    acc = make_accumulator()
    directory = _synced_directory(acc)
    prime = acc.add(7)
    directory.observe_add(prime, acc.value)
    directory.publish(7, prime, acc.witness(7))
    acc.remove(7)
    directory.observe_remove(prime, acc.value)
    assert directory.witness_for(7) is None
    assert directory.cached_count == 0


def test_directory_uncached_member_returns_none():
    acc = make_accumulator()
    directory = _synced_directory(acc)
    assert directory.witness_for(5) is None


def test_directory_charges_host_side_modexps():
    charges = []
    acc = make_accumulator()
    directory = _synced_directory(
        acc, charge=lambda op, count: charges.append((op, count)))
    prime_7 = acc.add(7)
    directory.observe_add(prime_7, acc.value)
    directory.publish(7, prime_7, acc.witness(7))
    directory.observe_add(acc.add(8), acc.value)
    directory.observe_add(acc.add(9), acc.value)
    directory.witness_for(7)
    assert charges == [("acc_directory_refresh", 2)]
    # Already synced: a second lookup does no arithmetic.
    directory.witness_for(7)
    assert len(charges) == 1


def test_directory_state_size_scales_with_cache():
    acc = make_accumulator(bits=256)
    directory = _synced_directory(acc)
    empty = directory.state_size_bytes()
    prime = acc.add(7)
    directory.observe_add(prime, acc.value)
    directory.publish(7, prime, acc.witness(7))
    assert directory.state_size_bytes() == empty + 32
