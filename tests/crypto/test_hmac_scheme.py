"""Unit tests for HMAC witnessing."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme


class TestHmacScheme:
    def test_roundtrip(self):
        scheme = HmacScheme(key=b"k" * 32)
        tag = scheme.sign(b"burst record")
        assert scheme.verify(b"burst record", tag)

    def test_wrong_message_rejected(self):
        scheme = HmacScheme(key=b"k" * 32)
        tag = scheme.sign(b"original")
        assert not scheme.verify(b"altered", tag)

    def test_wrong_key_rejected(self):
        a = HmacScheme(key=b"a" * 32)
        b = HmacScheme(key=b"b" * 32)
        tag = a.sign(b"msg")
        assert not b.verify(b"msg", tag)

    def test_random_keys_differ(self):
        a, b = HmacScheme(), HmacScheme()
        assert a.sign(b"msg") != b.sign(b"msg")

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            HmacScheme(key=b"short")

    def test_not_client_verifiable(self):
        assert HmacScheme.client_verifiable is False

    def test_tag_length_matches_algorithm(self):
        assert HmacScheme(key=b"k" * 32).tag_length == 32
        assert HmacScheme(key=b"k" * 32, algorithm="sha1").tag_length == 20

    def test_truncated_tag_rejected(self):
        scheme = HmacScheme(key=b"k" * 32)
        tag = scheme.sign(b"msg")
        assert not scheme.verify(b"msg", tag[:-1])
