"""Unit tests for the from-scratch RSA signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    SignatureError,
    generate_keypair,
)


@pytest.fixture(scope="module")
def kp512():
    return generate_keypair(512)


@pytest.fixture(scope="module")
def kp384():
    return generate_keypair(384)


class TestKeyGeneration:
    def test_modulus_has_exact_bits(self, kp512):
        assert kp512.public.n.bit_length() == 512
        assert kp512.bits == 512

    def test_rejects_odd_bit_count(self):
        with pytest.raises(ValueError):
            generate_keypair(511)

    def test_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            generate_keypair(256)

    def test_private_consistency(self, kp512):
        priv = kp512.private
        assert priv.p * priv.q == priv.n
        assert (priv.e * priv.d) % ((priv.p - 1) * (priv.q - 1)) == 1

    def test_distinct_keys_each_call(self):
        a = generate_keypair(384)
        b = generate_keypair(384)
        assert a.public.n != b.public.n


class TestSignVerify:
    def test_roundtrip(self, kp512):
        sig = kp512.private.sign(b"retention matters")
        assert kp512.public.verify(b"retention matters", sig)

    def test_wrong_message_rejected(self, kp512):
        sig = kp512.private.sign(b"original")
        assert not kp512.public.verify(b"altered", sig)

    def test_bitflipped_signature_rejected(self, kp512):
        sig = bytearray(kp512.private.sign(b"msg"))
        sig[10] ^= 0x01
        assert not kp512.public.verify(b"msg", bytes(sig))

    def test_wrong_key_rejected(self, kp512):
        other = generate_keypair(512)
        sig = kp512.private.sign(b"msg")
        assert not other.public.verify(b"msg", sig)

    def test_signature_length_matches_modulus(self, kp512):
        sig = kp512.private.sign(b"msg")
        assert len(sig) == 64  # 512 bits

    def test_deterministic(self, kp512):
        assert kp512.private.sign(b"msg") == kp512.private.sign(b"msg")

    def test_empty_message_signs(self, kp512):
        sig = kp512.private.sign(b"")
        assert kp512.public.verify(b"", sig)

    def test_garbage_signature_returns_false_not_raises(self, kp512):
        assert not kp512.public.verify(b"msg", b"not a signature")
        assert not kp512.public.verify(b"msg", b"\x00" * 64)
        assert not kp512.public.verify(b"msg", b"\xff" * 64)

    def test_oversized_signature_value_rejected(self, kp512):
        # A "signature" numerically >= n must be rejected outright.
        bogus = (kp512.public.n + 1).to_bytes(65, "big")[-64:]
        too_big = b"\xff" * 64
        assert not kp512.public.verify(b"msg", too_big)

    def test_sha1_fallback_for_small_moduli(self, kp384):
        sig = kp384.private.sign(b"msg", hash_name="sha1")
        assert kp384.public.verify(b"msg", sig, hash_name="sha1")
        # Verifying under the wrong hash fails (DigestInfo binding).
        assert not kp384.public.verify(b"msg", sig, hash_name="sha256")

    def test_sha256_too_big_for_384_bit_modulus(self, kp384):
        with pytest.raises(SignatureError):
            kp384.private.sign(b"msg", hash_name="sha256")

    def test_unsupported_hash_raises(self, kp512):
        with pytest.raises(SignatureError):
            kp512.private.sign(b"msg", hash_name="md5")

    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_arbitrary_messages(self, message):
        kp = _CACHED.setdefault("kp", generate_keypair(512))
        sig = kp.private.sign(message)
        assert kp.public.verify(message, sig)


_CACHED: dict = {}


class TestRsaKem:
    def test_roundtrip(self, kp512):
        from repro.crypto.rsa import kem_decapsulate, kem_encapsulate
        ciphertext, secret = kem_encapsulate(kp512.public)
        assert kem_decapsulate(kp512.private, ciphertext) == secret
        assert len(secret) == 32

    def test_fresh_secret_per_encapsulation(self, kp512):
        from repro.crypto.rsa import kem_encapsulate
        _, a = kem_encapsulate(kp512.public)
        _, b = kem_encapsulate(kp512.public)
        assert a != b

    def test_wrong_key_never_derives_the_secret(self, kp512):
        from repro.crypto.rsa import kem_decapsulate, kem_encapsulate
        other = generate_keypair(512)
        ciphertext, secret = kem_encapsulate(kp512.public)
        # The wrong key either derives a different secret or rejects the
        # ciphertext outright (when c >= other.n) — never the real secret.
        try:
            assert kem_decapsulate(other.private, ciphertext) != secret
        except SignatureError:
            pass

    def test_malformed_ciphertext_rejected(self, kp512):
        from repro.crypto.rsa import kem_decapsulate
        with pytest.raises(SignatureError):
            kem_decapsulate(kp512.private, b"short")
        with pytest.raises(SignatureError):
            kem_decapsulate(kp512.private, b"\xff" * 64)  # >= n


class TestSerialization:
    def test_public_key_roundtrip(self, kp512):
        restored = RsaPublicKey.from_dict(kp512.public.to_dict())
        assert restored == kp512.public

    def test_private_key_roundtrip(self, kp512):
        restored = RsaPrivateKey.from_dict(kp512.private.to_dict())
        assert restored == kp512.private
        sig = restored.sign(b"still works")
        assert kp512.public.verify(b"still works", sig)

    def test_fingerprint_stable_and_distinct(self, kp512):
        assert kp512.public.fingerprint() == kp512.public.fingerprint()
        other = generate_keypair(384)
        assert kp512.public.fingerprint() != other.public.fingerprint()
