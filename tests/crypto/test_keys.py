"""Unit tests for signing keys, lifetimes, and the regulatory CA."""

import pytest

from repro.crypto.envelope import Envelope, Purpose
from repro.crypto.keys import (
    SECURITY_LIFETIME_SECONDS,
    Certificate,
    CertificateAuthority,
    SigningKey,
    security_lifetime,
)


@pytest.fixture(scope="module")
def s_key():
    return SigningKey.generate(512, role="s")


@pytest.fixture(scope="module")
def module_ca():
    return CertificateAuthority(bits=512)


class TestSecurityLifetimes:
    def test_paper_parameters(self):
        assert security_lifetime(512) == 60 * 60.0  # tens of minutes (§4.3)
        assert security_lifetime(1024) >= 10 * 365 * 24 * 3600.0

    def test_intermediate_sizes_inherit_lower_anchor(self):
        assert security_lifetime(640) == SECURITY_LIFETIME_SECONDS[512]
        assert security_lifetime(1536) == SECURITY_LIFETIME_SECONDS[1024]

    def test_tiny_test_keys_get_short_lifetime(self):
        assert security_lifetime(384) == 10 * 60.0

    def test_monotone_in_bits(self):
        sizes = [384, 512, 768, 1024, 2048, 4096]
        lifetimes = [security_lifetime(b) for b in sizes]
        assert lifetimes == sorted(lifetimes)


class TestSigningKey:
    def test_sign_envelope_verifies(self, s_key):
        env = Envelope(purpose=Purpose.METASIG, fields={"sn": 1}, timestamp=0.0)
        signed = s_key.sign_envelope(env)
        assert s_key.public.verify(env.canonical_bytes(), signed.signature,
                                   hash_name=signed.hash_name)
        assert signed.key_fingerprint == s_key.fingerprint
        assert signed.key_bits == 512

    def test_short_lived_flag(self):
        assert SigningKey.generate(512, role="burst").is_short_lived
        # 512-bit is short-lived; the flag drives strengthening queues.

    def test_hash_selection_by_size(self, s_key):
        assert s_key.hash_name == "sha256"
        small = SigningKey.generate(384, role="test")
        assert small.hash_name == "sha1"
        env = Envelope(purpose="p", fields={}, timestamp=0.0)
        signed = small.sign_envelope(env)
        assert signed.hash_name == "sha1"
        assert small.public.verify(env.canonical_bytes(), signed.signature,
                                   hash_name="sha1")


class TestCertificateAuthority:
    def test_certify_and_verify(self, module_ca, s_key):
        cert = module_ca.certify(s_key.public, role="s", now=100.0)
        assert CertificateAuthority.verify_certificate(
            cert, module_ca.root_public_key)
        assert cert.role == "s"
        assert cert.issued_at == 100.0

    def test_wrong_ca_rejected(self, module_ca, s_key):
        other_ca = CertificateAuthority(bits=512)
        cert = module_ca.certify(s_key.public, role="s", now=0.0)
        assert not CertificateAuthority.verify_certificate(
            cert, other_ca.root_public_key)

    def test_role_substitution_rejected(self, module_ca, s_key):
        import dataclasses
        cert = module_ca.certify(s_key.public, role="burst", now=0.0)
        upgraded = dataclasses.replace(cert, role="s")
        assert not CertificateAuthority.verify_certificate(
            upgraded, module_ca.root_public_key)

    def test_key_substitution_rejected(self, module_ca, s_key):
        import dataclasses
        cert = module_ca.certify(s_key.public, role="s", now=0.0)
        mallory = SigningKey.generate(512, role="s")
        swapped = dataclasses.replace(cert, public_key=mallory.public)
        assert not CertificateAuthority.verify_certificate(
            swapped, module_ca.root_public_key)

    def test_certificate_purpose_bound(self, module_ca, s_key):
        cert = module_ca.certify(s_key.public, role="s", now=0.0)
        assert cert.signed.purpose == Purpose.KEY_CERTIFICATE
