"""Unit tests for typed signed envelopes (splice resistance)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.envelope import Envelope, Purpose, SignedEnvelope


class TestCanonicalBytes:
    def test_deterministic(self):
        env = Envelope(purpose="p", fields={"a": 1, "b": "x"}, timestamp=1.5)
        assert env.canonical_bytes() == env.canonical_bytes()

    def test_field_order_irrelevant(self):
        a = Envelope(purpose="p", fields={"a": 1, "b": 2})
        b = Envelope(purpose="p", fields={"b": 2, "a": 1})
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_purpose_is_bound(self):
        a = Envelope(purpose=Purpose.METASIG, fields={"sn": 1})
        b = Envelope(purpose=Purpose.DELETION_PROOF, fields={"sn": 1})
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_timestamp_is_bound(self):
        a = Envelope(purpose="p", timestamp=10.0)
        b = Envelope(purpose="p", timestamp=10.000001)
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_sub_microsecond_timestamps_collapse(self):
        # Signed at microsecond granularity — representation-stable.
        a = Envelope(purpose="p", timestamp=10.0000001)
        b = Envelope(purpose="p", timestamp=10.0000004)
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_type_tags_distinguish_int_from_str(self):
        a = Envelope(purpose="p", fields={"v": 1})
        b = Envelope(purpose="p", fields={"v": "1"})
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_type_tags_distinguish_str_from_bytes(self):
        a = Envelope(purpose="p", fields={"v": "abc"})
        b = Envelope(purpose="p", fields={"v": b"abc"})
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_bool_fields_rejected(self):
        env = Envelope(purpose="p", fields={"flag": True})
        with pytest.raises(TypeError):
            env.canonical_bytes()

    def test_unsupported_type_rejected(self):
        env = Envelope(purpose="p", fields={"v": 1.5})
        with pytest.raises(TypeError):
            env.canonical_bytes()

    def test_field_name_value_boundary_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = Envelope(purpose="p", fields={"ab": "c"})
        b = Envelope(purpose="p", fields={"a": "bc"})
        assert a.canonical_bytes() != b.canonical_bytes()

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=16), st.binary(max_size=16)),
        max_size=5))
    @settings(max_examples=50)
    def test_canonical_bytes_total_function(self, fields):
        env = Envelope(purpose="p", fields=fields, timestamp=1.0)
        raw = env.canonical_bytes()
        assert isinstance(raw, bytes) and raw.startswith(b"SWORM1")


class TestSignedEnvelopeSerialization:
    def _sample(self):
        env = Envelope(
            purpose=Purpose.DATASIG,
            fields={"sn": 42, "data_hash": b"\x01\x02", "note": "x"},
            timestamp=12.5,
        )
        return SignedEnvelope(envelope=env, signature=b"\xaa\xbb",
                              key_fingerprint="f00d", key_bits=512,
                              scheme="rsa", hash_name="sha256")

    def test_roundtrip_preserves_canonical_bytes(self):
        signed = self._sample()
        restored = SignedEnvelope.from_dict(signed.to_dict())
        assert (restored.envelope.canonical_bytes()
                == signed.envelope.canonical_bytes())
        assert restored.signature == signed.signature
        assert restored.key_bits == 512
        assert restored.hash_name == "sha256"

    def test_field_accessor(self):
        signed = self._sample()
        assert signed.field("sn") == 42
        assert signed.field("data_hash") == b"\x01\x02"

    def test_purpose_and_timestamp_properties(self):
        signed = self._sample()
        assert signed.purpose == Purpose.DATASIG
        assert signed.timestamp == 12.5

    def test_legacy_dict_defaults(self):
        data = self._sample().to_dict()
        del data["hash_name"]
        del data["scheme"]
        restored = SignedEnvelope.from_dict(data)
        assert restored.hash_name == "sha256"
        assert restored.scheme == "rsa"
