"""Clock-drift tolerance: the §4.2.2 footnote, stress-tested.

Clients need only a "(roughly) synchronized time server"; the SCPU clock
is accurate but physically independent.  These tests pin down how much
skew the freshness machinery tolerates — and that implausible skews are
rejected rather than absorbed.
"""

import pytest

from repro import StrongWormStore, demo_keyring
from repro.core.errors import FreshnessError
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.clock import ScpuClock, SimulationClock
from repro.sim.manual_clock import ManualClock


class _OffsetClock:
    """A client clock running a fixed offset from the store clock."""

    def __init__(self, source, offset: float) -> None:
        self._source = source
        self._offset = offset

    @property
    def now(self) -> float:
        return self._source.now + self._offset


class TestClientSkew:
    def _store_and_ca(self, ca):
        store = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        return store

    def test_small_lag_tolerated(self, ca):
        store = self._store_and_ca(ca)
        store.scpu.clock.advance(1000.0)
        store.windows.refresh_current(force=True)
        client = store.make_client(
            ca, clock=_OffsetClock(store.scpu.clock, -30.0))
        receipt = store.write([b"x"], retention_seconds=1e9)
        assert client.verify_read(store.read(receipt.sn),
                                  receipt.sn).status == "active"
        # Freshness-sensitive reads too.
        assert client.verify_read(store.read(999), 999).status == \
            "never-allocated"

    def test_small_lead_tolerated(self, ca):
        store = self._store_and_ca(ca)
        store.scpu.clock.advance(1000.0)
        store.windows.refresh_current(force=True)
        client = store.make_client(
            ca, clock=_OffsetClock(store.scpu.clock, 45.0))
        assert client.verify_read(store.read(999), 999).status == \
            "never-allocated"

    def test_client_far_behind_rejects_future_constructs(self, ca):
        store = self._store_and_ca(ca)
        store.scpu.clock.advance(1000.0)
        store.windows.refresh_current(force=True)
        lagging = store.make_client(
            ca, clock=_OffsetClock(store.scpu.clock, -600.0))
        with pytest.raises(FreshnessError, match="future"):
            lagging.verify_read(store.read(999), 999)

    def test_client_far_ahead_sees_staleness(self, ca):
        store = self._store_and_ca(ca)
        store.windows.refresh_current(force=True)
        leading = store.make_client(
            ca, clock=_OffsetClock(store.scpu.clock, 10_000.0))
        with pytest.raises(FreshnessError, match="old"):
            leading.verify_read(store.read(999), 999)


class TestScpuDrift:
    def test_realistic_drift_invisible(self):
        """FIPS-grade drift (ppm) never approaches the freshness window."""
        source = SimulationClock()
        drifty = ScpuClock(source, drift_rate=20e-6)  # 20 ppm
        source._advance_to(30 * 24 * 3600.0)          # a month
        skew = abs(drifty.now - source.now)
        assert skew < 60.0  # under a minute per month — inside tolerance

    def test_offset_plus_drift_composes(self):
        source = SimulationClock()
        clock = ScpuClock(source, drift_rate=1e-6, offset=5.0)
        source._advance_to(1_000_000.0)
        assert clock.now == pytest.approx(1_000_000.0 + 5.0 + 1.0)
