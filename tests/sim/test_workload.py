"""Unit tests for workload generation."""

import pytest

from repro.sim.workload import (
    BurstArrivals,
    ClosedLoopArrivals,
    EmailMixSize,
    FixedSize,
    LognormalSize,
    MixedWorkload,
    PoissonArrivals,
    RetentionSampler,
    UniformSize,
)

import random


class TestSizeDistributions:
    def test_fixed(self):
        rng = random.Random(0)
        dist = FixedSize(1024)
        assert all(dist.sample(rng) == 1024 for _ in range(10))

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedSize(-1)

    def test_uniform_in_range(self):
        rng = random.Random(0)
        dist = UniformSize(100, 200)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(100 <= s <= 200 for s in samples)
        assert min(samples) < 130 and max(samples) > 170  # actually spreads

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformSize(200, 100)

    def test_lognormal_capped_and_positive(self):
        rng = random.Random(0)
        dist = LognormalSize(cap=10_000)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(1 <= s <= 10_000 for s in samples)

    def test_lognormal_heavy_tail(self):
        rng = random.Random(1)
        dist = LognormalSize()
        samples = sorted(dist.sample(rng) for _ in range(2000))
        median = samples[1000]
        p99 = samples[1980]
        assert p99 > 10 * median

    def test_email_mix_bands(self):
        rng = random.Random(2)
        samples = [EmailMixSize().sample(rng) for _ in range(2000)]
        small = sum(1 for s in samples if s <= 16 * 1024)
        large = sum(1 for s in samples if s >= 1024 * 1024)
        assert 0.7 < small / len(samples) < 0.9   # ~80% small bodies
        assert large / len(samples) < 0.05        # ~2% large attachments


class TestRetentionSampler:
    def test_default_profiles_are_years(self):
        rng = random.Random(0)
        year = 365.0 * 24 * 3600
        samples = {RetentionSampler().sample(rng) for _ in range(200)}
        assert samples <= {3 * year, 6 * year, 20 * year}
        assert len(samples) == 3

    def test_custom_weights(self):
        rng = random.Random(0)
        sampler = RetentionSampler(profiles=((10.0, 1.0),))
        assert all(sampler.sample(rng) == 10.0 for _ in range(20))

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            RetentionSampler(profiles=((10.0, 0.0),))


class TestArrivalProcesses:
    def test_poisson_deterministic_given_seed(self):
        a = list(PoissonArrivals(10.0, FixedSize(1), count=50, seed=7))
        b = list(PoissonArrivals(10.0, FixedSize(1), count=50, seed=7))
        assert [r.arrival for r in a] == [r.arrival for r in b]

    def test_poisson_rate_approximately_holds(self):
        requests = list(PoissonArrivals(100.0, FixedSize(1), count=2000, seed=3))
        span = requests[-1].arrival
        assert 80 < len(requests) / span < 125

    def test_poisson_arrivals_increasing(self):
        requests = list(PoissonArrivals(5.0, FixedSize(1), count=100, seed=1))
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)

    def test_poisson_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, FixedSize(1), count=1)

    def test_burst_arrivals_have_idle_gaps(self):
        workload = BurstArrivals(burst_rate=1000.0, burst_seconds=1.0,
                                 idle_seconds=10.0, size_dist=FixedSize(1),
                                 total_count=3000, seed=5)
        arrivals = [r.arrival for r in workload]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert max(gaps) >= 10.0       # an idle gap appears
        assert sorted(arrivals) == arrivals

    def test_burst_emits_exact_count(self):
        workload = BurstArrivals(burst_rate=100.0, burst_seconds=1.0,
                                 idle_seconds=1.0, size_dist=FixedSize(1),
                                 total_count=500, seed=5)
        assert len(list(workload)) == 500

    def test_closed_loop_all_at_zero(self):
        requests = list(ClosedLoopArrivals(FixedSize(64), count=10, seed=0))
        assert len(requests) == 10
        assert all(r.arrival == 0.0 for r in requests)
        assert all(r.kind == "write" for r in requests)

    def test_mixed_workload_fractions(self):
        workload = MixedWorkload(rate=100.0, read_fraction=0.8,
                                 size_dist=FixedSize(1), count=2000, seed=9)
        requests = list(workload)
        reads = [r for r in requests if r.kind == "read"]
        assert 0.7 < len(reads) / len(requests) < 0.9

    def test_mixed_workload_reads_target_written_indexes(self):
        workload = MixedWorkload(rate=10.0, read_fraction=0.5,
                                 size_dist=FixedSize(1), count=500, seed=4)
        writes_seen = 0
        for request in workload:
            if request.kind == "read":
                assert 0 <= request.target_sn < writes_seen
            else:
                writes_seen += 1

    def test_mixed_workload_first_request_is_write(self):
        workload = MixedWorkload(rate=10.0, read_fraction=0.99,
                                 size_dist=FixedSize(1), count=10, seed=0)
        assert next(iter(workload)).kind == "write"

    def test_mixed_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            MixedWorkload(10.0, 1.5, FixedSize(1), count=1)


class TestDiurnalArrivals:
    def _workload(self, **kw):
        from repro.sim.workload import DiurnalArrivals
        defaults = dict(size_dist=FixedSize(128), days=1, night_rate=0.002,
                        day_rate=0.05, burst_rate=500.0, burst_seconds=10.0,
                        seed=3)
        defaults.update(kw)
        return DiurnalArrivals(**defaults)

    def test_arrivals_monotone_and_within_horizon(self):
        arrivals = [r.arrival for r in self._workload()]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < 24 * 3600.0

    def test_burst_concentration(self):
        hour = 3600.0
        requests = list(self._workload())
        in_burst = [r for r in requests
                    if 16 * hour <= r.arrival < 16 * hour + 10.0]
        # The 10-second EOD burst carries the bulk of the day's writes.
        assert len(in_burst) > 0.5 * len(requests)

    def test_night_is_quiet(self):
        hour = 3600.0
        requests = list(self._workload())
        at_night = [r for r in requests if r.arrival < 8 * hour]
        by_day = [r for r in requests if 8 * hour <= r.arrival < 16 * hour]
        assert len(at_night) < len(by_day) / 5

    def test_multiple_days(self):
        requests = list(self._workload(days=3))
        day_of = {int(r.arrival // (24 * 3600.0)) for r in requests}
        assert day_of == {0, 1, 2}

    def test_deterministic_given_seed(self):
        a = [r.arrival for r in self._workload()]
        b = [r.arrival for r in self._workload()]
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self._workload(day_rate=0.0)
        with pytest.raises(ValueError):
            self._workload(days=0)
