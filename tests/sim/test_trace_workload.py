"""Tests for workload trace persistence and replay."""

import pytest

from repro.sim.trace_workload import TraceWorkload, load_trace, save_trace
from repro.sim.workload import FixedSize, MixedWorkload, PoissonArrivals


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        original = list(PoissonArrivals(50.0, FixedSize(512), count=100,
                                        seed=4))
        path = tmp_path / "trace.jsonl"
        assert save_trace(original, path) == 100
        replayed = load_trace(path)
        assert replayed == original

    def test_mixed_kinds_roundtrip(self, tmp_path):
        original = list(MixedWorkload(rate=20.0, read_fraction=0.5,
                                      size_dist=FixedSize(64), count=60,
                                      seed=8))
        path = tmp_path / "mixed.jsonl"
        save_trace(original, path)
        replayed = load_trace(path)
        assert [r.kind for r in replayed] == [r.kind for r in original]
        assert replayed == original

    def test_streaming_iteration(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        save_trace(PoissonArrivals(10.0, FixedSize(1), count=20, seed=0), path)
        workload = TraceWorkload(path)
        assert len(list(workload)) == 20
        assert len(list(workload)) == 20  # re-iterable

    def test_replay_through_driver(self, tmp_path):
        from repro import demo_keyring
        from repro.sim.driver import make_sim_store, run_open_loop

        path = tmp_path / "drive.jsonl"
        save_trace(PoissonArrivals(100.0, FixedSize(256), count=25, seed=1),
                   path)
        simstore = make_sim_store(keyring=demo_keyring())
        metrics = run_open_loop(simstore, TraceWorkload(path))
        assert metrics.count("write") == 25


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceWorkload(tmp_path / "nope.jsonl")

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "write", "arrival": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "erase", "arrival": 1.0}\n')
        with pytest.raises(ValueError, match="unknown kind"):
            load_trace(path)

    def test_non_monotone_arrivals(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "write", "arrival": 5.0, "size": 1}\n'
                        '{"kind": "write", "arrival": 1.0, "size": 1}\n')
        with pytest.raises(ValueError, match="monotone"):
            load_trace(path)

    def test_negative_values_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "write", "arrival": -1.0, "size": 1}\n')
        with pytest.raises(ValueError, match="negative"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"kind": "write", "arrival": 1.0, "size": 2}\n\n')
        assert len(load_trace(path)) == 1
