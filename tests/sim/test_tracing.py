"""Tests for simulation tracing."""

import json

import pytest

from repro.sim.tracing import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_record_and_query(self):
        trace = TraceRecorder()
        trace.record("write-1", "scpu", 0.0, 1.0)
        trace.record("write-1", "disk", 1.0, 1.5)
        trace.record("write-2", "scpu", 1.0, 2.0)
        assert len(trace) == 3
        assert trace.busy_seconds("scpu") == pytest.approx(2.0)
        assert trace.span() == pytest.approx(2.0)
        assert len(trace.by_category("disk")) == 1

    def test_disabled_recorder_is_inert(self):
        trace = TraceRecorder(enabled=False)
        trace.record("x", "scpu", 0.0, 1.0)
        assert len(trace) == 0
        assert trace.span() == 0.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("x", "scpu", 2.0, 1.0)

    def test_chrome_trace_export(self):
        trace = TraceRecorder()
        trace.record("op", "scpu", 0.5, 1.5, sn=7)
        spans = json.loads(trace.to_chrome_trace())
        assert spans[0]["ph"] == "X"
        assert spans[0]["ts"] == pytest.approx(0.5e6)
        assert spans[0]["dur"] == pytest.approx(1.0e6)
        assert spans[0]["args"]["sn"] == 7

    def test_gantt_rendering(self):
        trace = TraceRecorder()
        trace.record("a", "scpu", 0.0, 1.0)
        trace.record("b", "disk", 1.0, 2.0)
        sketch = trace.gantt(width=20)
        assert "scpu" in sketch and "disk" in sketch
        assert "#" in sketch

    def test_empty_gantt(self):
        assert TraceRecorder().gantt() == "(empty trace)"


class TestDriverIntegration:
    def test_driver_populates_trace(self):
        from repro import demo_keyring
        from repro.sim.driver import make_sim_store, run_closed_loop
        from repro.sim.workload import ClosedLoopArrivals, FixedSize

        trace = TraceRecorder()
        simstore = make_sim_store(keyring=demo_keyring(), trace=trace)
        run_closed_loop(simstore,
                        ClosedLoopArrivals(FixedSize(1024), 10))
        assert len(trace) > 0
        assert trace.busy_seconds("scpu") > 0
        assert trace.busy_seconds("disk") > 0
        # Spans cover queueing + service; each span's end is at least its
        # recorded service time after its start, and all 10 writes appear.
        scpu_spans = trace.by_category("scpu")
        assert len(scpu_spans) == 10
        for span in scpu_spans:
            assert span.duration >= span.metadata["service"] - 1e-12
