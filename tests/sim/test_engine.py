"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.clock import ScpuClock, SimulationClock
from repro.sim.engine import Interrupt, Simulator
from repro.sim.manual_clock import ManualClock


class TestClocks:
    def test_simulation_clock_forward_only(self):
        clock = SimulationClock()
        clock._advance_to(5.0)
        with pytest.raises(ValueError):
            clock._advance_to(4.0)

    def test_manual_clock(self):
        clock = ManualClock(10.0)
        assert clock.advance(5.0) == 15.0
        clock.set(20.0)
        with pytest.raises(ValueError):
            clock.set(19.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_scpu_clock_drift(self):
        source = SimulationClock()
        drifty = ScpuClock(source, drift_rate=1e-3)
        source._advance_to(1000.0)
        assert drifty.now == pytest.approx(1001.0)

    def test_scpu_clock_rejects_absurd_drift(self):
        with pytest.raises(ValueError):
            ScpuClock(SimulationClock(), drift_rate=0.5)


class TestTimeouts:
    def test_timeouts_fire_in_order(self):
        sim = Simulator()
        fired = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            fired.append((tag, sim.now))

        sim.process(proc(3.0, "c"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(2.0, "b"))
        sim.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []

        def proc(tag):
            yield sim.timeout(1.0)
            fired.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        sim.run(until=10.0)
        assert sim.now == 10.0
        sim.run()  # finish the rest
        assert sim.now == 100.0

    def test_run_until_advances_idle_clock(self):
        sim = Simulator()
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_timeout_value_passed_to_process(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]


class TestProcesses:
    def test_process_return_value(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(2.0)
            return 42

        def parent():
            value = yield sim.process(child())
            results.append((value, sim.now))

        sim.process(parent())
        sim.run()
        assert results == [(42, 2.0)]

    def test_waiting_on_already_finished_process(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(1.0)
            return "done"

        def parent(child_proc):
            yield sim.timeout(5.0)
            value = yield child_proc
            results.append((value, sim.now))

        child_proc = sim.process(child())
        sim.process(parent(child_proc))
        sim.run()
        assert results == [("done", 5.0)]

    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()
        events = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
                events.append("slept-through")
            except Interrupt as exc:
                events.append(f"interrupted:{exc.cause}@{sim.now}")

        def interrupter(target):
            yield sim.timeout(3.0)
            target.interrupt("alarm-reset")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert events == ["interrupted:alarm-reset@3.0"]

    def test_interrupted_process_does_not_double_resume(self):
        sim = Simulator()
        wakes = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                pass
            yield sim.timeout(50.0)
            wakes.append(sim.now)

        def interrupter(target):
            yield sim.timeout(2.0)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        # Woken at t=2, sleeps 50 more: exactly one wake at t=52 — the
        # original t=10 timeout must NOT resume it a second time.
        assert wakes == [52.0]

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        proc.interrupt()  # no error
        sim.run()

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()


class TestCombinators:
    def test_all_of_waits_for_everything(self):
        from repro.sim.engine import all_of
        sim = Simulator()
        got = []

        def waiter():
            values = yield all_of(sim, [sim.timeout(1.0, value="a"),
                                        sim.timeout(3.0, value="b"),
                                        sim.timeout(2.0, value="c")])
            got.append((sim.now, values))

        sim.process(waiter())
        sim.run()
        assert got == [(3.0, ["a", "b", "c"])]

    def test_all_of_empty_fires_immediately(self):
        from repro.sim.engine import all_of
        sim = Simulator()
        got = []

        def waiter():
            values = yield all_of(sim, [])
            got.append((sim.now, values))

        sim.process(waiter())
        sim.run()
        assert got == [(0.0, [])]

    def test_any_of_first_wins(self):
        from repro.sim.engine import any_of
        sim = Simulator()
        got = []

        def waiter():
            winner = yield any_of(sim, [sim.timeout(5.0, value="slow"),
                                        sim.timeout(1.0, value="fast")])
            got.append((sim.now, winner))

        sim.process(waiter())
        sim.run()
        assert got == [(1.0, (1, "fast"))]

    def test_any_of_as_timeout_race(self):
        from repro.sim.engine import any_of
        sim = Simulator()
        outcome = []

        def slow_work():
            yield sim.timeout(100.0)
            return "done"

        def supervisor():
            work = sim.process(slow_work())
            index, value = yield any_of(sim, [work, sim.timeout(10.0)])
            outcome.append("timed-out" if index == 1 else value)

        sim.process(supervisor())
        sim.run()
        assert outcome == ["timed-out"]

    def test_any_of_rejects_empty(self):
        from repro.sim.engine import any_of
        with pytest.raises(ValueError):
            any_of(Simulator(), [])

    def test_all_of_with_already_fired_events(self):
        from repro.sim.engine import all_of
        sim = Simulator()
        early = sim.timeout(1.0, value="early")
        got = []

        def late_joiner():
            yield sim.timeout(5.0)
            values = yield all_of(sim, [early, sim.timeout(1.0, value="x")])
            got.append((sim.now, values))

        sim.process(late_joiner())
        sim.run()
        assert got == [(6.0, ["early", "x"])]


class TestResources:
    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        grants = []

        def user(tag, hold):
            req = resource.request()
            yield req
            grants.append((tag, sim.now))
            yield sim.timeout(hold)
            resource.release(req)

        sim.process(user("first", 5.0))
        sim.process(user("second", 1.0))
        sim.process(user("third", 1.0))
        sim.run()
        assert grants == [("first", 0.0), ("second", 5.0), ("third", 6.0)]

    def test_capacity_two_runs_pairs(self):
        sim = Simulator()
        resource = sim.resource(capacity=2)
        done = []

        def user():
            req = resource.request()
            yield req
            yield sim.timeout(4.0)
            resource.release(req)
            done.append(sim.now)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert done == [4.0, 4.0, 8.0, 8.0]

    def test_queue_length_and_in_use(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        observed = []

        def holder():
            req = resource.request()
            yield req
            yield sim.timeout(10.0)
            resource.release(req)

        def watcher():
            yield sim.timeout(1.0)
            observed.append((resource.in_use, resource.queue_length))

        sim.process(holder())
        sim.process(holder())
        sim.process(holder())
        sim.process(watcher())
        sim.run()
        assert observed == [(1, 2)]

    def test_double_release_rejected(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        errors = []

        def user():
            req = resource.request()
            yield req
            resource.release(req)
            try:
                resource.release(req)
            except RuntimeError:
                errors.append("caught")

        sim.process(user())
        sim.run()
        assert errors == ["caught"]

    def test_busy_time_accounting(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)

        def user():
            req = resource.request()
            yield req
            yield sim.timeout(3.0)
            resource.release(req)

        sim.process(user())
        sim.run(until=10.0)
        assert resource.total_busy_time == pytest.approx(3.0)
        assert resource.utilization(10.0) == pytest.approx(0.3)

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.resource(capacity=0)

    def test_peek_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.timeout(7.0)
        assert sim.peek() == 7.0
