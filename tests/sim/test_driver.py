"""Integration tests for the throughput simulation driver."""

import pytest

from repro import demo_keyring
from repro.hardware.scpu import ScpuKeyring, Strength
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import SigningKey
from repro.sim.driver import (
    SimulationConfig,
    make_sim_store,
    run_closed_loop,
    run_open_loop,
)
from repro.sim.workload import ClosedLoopArrivals, FixedSize, MixedWorkload


@pytest.fixture(scope="module")
def paper_keyring():
    """1024-bit durable keys + 512-bit burst key (the paper's parameters)."""
    return ScpuKeyring(
        s_key=SigningKey.generate(1024, "s"),
        d_key=SigningKey.generate(1024, "d"),
        burst_key=SigningKey.generate(512, "burst"),
        hmac=HmacScheme(),
    )


def _throughput(keyring, size=1024, count=80, config=None, **write_kwargs):
    simstore = make_sim_store(config=config, keyring=keyring)
    metrics = run_closed_loop(
        simstore, ClosedLoopArrivals(FixedSize(size), count),
        config=config, write_kwargs=write_kwargs)
    return metrics.throughput("write"), simstore


class TestClosedLoop:
    def test_strong_mode_matches_paper_band(self, paper_keyring):
        # §5: without deferring, 450-500 records/s sustained.  Two
        # 1024-bit signatures at 848/s cap the rate at 424/s; allow the
        # band around that.
        rate, _ = _throughput(paper_keyring, strength=Strength.STRONG,
                              defer_data_hash=True)
        assert 350 < rate < 520

    def test_deferred_mode_matches_paper_band(self, paper_keyring):
        # §5: 2000-2500 records/s with deferred 512-bit signatures.
        rate, _ = _throughput(paper_keyring, strength=Strength.WEAK,
                              defer_data_hash=True)
        assert 1800 < rate < 2600

    def test_hmac_mode_fastest(self, paper_keyring):
        weak, _ = _throughput(paper_keyring, strength=Strength.WEAK,
                              defer_data_hash=True)
        hmac, _ = _throughput(paper_keyring, strength=Strength.HMAC,
                              defer_data_hash=True)
        assert hmac > weak

    def test_throughput_declines_with_record_size_when_scpu_hashes(
            self, paper_keyring):
        small, _ = _throughput(paper_keyring, size=1024,
                               strength=Strength.WEAK)
        large, _ = _throughput(paper_keyring, size=256 * 1024,
                               strength=Strength.WEAK)
        assert large < small / 4

    def test_scpu_is_the_bottleneck(self, paper_keyring):
        rate, simstore = _throughput(paper_keyring, strength=Strength.STRONG,
                                     defer_data_hash=True)
        util = simstore.utilization(simstore.sim.now)
        assert util["scpu"] > 0.9
        assert util["host"] < 0.5

    def test_two_scpus_roughly_double_throughput(self, paper_keyring):
        one, _ = _throughput(paper_keyring, strength=Strength.STRONG,
                             defer_data_hash=True,
                             config=SimulationConfig(scpu_count=1))
        two, _ = _throughput(paper_keyring, strength=Strength.STRONG,
                             defer_data_hash=True,
                             config=SimulationConfig(scpu_count=2))
        assert 1.7 < two / one < 2.3


class TestOpenLoop:
    def test_reads_do_not_touch_the_scpu(self):
        keyring = demo_keyring()
        simstore = make_sim_store(keyring=keyring)
        workload = MixedWorkload(rate=50.0, read_fraction=0.5,
                                 size_dist=FixedSize(512), count=60, seed=1)
        scpu_meter_mark = simstore.store.scpu.meter.checkpoint()
        metrics = run_open_loop(simstore, workload)
        assert metrics.count("read") > 0
        # Reads never touch the SCPU: every virtual second it accumulated
        # during the run is attributable to the writes alone.
        scpu_spent = simstore.store.scpu.meter.delta(scpu_meter_mark)
        per_write = scpu_spent / max(1, metrics.count("write"))
        writes_only = make_sim_store(keyring=keyring)
        mark2 = writes_only.store.scpu.meter.checkpoint()
        writes_only.store.write([b"\x00" * 512])
        expected_per_write = writes_only.store.scpu.meter.delta(mark2)
        assert per_write == pytest.approx(expected_per_write, rel=0.25)

    def test_underloaded_system_has_low_latency(self):
        keyring = demo_keyring()
        simstore = make_sim_store(keyring=keyring)
        workload = MixedWorkload(rate=10.0, read_fraction=0.0,
                                 size_dist=FixedSize(512), count=40, seed=2)
        metrics = run_open_loop(simstore, workload)
        summary = metrics.latency_summary("write")
        # At 10 req/s against a ~1000/s-capable store, no queueing.
        assert summary["p99"] < 0.05

    def test_strengthening_drains_in_idle_gaps(self):
        keyring = demo_keyring()
        simstore = make_sim_store(keyring=keyring)
        config = SimulationConfig(strengthen_when_idle=True,
                                  maintenance_interval=5.0)
        workload = MixedWorkload(rate=20.0, read_fraction=0.0,
                                 size_dist=FixedSize(256), count=50, seed=3)
        run_open_loop(simstore, workload, config=config, horizon=3600.0,
                      write_kwargs={"strength": Strength.WEAK})
        # All weak writes upgraded once the burst ended.
        store = simstore.store
        assert store.strengthening.strengthened_count == 50
        assert len(store.strengthening) == 0
        assert store.strengthening.lifetime_violations == 0
