"""The multi-tenant open-loop workload generator.

These tests pin the statistical *shape* (Zipf head-heaviness, diurnal
phase boundaries, Poisson monotonicity) with deterministic seeds, so
the tenant-bench harness stays reproducible run to run.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.sim import (
    FixedSize,
    MultiTenantArrivals,
    TenantRequest,
    ZipfChoice,
)


class TestZipfChoice:
    def test_rank_zero_is_most_popular(self):
        zipf = ZipfChoice(5, skew=1.1)
        rng = random.Random(7)
        counts = Counter(zipf.sample(rng) for _ in range(20_000))
        ordered = [counts[i] for i in range(5)]
        assert ordered == sorted(ordered, reverse=True)
        assert counts[0] > 2 * counts[4]

    def test_zero_skew_is_uniform(self):
        zipf = ZipfChoice(4, skew=0.0)
        rng = random.Random(3)
        counts = Counter(zipf.sample(rng) for _ in range(40_000))
        for i in range(4):
            assert counts[i] == pytest.approx(10_000, rel=0.08)

    def test_deterministic_given_seed(self):
        zipf = ZipfChoice(8, skew=1.3)
        first = [zipf.sample(random.Random(42)) for _ in range(10)]
        second = [zipf.sample(random.Random(42)) for _ in range(10)]
        assert first == second

    def test_single_item_always_wins(self):
        zipf = ZipfChoice(1)
        assert zipf.sample(random.Random(0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfChoice(0)
        with pytest.raises(ValueError):
            ZipfChoice(3, skew=-0.5)


class TestMultiTenantArrivals:
    def _workload(self, **overrides):
        params = dict(
            tenants=("t0", "t1", "t2"), size_dist=FixedSize(128),
            days=1, night_rate=0.5, day_rate=2.0,
            burst_rate=50.0, burst_seconds=10.0,
            hour_seconds=2.0, users_per_tenant=1_000, seed=11)
        params.update(overrides)
        return MultiTenantArrivals(**params)

    def test_arrivals_are_strictly_increasing(self):
        arrivals = [tr.request.arrival for tr in self._workload()]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)
        assert arrivals[-1] < 24 * 2.0  # inside the compressed day

    def test_reproducible_for_a_seed(self):
        a = list(self._workload())
        b = list(self._workload())
        assert a == b
        assert a != list(self._workload(seed=12))

    def test_every_request_is_tenant_attributed(self):
        for tr in self._workload():
            assert isinstance(tr, TenantRequest)
            assert tr.tenant in ("t0", "t1", "t2")
            assert 0 <= tr.user < 1_000
            assert tr.request.kind == "write"
            assert tr.request.size == 128

    def test_zipf_head_tenant_dominates(self):
        counts = Counter(tr.tenant for tr in self._workload(skew=1.1))
        assert counts["t0"] > counts["t1"] > counts["t2"]

    def test_burst_phase_is_denser_than_day(self):
        # Day phase: hours 8..16; burst: 10 s after hour 16.
        hour = 2.0
        day_window, burst_window = (8 * hour, 16 * hour), (16 * hour,
                                                           16 * hour + 10.0)
        day = burst = 0
        for tr in self._workload():
            t = tr.request.arrival
            if day_window[0] <= t < day_window[1]:
                day += 1
            elif burst_window[0] <= t < burst_window[1]:
                burst += 1
        day_density = day / (day_window[1] - day_window[0])
        burst_density = burst / (burst_window[1] - burst_window[0])
        assert burst_density > 5 * day_density

    def test_multiple_days_repeat_the_cycle(self):
        one = max(tr.request.arrival for tr in self._workload())
        two = max(tr.request.arrival for tr in self._workload(days=2))
        assert one < 24 * 2.0 < two < 48 * 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._workload(tenants=())
        with pytest.raises(ValueError):
            self._workload(day_rate=0.0)
        with pytest.raises(ValueError):
            self._workload(days=0)
        with pytest.raises(ValueError):
            self._workload(users_per_tenant=0)
        with pytest.raises(ValueError):
            self._workload(hour_seconds=0.0)
