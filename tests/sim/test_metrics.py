"""Unit tests for metrics collection and table formatting."""

import math

import pytest

from repro.sim.metrics import (
    MetricsCollector,
    RequestSample,
    format_table,
    summarize_latencies,
)


def _sample(kind="write", arrival=0.0, start=None, finish=1.0, size=0):
    return RequestSample(kind=kind, arrival=arrival,
                         start=start if start is not None else arrival,
                         finish=finish, size=size)


class TestRequestSample:
    def test_latency_and_service(self):
        sample = RequestSample(kind="write", arrival=1.0, start=3.0, finish=7.0)
        assert sample.latency == 6.0
        assert sample.service_time == 4.0


class TestSummaries:
    def test_empty_is_nan(self):
        summary = summarize_latencies([])
        assert math.isnan(summary["mean"])

    def test_single_value(self):
        summary = summarize_latencies([5.0])
        assert summary["p50"] == 5.0
        assert summary["max"] == 5.0

    def test_percentiles_interpolate(self):
        summary = summarize_latencies([0.0, 10.0])
        assert summary["p50"] == pytest.approx(5.0)
        assert summary["mean"] == pytest.approx(5.0)

    def test_p99_near_max(self):
        values = list(range(100))
        summary = summarize_latencies([float(v) for v in values])
        assert summary["p99"] == pytest.approx(98.01)
        assert summary["max"] == 99.0


class TestMetricsCollector:
    def test_throughput_over_span(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.record(_sample(arrival=float(i), finish=float(i) + 0.5))
        # Span = 0 → 9.5; 10 requests.
        assert collector.throughput() == pytest.approx(10 / 9.5)

    def test_throughput_filtered_by_kind(self):
        collector = MetricsCollector()
        collector.record(_sample(kind="write", arrival=0.0, finish=1.0))
        collector.record(_sample(kind="read", arrival=0.0, finish=2.0))
        assert collector.count("write") == 1
        assert collector.count() == 2
        assert collector.throughput("write") == pytest.approx(1.0)

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.throughput() == 0.0
        assert collector.count() == 0

    def test_bytes_written(self):
        collector = MetricsCollector()
        collector.record(_sample(kind="write", size=100))
        collector.record(_sample(kind="read", size=999))
        collector.record(_sample(kind="write", size=50))
        assert collector.bytes_written() == 150

    def test_latency_summary_by_kind(self):
        collector = MetricsCollector()
        collector.record(_sample(kind="write", arrival=0.0, finish=4.0))
        collector.record(_sample(kind="read", arrival=0.0, finish=1.0))
        assert collector.latency_summary("write")["mean"] == pytest.approx(4.0)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["mode", "rate"],
                            [["strong", 424], ["weak", 2100]],
                            title="Figure 1")
        lines = text.splitlines()
        assert lines[0] == "Figure 1"
        assert "mode" in lines[1] and "rate" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_column_widths_fit_longest(self):
        text = format_table(["x"], [["very-long-cell-value"]])
        header, divider, row = text.splitlines()
        assert len(header) == len(row)
