"""Batched SCPU entry points: one crossing, results identical to singular.

The hot-path campaign's contract: ``*_batch`` calls amortize the
host↔card round trip (one :meth:`OpMeter.crossing` per batch) while
charging byte-identical per-item virtual costs, so calibration against
the paper's Table 2 is untouched — only the crossing count shrinks.
"""

import pytest

from repro import demo_keyring
from repro.faults.wrappers import FaultyScpu
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import SecureCoprocessor, Strength


@pytest.fixture
def pair():
    """Two cards on one keyring: batch on one, singular on the other."""
    keyring = demo_keyring()
    return (SecureCoprocessor(keyring=keyring),
            SecureCoprocessor(keyring=keyring))


class TestBatchEquivalence:
    def test_hash_batch_matches_singular(self, pair):
        batched, singular = pair
        chunk_lists = [[b"alpha", b"beta"], [b"gamma"], [b""]]
        digests = batched.hash_record_data_batch(chunk_lists)
        assert digests == [singular.hash_record_data(chunks)
                           for chunks in chunk_lists]
        assert batched.meter.crossings == 1
        assert singular.meter.crossings == len(chunk_lists)
        # Identical per-item charges: only the round-trip count differs.
        assert batched.meter.total_seconds == pytest.approx(
            singular.meter.total_seconds)
        assert batched.meter.bytes_crossed == singular.meter.bytes_crossed

    def test_issue_serial_numbers_consecutive_one_crossing(self):
        scpu = SecureCoprocessor(keyring=demo_keyring())
        first = scpu.issue_serial_number()
        before = scpu.meter.crossings
        sns = scpu.issue_serial_numbers(3)
        assert sns == [first + 1, first + 2, first + 3]
        assert scpu.current_serial_number == first + 3
        assert scpu.meter.crossings == before + 1

    def test_issue_serial_numbers_rejects_negative(self):
        scpu = SecureCoprocessor(keyring=demo_keyring())
        with pytest.raises(ValueError):
            scpu.issue_serial_numbers(-1)
        assert scpu.issue_serial_numbers(0) == []

    def test_witness_write_batch_matches_singular(self, pair):
        batched, singular = pair
        items = [(1, b"attr-one", b"h" * 20), (2, b"attr-two", b"g" * 20)]
        pairs = batched.witness_write_batch(items, strength=Strength.STRONG)
        assert batched.meter.crossings == 1
        for (sn, attr_bytes, data_hash), (metasig, datasig) in zip(items,
                                                                   pairs):
            lone_meta, lone_data = singular.witness_write(
                sn, attr_bytes, data_hash, strength=Strength.STRONG)
            assert metasig.signature == lone_meta.signature
            assert datasig.signature == lone_data.signature
        assert singular.meter.crossings == len(items)
        assert batched.meter.total_seconds == pytest.approx(
            singular.meter.total_seconds)

    def test_strengthen_batch_matches_singular(self, pair):
        batched, singular = pair
        weak = [batched.witness_write(sn, b"a", b"h" * 20,
                                      strength=Strength.WEAK)[0]
                for sn in (1, 2)]
        marks = (batched.meter.crossings, batched.meter.total_seconds)
        strong = batched.strengthen_batch(weak)
        assert batched.meter.crossings == marks[0] + 1
        lone = [singular.strengthen(signed) for signed in weak]
        assert [s.signature for s in strong] == [s.signature for s in lone]
        s_fp = batched.public_keys()["s"].fingerprint()
        assert all(s.key_fingerprint == s_fp for s in strong)

    def test_strengthen_batch_fails_fast(self, pair):
        batched, _ = pair
        import dataclasses
        good = batched.witness_write(1, b"a", b"h" * 20,
                                     strength=Strength.WEAK)[0]
        forged = dataclasses.replace(good,
                                     signature=b"\x00" * len(good.signature))
        with pytest.raises(ValueError):
            batched.strengthen_batch([good, forged])

    def test_verify_envelope_batch_matches_singular(self, pair):
        batched, singular = pair
        key = batched.public_keys()["s"]
        good = batched.witness_write(1, b"a", b"h" * 20,
                                     strength=Strength.STRONG)[0]
        import dataclasses
        bad = dataclasses.replace(good,
                                  signature=b"\x00" * len(good.signature))
        before = batched.meter.crossings
        results = batched.verify_envelope_batch([(good, key), (bad, key)])
        assert results == [True, False]
        assert batched.meter.crossings == before + 1
        assert results == [singular.verify_envelope(good, key),
                           singular.verify_envelope(bad, key)]


class TestBatchSurfacePropagation:
    """Wrappers and pools must forward the batched entry points."""

    def test_pool_serves_batches_from_worker_cards(self):
        pool = ScpuPool.build(2, keyring=demo_keyring())
        digests = pool.hash_record_data_batch([[b"a"], [b"b"]])
        assert len(digests) == 2
        assert sum(card.meter.crossings for card in pool.cards) == 1

    def test_pool_authority_issues_sn_batches(self):
        pool = ScpuPool.build(2, keyring=demo_keyring())
        assert pool.issue_serial_numbers(4) == [1, 2, 3, 4]
        assert pool.current_serial_number == 4

    def test_faulty_wrapper_forwards_batches(self):
        scpu = SecureCoprocessor(keyring=demo_keyring())
        wrapped = FaultyScpu(scpu)
        assert wrapped.hash_record_data_batch([[b"a"]]) \
            == [scpu.hash_record_data([b"a"])]
        # A real attribute (not __getattr__): the op is fault-gateable.
        assert "hash_record_data_batch" in type(wrapped).__dict__

    def test_fault_plans_on_singular_ops_gate_batches(self):
        """A plan written against ``strengthen`` must survive the call
        site converting to ``strengthen_batch`` — same card op."""
        from repro.core.errors import ScpuUnavailableError
        from repro.faults.plan import FaultPlan

        scpu = SecureCoprocessor(keyring=demo_keyring())
        weak = scpu.witness_write(1, b"a", b"h" * 20,
                                  strength=Strength.WEAK)[0]
        plan = FaultPlan().transient(op="strengthen", after_ops=1, count=9)
        wrapped = FaultyScpu(scpu, plan)
        with pytest.raises(ScpuUnavailableError):
            wrapped.strengthen_batch([weak])
        assert plan.injected["transient"] == 1

    def test_retrying_wrapper_forwards_batches(self, store):
        sns = store.scpu_rt.issue_serial_numbers(2)
        assert len(sns) == 2
        assert "strengthen_batch" in type(store.scpu_rt).__dict__
