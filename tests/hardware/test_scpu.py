"""Unit tests for the secure coprocessor device."""

import pytest

from repro import demo_keyring
from repro.crypto.envelope import Envelope, Purpose
from repro.crypto.keys import CertificateAuthority, SigningKey
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.hardware.tamper import TamperedError


@pytest.fixture
def scpu():
    return SecureCoprocessor(keyring=demo_keyring())


class TestSerialNumbers:
    def test_monotonic_consecutive(self, scpu):
        sns = [scpu.issue_serial_number() for _ in range(5)]
        assert sns == [1, 2, 3, 4, 5]
        assert scpu.current_serial_number == 5

    def test_initial_state(self, scpu):
        assert scpu.current_serial_number == 0
        assert scpu.sn_base == 1


class TestWitnessing:
    def test_witness_write_produces_both_signatures(self, scpu):
        sn = scpu.issue_serial_number()
        h = scpu.hash_record_data([b"data"])
        metasig, datasig = scpu.witness_write(sn, b"attrs", h)
        assert metasig.purpose == Purpose.METASIG
        assert datasig.purpose == Purpose.DATASIG
        assert metasig.field("sn") == sn
        assert datasig.field("data_hash") == h
        s_pub = scpu.public_keys()["s"]
        assert scpu.verify_envelope(metasig, s_pub)

    def test_weak_strength_uses_burst_key(self, scpu):
        sn = scpu.issue_serial_number()
        metasig, _ = scpu.witness_write(sn, b"a", b"h", strength=Strength.WEAK)
        assert metasig.key_fingerprint == scpu.public_keys()["burst"].fingerprint()

    def test_hmac_strength_not_rsa(self, scpu):
        sn = scpu.issue_serial_number()
        metasig, datasig = scpu.witness_write(sn, b"a", b"h",
                                              strength=Strength.HMAC)
        assert metasig.scheme == "hmac"
        assert scpu.verify_own_hmac(metasig)
        assert scpu.verify_own_hmac(datasig)

    def test_unknown_strength_rejected(self, scpu):
        with pytest.raises(ValueError):
            scpu.witness_write(1, b"a", b"h", strength="nonsense")

    def test_hash_matches_chained_hash(self, scpu):
        from repro.crypto.hashing import chained_hash
        assert scpu.hash_record_data([b"a", b"b"]) == chained_hash([b"a", b"b"])

    def test_hash_cost_scales_with_size(self, scpu):
        mark = scpu.meter.checkpoint()
        scpu.hash_record_data([b"x" * 1024])
        small = scpu.meter.delta(mark)
        mark = scpu.meter.checkpoint()
        scpu.hash_record_data([b"x" * (1024 * 1024)])
        large = scpu.meter.delta(mark)
        assert large > 100 * small

    def test_verify_deferred_hash(self, scpu):
        h = scpu.hash_record_data([b"payload"])
        assert scpu.verify_deferred_hash([b"payload"], h)
        assert not scpu.verify_deferred_hash([b"different"], h)


class TestStrengthening:
    def test_weak_to_strong(self, scpu):
        sn = scpu.issue_serial_number()
        _, datasig = scpu.witness_write(sn, b"a", b"h", strength=Strength.WEAK)
        strong = scpu.strengthen(datasig)
        assert strong.key_fingerprint == scpu.public_keys()["s"].fingerprint()
        assert strong.envelope.fields == datasig.envelope.fields

    def test_hmac_to_strong(self, scpu):
        sn = scpu.issue_serial_number()
        metasig, _ = scpu.witness_write(sn, b"a", b"h", strength=Strength.HMAC)
        strong = scpu.strengthen(metasig)
        assert strong.scheme == "rsa"

    def test_tampered_construct_not_laundered(self, scpu):
        import dataclasses
        sn = scpu.issue_serial_number()
        _, datasig = scpu.witness_write(sn, b"a", b"h", strength=Strength.WEAK)
        forged_env = Envelope(purpose=Purpose.DATASIG,
                              fields={"sn": sn, "data_hash": b"forged"},
                              timestamp=datasig.timestamp)
        forged = dataclasses.replace(datasig, envelope=forged_env)
        with pytest.raises(ValueError):
            scpu.strengthen(forged)

    def test_foreign_signature_not_strengthened(self, scpu):
        mallory = SigningKey.generate(512, role="burst")
        env = Envelope(purpose=Purpose.DATASIG, fields={"sn": 1}, timestamp=0.0)
        with pytest.raises(ValueError):
            scpu.strengthen(mallory.sign_envelope(env))

    def test_rotate_burst_key(self, scpu):
        old_fp = scpu.public_keys()["burst"].fingerprint()
        ca = CertificateAuthority(bits=512)
        cert = scpu.rotate_burst_key(ca, weak_bits=512)
        assert cert is not None and cert.role == "burst"
        assert scpu.public_keys()["burst"].fingerprint() != old_fp

    def test_retired_burst_constructs_refused(self, scpu):
        sn = scpu.issue_serial_number()
        _, datasig = scpu.witness_write(sn, b"a", b"h", strength=Strength.WEAK)
        scpu.rotate_burst_key(None, weak_bits=512)
        with pytest.raises(ValueError, match="retired"):
            scpu.strengthen(datasig)


class TestWindowEvidence:
    def _expire(self, scpu, sns):
        return {sn: scpu.make_deletion_proof(sn) for sn in sns}

    def test_advance_base_with_proofs(self, scpu):
        for _ in range(4):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 2, 3])
        envelope = scpu.advance_sn_base(4, proofs)
        assert scpu.sn_base == 4
        assert envelope.field("sn_base") == 4

    def test_advance_base_missing_proof_rejected(self, scpu):
        for _ in range(4):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 3])  # hole at 2
        with pytest.raises(ValueError, match="SN 2"):
            scpu.advance_sn_base(4, proofs)
        assert scpu.sn_base == 1

    def test_advance_base_forged_proof_rejected(self, scpu):
        scpu.issue_serial_number()
        scpu.issue_serial_number()
        mallory = SigningKey.generate(512, role="d")
        forged = mallory.sign_envelope(Envelope(
            purpose=Purpose.DELETION_PROOF, fields={"sn": 1}, timestamp=0.0))
        with pytest.raises(ValueError):
            scpu.advance_sn_base(2, {1: forged})

    def test_advance_base_cannot_pass_frontier(self, scpu):
        scpu.issue_serial_number()
        with pytest.raises(ValueError, match="frontier"):
            scpu.advance_sn_base(5, {})

    def test_advance_base_never_backwards(self, scpu):
        for _ in range(3):
            scpu.issue_serial_number()
        scpu.advance_sn_base(3, self._expire(scpu, [1, 2]))
        with pytest.raises(ValueError, match="only advance"):
            scpu.advance_sn_base(2, {})

    def test_advance_base_accepts_window_evidence(self, scpu):
        for _ in range(5):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 2, 3, 4])
        lower, upper = scpu.compact_deletion_window(1, 4, proofs)
        envelope = scpu.advance_sn_base(5, {}, windows=[(lower, upper)])
        assert envelope.field("sn_base") == 5

    def test_compact_window_requires_three(self, scpu):
        for _ in range(2):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 2])
        with pytest.raises(ValueError, match="at least 3"):
            scpu.compact_deletion_window(1, 2, proofs)

    def test_compact_window_requires_every_proof(self, scpu):
        for _ in range(4):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 2])  # missing 3
        with pytest.raises(ValueError, match="SN 3"):
            scpu.compact_deletion_window(1, 3, proofs)

    def test_compact_window_bounds_share_window_id(self, scpu):
        for _ in range(3):
            scpu.issue_serial_number()
        proofs = self._expire(scpu, [1, 2, 3])
        lower, upper = scpu.compact_deletion_window(1, 3, proofs)
        assert lower.field("window_id") == upper.field("window_id")
        assert lower.purpose == Purpose.WINDOW_LOWER
        assert upper.purpose == Purpose.WINDOW_UPPER


class TestCredentials:
    def test_valid_credential_accepted(self, scpu):
        regulator = SigningKey.generate(512, role="regulator")
        cred = regulator.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": 7}, timestamp=scpu.now))
        assert scpu.verify_regulator_credential(cred, regulator.public, 7)

    def test_wrong_sn_rejected(self, scpu):
        regulator = SigningKey.generate(512, role="regulator")
        cred = regulator.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": 7}, timestamp=scpu.now))
        assert not scpu.verify_regulator_credential(cred, regulator.public, 8)

    def test_stale_credential_rejected(self, scpu):
        regulator = SigningKey.generate(512, role="regulator")
        cred = regulator.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": 7}, timestamp=scpu.now))
        scpu.clock.advance(48 * 3600.0)
        assert not scpu.verify_regulator_credential(cred, regulator.public, 7)

    def test_wrong_purpose_rejected(self, scpu):
        regulator = SigningKey.generate(512, role="regulator")
        cred = regulator.sign_envelope(Envelope(
            purpose=Purpose.METASIG, fields={"sn": 7}, timestamp=scpu.now))
        assert not scpu.verify_regulator_credential(cred, regulator.public, 7)


class TestTamperResponse:
    def test_all_services_fail_after_trip(self, scpu):
        scpu.issue_serial_number()
        scpu.tamper.trip()
        with pytest.raises(TamperedError):
            scpu.issue_serial_number()
        with pytest.raises(TamperedError):
            scpu.hash_record_data([b"x"])
        with pytest.raises(TamperedError):
            scpu.witness_write(1, b"a", b"h")
        with pytest.raises(TamperedError):
            scpu.sign_sn_current(1)
        with pytest.raises(TamperedError):
            scpu.public_keys()

    def test_keys_destroyed(self, scpu):
        scpu.tamper.trip()
        assert scpu._keys is None

    def test_signatures_issued_before_trip_still_verify(self, scpu):
        sn = scpu.issue_serial_number()
        s_pub = scpu.public_keys()["s"]
        metasig, _ = scpu.witness_write(sn, b"a", b"h")
        scpu.tamper.trip()
        # Client-side verification is independent of the (dead) card.
        assert s_pub.verify(metasig.envelope.canonical_bytes(),
                            metasig.signature, hash_name=metasig.hash_name)


class TestAttestation:
    def test_attestation_reflects_state(self, scpu):
        for _ in range(3):
            scpu.issue_serial_number()
        attestation = scpu.attest()
        assert attestation.field("sn_counter") == 3
        assert attestation.field("sn_base") == 1
        assert attestation.field("epoch_id") == 1
        s_pub = scpu.public_keys()["s"]
        assert SecureCoprocessor.verify_attestation(attestation, s_pub)

    def test_monotonicity_check(self, scpu):
        s_pub = scpu.public_keys()["s"]
        first = scpu.attest()
        scpu.issue_serial_number()
        scpu.clock.advance(10.0)
        second = scpu.attest()
        assert SecureCoprocessor.verify_attestation(second, s_pub,
                                                    previous=first)
        # Presenting them reversed exposes the rollback.
        assert not SecureCoprocessor.verify_attestation(first, s_pub,
                                                        previous=second)

    def test_forged_attestation_rejected(self, scpu):
        from repro.crypto.keys import SigningKey
        mallory = SigningKey.generate(512, role="s")
        forged = mallory.sign_envelope(scpu.attest().envelope)
        assert not SecureCoprocessor.verify_attestation(
            forged, scpu.public_keys()["s"])

    def test_dead_card_cannot_attest(self, scpu):
        scpu.tamper.trip()
        with pytest.raises(TamperedError):
            scpu.attest()


class TestFreshnessConstructs:
    def test_sn_current_carries_timestamp(self, scpu):
        scpu.clock.advance(500.0)
        scpu.issue_serial_number()
        envelope = scpu.sign_sn_current(scpu.current_serial_number)
        assert envelope.timestamp == pytest.approx(500.0)
        assert envelope.field("sn_current") == 1

    def test_sn_base_carries_expiry(self, scpu):
        envelope = scpu.sign_sn_base(validity_seconds=100.0)
        assert int(envelope.field("expires_at_us")) == pytest.approx(
            (scpu.now + 100.0) * 1e6)
