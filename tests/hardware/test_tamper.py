"""Unit tests for the tamper-response state machine."""

import pytest

from repro.hardware.tamper import TamperedError, TamperResponder


class TestTamperResponder:
    def test_initially_armed(self):
        responder = TamperResponder()
        assert not responder.tripped
        responder.check()  # no raise

    def test_trip_runs_zeroizers(self):
        responder = TamperResponder()
        wiped = []
        responder.register_zeroizer(lambda: wiped.append("keys"))
        responder.register_zeroizer(lambda: wiped.append("counters"))
        responder.trip()
        assert wiped == ["keys", "counters"]

    def test_trip_is_idempotent(self):
        responder = TamperResponder()
        count = []
        responder.register_zeroizer(lambda: count.append(1))
        responder.trip()
        responder.trip()
        assert len(count) == 1
        assert responder.trip_count == 1

    def test_check_raises_after_trip(self):
        responder = TamperResponder()
        responder.trip()
        with pytest.raises(TamperedError):
            responder.check()
