"""Unit tests for the Table 2 calibration cost model."""

import pytest

from repro.hardware.calibration import (
    ENTERPRISE_DISK,
    HOST_P4_3_4GHZ,
    SCPU_IBM_4764,
)

_MB = 1024.0 * 1024.0


class TestRsaAnchors:
    def test_scpu_table2_rates_exact(self):
        assert SCPU_IBM_4764.rsa_sign_rate(512) == pytest.approx(4200.0)
        assert SCPU_IBM_4764.rsa_sign_rate(1024) == pytest.approx(848.0)
        assert SCPU_IBM_4764.rsa_sign_rate(2048) == pytest.approx(393.0)

    def test_host_table2_rates_exact(self):
        assert HOST_P4_3_4GHZ.rsa_sign_rate(512) == pytest.approx(1315.0)
        assert HOST_P4_3_4GHZ.rsa_sign_rate(1024) == pytest.approx(261.0)
        assert HOST_P4_3_4GHZ.rsa_sign_rate(2048) == pytest.approx(43.0)

    def test_scpu_faster_than_host_at_every_size(self):
        # The card has a hardware modular-exponentiation engine.
        for bits in (512, 768, 1024, 1536, 2048):
            assert (SCPU_IBM_4764.rsa_sign_seconds(bits)
                    < HOST_P4_3_4GHZ.rsa_sign_seconds(bits))

    def test_interpolation_monotone(self):
        times = [SCPU_IBM_4764.rsa_sign_seconds(b)
                 for b in (512, 640, 768, 896, 1024, 1536, 2048)]
        assert times == sorted(times)

    def test_cubic_extrapolation_above_anchors(self):
        t2048 = SCPU_IBM_4764.rsa_sign_seconds(2048)
        t4096 = SCPU_IBM_4764.rsa_sign_seconds(4096)
        assert t4096 == pytest.approx(t2048 * 8.0)

    def test_cubic_extrapolation_below_anchors(self):
        t512 = SCPU_IBM_4764.rsa_sign_seconds(512)
        t256 = SCPU_IBM_4764.rsa_sign_seconds(256)
        assert t256 == pytest.approx(t512 / 8.0)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            SCPU_IBM_4764.rsa_sign_seconds(0)

    def test_verify_much_faster_than_sign(self):
        for bits in (512, 1024, 2048):
            sign = SCPU_IBM_4764.rsa_sign_seconds(bits)
            verify = SCPU_IBM_4764.rsa_verify_seconds(bits)
            assert verify < sign / 10


class TestShaModel:
    def test_anchor_rates(self):
        assert SCPU_IBM_4764.sha_rate_mb_s(1024) == pytest.approx(1.42)
        assert SCPU_IBM_4764.sha_rate_mb_s(64 * 1024) == pytest.approx(18.6)

    def test_clamped_outside_anchors(self):
        assert SCPU_IBM_4764.sha_rate_mb_s(64) == pytest.approx(1.42)
        assert SCPU_IBM_4764.sha_rate_mb_s(1024 * 1024) == pytest.approx(18.6)

    def test_interpolated_between_anchors(self):
        mid = SCPU_IBM_4764.sha_rate_mb_s(8 * 1024)
        assert 1.42 < mid < 18.6

    def test_sha_seconds_scales_linearly(self):
        one = SCPU_IBM_4764.sha_seconds(_MB)
        two = SCPU_IBM_4764.sha_seconds(2 * _MB)
        assert two == pytest.approx(2 * one)

    def test_zero_bytes_pays_setup_floor(self):
        assert SCPU_IBM_4764.sha_seconds(0) > 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SCPU_IBM_4764.sha_seconds(-1)

    def test_host_sha_an_order_of_magnitude_faster(self):
        # 80-120 MB/s vs 1.42-18.6 MB/s — the §1 heat-dissipation gap.
        ratio = (HOST_P4_3_4GHZ.sha_rate_mb_s(64 * 1024)
                 / SCPU_IBM_4764.sha_rate_mb_s(64 * 1024))
        assert ratio > 5


class TestTransferAndDisk:
    def test_dma_rate_midpoint(self):
        # 75-90 MB/s end-to-end → 82.5 MB/s.
        assert SCPU_IBM_4764.dma_seconds(82.5 * _MB) == pytest.approx(1.0)

    def test_host_memcpy_speed(self):
        assert HOST_P4_3_4GHZ.dma_seconds(1024 * _MB) == pytest.approx(1.0)

    def test_disk_random_access_latency_matches_paper(self):
        # §5: "3-4ms+ latencies for individual block disk access".
        latency = ENTERPRISE_DISK.access_seconds(4096)
        assert 0.003 <= latency <= 0.008

    def test_disk_sequential_skips_positioning(self):
        random = ENTERPRISE_DISK.access_seconds(4096)
        sequential = ENTERPRISE_DISK.access_seconds(4096, sequential=True)
        assert sequential < random / 10

    def test_disk_rejects_negative(self):
        with pytest.raises(ValueError):
            ENTERPRISE_DISK.access_seconds(-1)
