"""Unit tests for operation metering and timed device adapters."""

import pytest

from repro.hardware.device import OpMeter, TimedDevice
from repro.sim.engine import Simulator


class TestOpMeter:
    def test_charge_accumulates(self):
        meter = OpMeter()
        meter.charge("a", 1.0)
        meter.charge("b", 2.5)
        assert meter.total_seconds == pytest.approx(3.5)
        assert meter.operation_count == 2

    def test_checkpoint_delta(self):
        meter = OpMeter()
        meter.charge("a", 1.0)
        mark = meter.checkpoint()
        meter.charge("b", 0.25)
        assert meter.delta(mark) == pytest.approx(0.25)

    def test_by_operation_groups(self):
        meter = OpMeter()
        meter.charge("sig", 1.0)
        meter.charge("sig", 1.0)
        meter.charge("sha", 0.5)
        grouped = meter.by_operation()
        assert grouped["sig"] == pytest.approx(2.0)
        assert grouped["sha"] == pytest.approx(0.5)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            OpMeter().charge("bad", -1.0)

    def test_reset(self):
        meter = OpMeter()
        meter.charge("a", 1.0)
        meter.reset()
        assert meter.total_seconds == 0.0
        assert meter.operation_count == 0


class TestTimedDevice:
    def test_serializes_on_capacity_one(self):
        sim = Simulator()
        device = TimedDevice(sim, "scpu", capacity=1)
        finish_times = []

        def user():
            yield from device.use(2.0)
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert finish_times == [2.0, 4.0, 6.0]

    def test_parallel_with_capacity(self):
        sim = Simulator()
        device = TimedDevice(sim, "scpu", capacity=3)
        finish_times = []

        def user():
            yield from device.use(2.0)
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert finish_times == [2.0, 2.0, 2.0]

    def test_zero_cost_bypasses_queue(self):
        sim = Simulator()
        device = TimedDevice(sim, "disk", capacity=1)
        order = []

        def blocker():
            yield from device.use(10.0)
            order.append("blocker")

        def free_rider():
            yield sim.timeout(1.0)
            yield from device.use(0.0)  # must not wait for the blocker
            order.append("rider")

        sim.process(blocker())
        sim.process(free_rider())
        sim.run()
        assert order == ["rider", "blocker"]

    def test_negative_cost_rejected(self):
        sim = Simulator()
        device = TimedDevice(sim, "x")
        with pytest.raises(ValueError):
            list(device.use(-1.0))

    def test_utilization(self):
        sim = Simulator()
        device = TimedDevice(sim, "scpu", capacity=1)

        def user():
            yield from device.use(3.0)

        sim.process(user())
        sim.run(until=6.0)
        assert device.utilization(6.0) == pytest.approx(0.5)
