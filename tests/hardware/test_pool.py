"""Tests for multi-SCPU pools."""

import pytest

from repro import demo_keyring
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.hardware.tamper import TamperedError
from repro.sim.manual_clock import ManualClock


@pytest.fixture
def pool():
    clock = ManualClock()
    return ScpuPool.build(3, keyring=demo_keyring(), clock=clock)


class TestPoolBasics:
    def test_build_shares_keys(self, pool):
        fps = {card.public_keys()["s"].fingerprint() for card in pool.cards}
        assert len(fps) == 1
        assert pool.size == 3

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ScpuPool([])

    def test_mismatched_keyrings_rejected(self):
        a = SecureCoprocessor(keyring=demo_keyring())
        b = SecureCoprocessor(keyring=demo_keyring())
        with pytest.raises(ValueError, match="share"):
            ScpuPool([a, b])

    def test_serial_numbers_single_authority(self, pool):
        sns = [pool.issue_serial_number() for _ in range(5)]
        assert sns == [1, 2, 3, 4, 5]
        # Only card 0 holds the counter.
        assert pool.cards[0].current_serial_number == 5
        assert pool.cards[1]._sn_counter == 0

    def test_work_round_robins(self, pool):
        for _ in range(6):
            sn = pool.issue_serial_number()
            pool.witness_write(sn, b"a", b"h", strength=Strength.STRONG)
        costs = pool.per_card_cost_seconds()
        # Signing spread across all three cards.
        assert all(cost > 0 for cost in costs)
        assert max(costs) < 3 * min(costs)

    def test_any_cards_signature_verifies(self, pool):
        sn = pool.issue_serial_number()
        metasig, _ = pool.witness_write(sn, b"a", b"h")
        s_pub = pool.public_keys()["s"]
        assert pool.verify_envelope(metasig, s_pub)


class TestPoolResilience:
    def test_survives_card_loss(self, pool):
        pool.cards[1].tamper.trip()
        sn = pool.issue_serial_number()
        metasig, datasig = pool.witness_write(sn, b"a", b"h")
        assert metasig is not None
        assert pool.tampered_cards == [1]

    def test_authority_failover(self, pool):
        pool.issue_serial_number()
        pool.cards[0].tamper.trip()
        # The SN counter died with card 0 — the paper's single-authority
        # model restarts allocation from the surviving card's counter,
        # which is why deployments mirror the counter; here we just
        # assert the pool stays alive for witnessing.
        sn = pool.issue_serial_number()
        assert sn >= 1
        assert pool.tampered_cards == [0]

    def test_all_cards_dead(self, pool):
        for card in pool.cards:
            card.tamper.trip()
        with pytest.raises(TamperedError):
            pool.issue_serial_number()

    def test_burst_rotation_retires_everywhere(self, pool):
        old_fp = pool.public_keys()["burst"].fingerprint()
        pool.rotate_burst_key(None, weak_bits=512)
        for card in pool.cards:
            assert old_fp in card._retired_burst_fingerprints

    def test_burst_rotation_resolves_authority_once(self, pool):
        # Regression: rotate_burst_key used to call _authority() three
        # times; a tamper trip between the calls could split the rotation
        # steps across two different cards.  It must pin one card.
        calls = []
        original = pool._authority

        def counting_authority():
            calls.append(1)
            return original()

        pool._authority = counting_authority
        pool.rotate_burst_key(None, weak_bits=512)
        assert len(calls) == 1


class TestPoolBackedStore:
    def test_store_runs_on_a_pool(self, pool, ca):
        store = StrongWormStore(scpu=pool)
        client = store.make_client(ca)
        receipt = store.write([b"pooled record"], policy="sox",
                              strength=Strength.WEAK)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        store.maintenance()
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert not verified.weakly_signed

    def test_pool_spreads_store_load(self, pool):
        store = StrongWormStore(scpu=pool)
        for i in range(9):
            store.write([bytes([i])], policy="sox")
        costs = pool.per_card_cost_seconds()
        assert all(cost > 0 for cost in costs)

    def test_full_lifecycle_on_pool(self, pool, ca):
        store = StrongWormStore(scpu=pool)
        client = store.make_client(ca)
        brief = store.write([b"brief"], retention_seconds=5.0)
        keeper = store.write([b"keeper"], policy="ferpa")
        pool.clock.advance(10.0)
        store.maintenance()
        assert client.verify_read(store.read(brief.sn),
                                  brief.sn).status == "deleted"
        assert client.verify_read(store.read(keeper.sn),
                                  keeper.sn).status == "active"
