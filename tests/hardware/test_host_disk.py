"""Unit tests for the host CPU and disk device cost models."""

import pytest

from repro.hardware.disk import DiskDevice
from repro.hardware.host import HostCPU


class TestHostCPU:
    def test_hash_matches_scpu_functionally(self):
        from repro import demo_keyring
        from repro.hardware.scpu import SecureCoprocessor
        host = HostCPU()
        scpu = SecureCoprocessor(keyring=demo_keyring())
        chunks = [b"alpha", b"beta" * 100]
        assert host.hash_record_data(chunks) == scpu.hash_record_data(chunks)

    def test_host_hashing_much_cheaper_than_card(self):
        from repro import demo_keyring
        from repro.hardware.scpu import SecureCoprocessor
        host = HostCPU()
        scpu = SecureCoprocessor(keyring=demo_keyring())
        data = [b"x" * (256 * 1024)]
        host.hash_record_data(data)
        scpu.hash_record_data(data)
        host_cost = host.meter.by_operation()["sha"]
        scpu_cost = scpu.meter.by_operation()["sha"]
        assert scpu_cost > 5 * host_cost

    def test_table_touch_scales_with_entries(self):
        host = HostCPU()
        host.table_touch(10)
        assert host.meter.by_operation()["vrdt"] == pytest.approx(5e-5)

    def test_table_touch_rejects_negative(self):
        with pytest.raises(ValueError):
            HostCPU().table_touch(-1)

    def test_verify_cost_charged_by_bits(self):
        host = HostCPU()
        host.verify_signature_cost(512)
        host.verify_signature_cost(1024)
        ops = host.meter.by_operation()
        assert "rsa_verify_512" in ops and "rsa_verify_1024" in ops
        assert ops["rsa_verify_1024"] > ops["rsa_verify_512"]

    def test_memcpy_linear(self):
        host = HostCPU()
        host.memcpy_cost(1024 * 1024)
        one_mb = host.meter.total_seconds
        host.memcpy_cost(2 * 1024 * 1024)
        assert host.meter.total_seconds == pytest.approx(3 * one_mb)


class TestDiskDevice:
    def test_read_write_metered_separately(self):
        disk = DiskDevice()
        disk.write(4096)
        disk.read(4096)
        ops = disk.meter.by_operation()
        assert set(ops) == {"disk_write", "disk_read"}

    def test_random_access_pays_positioning(self):
        disk = DiskDevice()
        random_cost = disk.read(4096, sequential=False)
        sequential_cost = disk.read(4096, sequential=True)
        assert random_cost > 50 * sequential_cost

    def test_cost_returned_matches_meter(self):
        disk = DiskDevice()
        cost = disk.write(8192)
        assert disk.meter.total_seconds == pytest.approx(cost)

    def test_paper_latency_band(self):
        """§5: '3-4ms+ latencies for individual block disk access'."""
        disk = DiskDevice()
        assert disk.read(4096) >= 0.003
