"""Unit tests for the CCA verb facade."""

import pytest

from repro import demo_keyring
from repro.hardware.cca import CcaFacade
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.hardware.tamper import TamperedError


@pytest.fixture
def cca():
    return CcaFacade(SecureCoprocessor(keyring=demo_keyring()))


class TestCcaFacade:
    def test_rng_returns_requested_bytes(self, cca):
        assert len(cca.csnbrng(16)) == 16
        assert cca.csnbrng(16) != cca.csnbrng(16)

    def test_rng_limits(self, cca):
        with pytest.raises(ValueError):
            cca.csnbrng(0)
        with pytest.raises(ValueError):
            cca.csnbrng(10000)

    def test_hash_matches_scpu(self, cca):
        assert cca.csnbowh([b"a", b"b"]) == cca._scpu.hash_record_data([b"a", b"b"])

    def test_sign_and_verify_roundtrip(self, cca):
        sn = cca._scpu.issue_serial_number()
        h = cca.csnbowh([b"payload"])
        metasig, datasig = cca.csnddsg(sn, b"attrs", h, strength=Strength.STRONG)
        s_pub = cca._scpu.public_keys()["s"]
        assert cca.csnddsv(metasig, s_pub)
        assert cca.csnddsv(datasig, s_pub)

    def test_clock_read(self, cca):
        cca._scpu.clock.advance(42.0)
        assert cca.csnbctt() == pytest.approx(42.0)

    def test_all_verbs_gated_by_tamper(self, cca):
        cca._scpu.tamper.trip()
        with pytest.raises(TamperedError):
            cca.csnbrng()
        with pytest.raises(TamperedError):
            cca.csnbowh([b"x"])
        with pytest.raises(TamperedError):
            cca.csnbctt()
