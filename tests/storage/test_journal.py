"""Tests for the group-commit intent journal (crash durability)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import JournalError
from repro.storage.journal import (
    FileIntentJournal,
    MemoryIntentJournal,
    JournalEntry,
)


@pytest.fixture(params=["memory", "file"])
def journal(request, tmp_path):
    if request.param == "memory":
        return MemoryIntentJournal()
    return FileIntentJournal(tmp_path / "intent.jsonl")


class TestJournalContract:
    def test_append_replay_roundtrip(self, journal):
        a = journal.append(b"alpha", {"policy": "sox"})
        b = journal.append(b"beta", {})
        entries = journal.replay()
        assert [e.entry_id for e in entries] == [a, b]
        assert entries[0].payload == b"alpha"
        assert entries[0].kwargs == {"policy": "sox"}
        assert journal.pending_count() == 2

    def test_mark_committed_removes_entries(self, journal):
        a = journal.append(b"alpha", {})
        b = journal.append(b"beta", {})
        journal.mark_committed([a])
        entries = journal.replay()
        assert [e.entry_id for e in entries] == [b]
        assert journal.pending_count() == 1

    def test_replay_preserves_submission_order(self, journal):
        ids = [journal.append(b"p%d" % i, {}) for i in range(5)]
        journal.mark_committed([ids[1], ids[3]])
        assert [e.entry_id for e in journal.replay()] == [
            ids[0], ids[2], ids[4]]

    def test_non_json_kwargs_rejected(self, journal):
        with pytest.raises(JournalError):
            journal.append(b"x", {"bad": object()})


class TestFileJournal:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        first = FileIntentJournal(path)
        a = first.append(b"alpha", {})
        first.append(b"beta", {})
        first.mark_committed([a])
        reopened = FileIntentJournal(path)
        entries = reopened.replay()
        assert len(entries) == 1
        assert entries[0].payload == b"beta"

    def test_ids_never_reused_after_reopen(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        first = FileIntentJournal(path)
        a = first.append(b"alpha", {})
        first.mark_committed([a])  # journal now drains to empty
        reopened = FileIntentJournal(path)
        b = reopened.append(b"beta", {})
        assert b > a  # committed ids stay burned

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        journal.append(b"alpha", {})
        with open(path, "a") as handle:
            handle.write('{"op": "submit", "id": 2, "payl')  # crash mid-append
        recovered = FileIntentJournal(path)
        assert [e.payload for e in recovered.replay()] == [b"alpha"]

    def test_garbage_mid_file_raises(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        journal.append(b"alpha", {})
        content = path.read_text()
        path.write_text("GARBAGE\n" + content)
        with pytest.raises(JournalError):
            FileIntentJournal(path)

    def test_compact_keeps_only_live_entries(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        ids = [journal.append(b"p%d" % i, {}) for i in range(4)]
        journal.mark_committed(ids[:3])
        kept = journal.compact()
        assert kept == 1
        lines = [json.loads(line) for line in
                 path.read_text().splitlines() if line.strip()]
        assert len(lines) == 1
        assert lines[0]["id"] == ids[3]
        # Still replayable after compaction.
        assert FileIntentJournal(path).pending_count() == 1

    def test_entry_is_frozen_value(self):
        entry = JournalEntry(entry_id=1, payload=b"x", kwargs={})
        with pytest.raises(AttributeError):
            entry.payload = b"y"
