"""Tests for the group-commit intent journal (crash durability)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import JournalError
from repro.storage.journal import (
    FileIntentJournal,
    MemoryIntentJournal,
    JournalEntry,
)


@pytest.fixture(params=["memory", "file"])
def journal(request, tmp_path):
    if request.param == "memory":
        return MemoryIntentJournal()
    return FileIntentJournal(tmp_path / "intent.jsonl")


class TestJournalContract:
    def test_append_replay_roundtrip(self, journal):
        a = journal.append(b"alpha", {"policy": "sox"})
        b = journal.append(b"beta", {})
        entries = journal.replay()
        assert [e.entry_id for e in entries] == [a, b]
        assert entries[0].payload == b"alpha"
        assert entries[0].kwargs == {"policy": "sox"}
        assert journal.pending_count() == 2

    def test_mark_committed_removes_entries(self, journal):
        a = journal.append(b"alpha", {})
        b = journal.append(b"beta", {})
        journal.mark_committed([a])
        entries = journal.replay()
        assert [e.entry_id for e in entries] == [b]
        assert journal.pending_count() == 1

    def test_replay_preserves_submission_order(self, journal):
        ids = [journal.append(b"p%d" % i, {}) for i in range(5)]
        journal.mark_committed([ids[1], ids[3]])
        assert [e.entry_id for e in journal.replay()] == [
            ids[0], ids[2], ids[4]]

    def test_non_json_kwargs_rejected(self, journal):
        with pytest.raises(JournalError):
            journal.append(b"x", {"bad": object()})


class TestFileJournal:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        first = FileIntentJournal(path)
        a = first.append(b"alpha", {})
        first.append(b"beta", {})
        first.mark_committed([a])
        reopened = FileIntentJournal(path)
        entries = reopened.replay()
        assert len(entries) == 1
        assert entries[0].payload == b"beta"

    def test_ids_never_reused_after_reopen(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        first = FileIntentJournal(path)
        a = first.append(b"alpha", {})
        first.mark_committed([a])  # journal now drains to empty
        reopened = FileIntentJournal(path)
        b = reopened.append(b"beta", {})
        assert b > a  # committed ids stay burned

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        journal.append(b"alpha", {})
        with open(path, "a") as handle:
            handle.write('{"op": "submit", "id": 2, "payl')  # crash mid-append
        recovered = FileIntentJournal(path)
        assert [e.payload for e in recovered.replay()] == [b"alpha"]

    def test_garbage_mid_file_raises(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        journal.append(b"alpha", {})
        content = path.read_text()
        path.write_text("GARBAGE\n" + content)
        with pytest.raises(JournalError):
            FileIntentJournal(path)

    def test_compact_keeps_only_live_entries(self, tmp_path):
        path = tmp_path / "intent.jsonl"
        journal = FileIntentJournal(path)
        ids = [journal.append(b"p%d" % i, {}) for i in range(4)]
        journal.mark_committed(ids[:3])
        kept = journal.compact()
        assert kept == 1
        lines = [json.loads(line) for line in
                 path.read_text().splitlines() if line.strip()]
        assert len(lines) == 1
        assert lines[0]["id"] == ids[3]
        # Still replayable after compaction.
        assert FileIntentJournal(path).pending_count() == 1

    def test_entry_is_frozen_value(self):
        entry = JournalEntry(entry_id=1, payload=b"x", kwargs={})
        with pytest.raises(AttributeError):
            entry.payload = b"y"


class TestTornFinalSegment:
    """Crash-truncation of the *last* segment must never lose earlier
    acknowledged state, and must never be mistaken for tampering."""

    def _journal_with_history(self, path):
        journal = FileIntentJournal(path)
        a = journal.append(b"alpha", {"policy": "sox"},
                           tag=("acme", "t-1"))
        b = journal.append(b"beta", {})
        journal.mark_committed([a], locators=["0:1:0"])
        return journal, a, b

    def test_truncated_mid_byte_keeps_prior_entries(self, tmp_path):
        """Simulate the disk persisting only a prefix of the final
        append (torn write at an arbitrary byte offset)."""
        path = tmp_path / "intent.jsonl"
        journal, a, b = self._journal_with_history(path)
        journal.append(b"gamma", {})
        raw = path.read_bytes()
        # Chop the final line at every offset within it; each prefix
        # must recover exactly the pre-crash acknowledged state.
        tail_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(tail_start + 1, len(raw) - 1):
            path.write_bytes(raw[:cut])
            recovered = FileIntentJournal(path)
            assert [e.payload for e in recovered.replay()] == [b"beta"]

    def test_torn_commit_line_replays_entry(self, tmp_path):
        """A crash mid-``mark_committed`` leaves the entry pending —
        at-least-once: replaying a committed write beats losing one."""
        path = tmp_path / "intent.jsonl"
        journal, a, b = self._journal_with_history(path)
        with open(path, "a") as handle:
            handle.write('{"op": "commit", "ids": [%d], "loc' % b)
        recovered = FileIntentJournal(path)
        assert [e.entry_id for e in recovered.replay()] == [b]
        ledger = {e.entry_id: e for e in recovered.ledger()}
        assert ledger[a].committed and ledger[a].locator == "0:1:0"
        assert not ledger[b].committed

    def test_torn_tail_preserves_tags_and_ledger(self, tmp_path):
        """Tags (tuple form restored from JSON lists) and commit
        locators survive a torn tail intact."""
        path = tmp_path / "intent.jsonl"
        journal, a, b = self._journal_with_history(path)
        with open(path, "ab") as handle:
            handle.write(b'{"op": "submit", "id": 3, "payload": "de')
        recovered = FileIntentJournal(path)
        entries = recovered.replay()
        assert [e.entry_id for e in entries] == [b]
        ledger = recovered.ledger()
        assert ledger[0].tag == ("acme", "t-1")  # tuple, not list
        assert ledger[0].committed
        assert ledger[0].locator == "0:1:0"

    def test_ids_not_reused_after_truncation(self, tmp_path):
        """The torn entry's id stays burned: a fresh append after
        recovery must not collide with the lost intent."""
        path = tmp_path / "intent.jsonl"
        journal, a, b = self._journal_with_history(path)
        c = journal.append(b"gamma", {})
        raw = path.read_bytes()
        tail_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        path.write_bytes(raw[:tail_start + 20])  # torn "gamma" submit
        recovered = FileIntentJournal(path)
        d = recovered.append(b"delta", {})
        assert d > b  # never reuses a surviving id
        assert recovered.pending_count() == 2  # beta + delta

    def test_empty_final_line_is_clean(self, tmp_path):
        """A crash right after the newline (zero bytes of the next
        record) is indistinguishable from a clean shutdown."""
        path = tmp_path / "intent.jsonl"
        journal, a, b = self._journal_with_history(path)
        with open(path, "a") as handle:
            handle.write("\n")
        recovered = FileIntentJournal(path)
        assert [e.entry_id for e in recovered.replay()] == [b]
