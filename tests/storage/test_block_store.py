"""Unit tests for the untrusted block stores (memory and directory)."""

import pytest

from repro.storage.block_store import (
    DirectoryBlockStore,
    MemoryBlockStore,
    MissingRecordError,
)


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryBlockStore()
    return DirectoryBlockStore(tmp_path / "blocks")


class TestBlockStoreContract:
    def test_put_get_roundtrip(self, store):
        key = store.put(b"payload")
        assert store.get(key) == b"payload"
        assert key in store
        assert store.size_of(key) == 7

    def test_keys_are_unique(self, store):
        keys = {store.put(b"x") for _ in range(50)}
        assert len(keys) == 50

    def test_get_missing_raises(self, store):
        with pytest.raises(MissingRecordError):
            store.get("rec-000000000000-deadbeef")

    def test_overwrite(self, store):
        key = store.put(b"original")
        store.overwrite(key, b"shredded")
        assert store.get(key) == b"shredded"

    def test_overwrite_missing_raises(self, store):
        with pytest.raises(MissingRecordError):
            store.overwrite("rec-000000000000-deadbeef", b"x")

    def test_delete(self, store):
        key = store.put(b"gone")
        store.delete(key)
        assert key not in store
        with pytest.raises(MissingRecordError):
            store.get(key)

    def test_delete_missing_raises(self, store):
        with pytest.raises(MissingRecordError):
            store.delete("rec-000000000000-deadbeef")

    def test_keys_iteration(self, store):
        expected = {store.put(bytes([i])) for i in range(5)}
        assert set(store.keys()) == expected

    def test_empty_payload(self, store):
        key = store.put(b"")
        assert store.get(key) == b""
        assert store.size_of(key) == 0

    def test_unchecked_overwrite_is_silent(self, store):
        key = store.put(b"history")
        store.unchecked_overwrite(key, b"rewrite")
        assert store.get(key) == b"rewrite"


class TestDirectoryStoreSpecifics:
    def test_survives_reopen(self, tmp_path):
        root = tmp_path / "persist"
        store = DirectoryBlockStore(root)
        key = store.put(b"durable")
        reopened = DirectoryBlockStore(root)
        assert reopened.get(key) == b"durable"

    def test_counter_resumes_without_collisions(self, tmp_path):
        root = tmp_path / "resume"
        first = DirectoryBlockStore(root)
        old_keys = {first.put(b"a") for _ in range(3)}
        reopened = DirectoryBlockStore(root)
        new_key = reopened.put(b"b")
        assert new_key not in old_keys

    def test_path_traversal_rejected(self, tmp_path):
        store = DirectoryBlockStore(tmp_path / "jail")
        for hostile in ("../escape", "a/b", ".hidden", "..\\win"):
            with pytest.raises(ValueError):
                store.get(hostile)

    def test_deleted_file_removed_from_disk(self, tmp_path):
        root = tmp_path / "gone"
        store = DirectoryBlockStore(root)
        key = store.put(b"temporary")
        store.delete(key)
        assert not (root / key).exists()
