"""Unit tests for record descriptors and WORM attributes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.record import RecordAttributes, RecordDescriptor


class TestRecordDescriptor:
    def test_canonical_bytes_distinct(self):
        a = RecordDescriptor(key="rec-1", length=10)
        b = RecordDescriptor(key="rec-2", length=10)
        c = RecordDescriptor(key="rec-1", length=11)
        assert a.canonical_bytes() != b.canonical_bytes()
        assert a.canonical_bytes() != c.canonical_bytes()

    def test_frozen(self):
        rd = RecordDescriptor(key="k", length=1)
        with pytest.raises(AttributeError):
            rd.key = "other"


class TestRecordAttributes:
    def _attr(self, **kw):
        defaults = dict(created_at=100.0, retention_seconds=1000.0)
        defaults.update(kw)
        return RecordAttributes(**defaults)

    def test_expires_at(self):
        assert self._attr().expires_at == 1100.0

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            self._attr(retention_seconds=-1.0)

    def test_negative_creation_rejected(self):
        with pytest.raises(ValueError):
            self._attr(created_at=-5.0)

    def test_deletable_only_after_expiry(self):
        attr = self._attr()
        assert not attr.deletable_at(1099.0)
        assert attr.deletable_at(1100.0)

    def test_litigation_hold_blocks_deletion(self):
        attr = self._attr().with_hold(timeout=5000.0, credential_hash=b"c")
        assert not attr.deletable_at(1100.0)
        assert not attr.deletable_at(4999.0)
        assert attr.deletable_at(5000.0)  # hold lapsed

    def test_release_restores_deletability(self):
        held = self._attr().with_hold(timeout=5000.0, credential_hash=b"c")
        released = held.with_release()
        assert released.deletable_at(1100.0)
        assert not released.litigation_hold
        assert released.litigation_credential_hash == b""

    def test_hold_does_not_shorten_retention(self):
        attr = self._attr().with_hold(timeout=500.0, credential_hash=b"c")
        # Hold timeout before retention expiry: retention still governs.
        assert not attr.deletable_at(1000.0)

    def test_canonical_bytes_deterministic(self):
        assert self._attr().canonical_bytes() == self._attr().canonical_bytes()

    @pytest.mark.parametrize("change", [
        {"created_at": 101.0},
        {"retention_seconds": 1001.0},
        {"policy": "hipaa"},
        {"shredding_algorithm": "random-7pass"},
        {"f_flag": 1},
        {"mac_label": "secret"},
        {"dac_owner": "alice"},
    ])
    def test_every_field_is_bound(self, change):
        assert (self._attr().canonical_bytes()
                != self._attr(**change).canonical_bytes())

    def test_hold_changes_canonical_bytes(self):
        attr = self._attr()
        held = attr.with_hold(timeout=9000.0, credential_hash=b"cred")
        assert attr.canonical_bytes() != held.canonical_bytes()

    def test_string_field_boundaries_unambiguous(self):
        a = self._attr(policy="ab", shredding_algorithm="c")
        b = self._attr(policy="a", shredding_algorithm="bc")
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_serialization_roundtrip(self):
        attr = self._attr(policy="sox", mac_label="m").with_hold(
            timeout=777.0, credential_hash=b"\x01\x02")
        restored = RecordAttributes.from_dict(attr.to_dict())
        assert restored == attr
        assert restored.canonical_bytes() == attr.canonical_bytes()

    @given(st.floats(min_value=0, max_value=1e9),
           st.floats(min_value=0, max_value=1e9))
    @settings(max_examples=50)
    def test_deletable_never_before_expiry(self, created, retention):
        attr = RecordAttributes(created_at=created,
                                retention_seconds=retention)
        assert not attr.deletable_at(attr.expires_at - 1e-3)
