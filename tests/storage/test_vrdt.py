"""Unit tests for the VRD table and deletion windows."""

import pytest

from repro import demo_keyring
from repro.hardware.scpu import SecureCoprocessor
from repro.storage.record import RecordAttributes, RecordDescriptor
from repro.storage.vrd import VirtualRecordDescriptor
from repro.storage.vrdt import DeletionWindow, VrdTable


@pytest.fixture(scope="module")
def scpu():
    return SecureCoprocessor(keyring=demo_keyring())


def make_vrd(scpu, sn=None, payload=b"data"):
    if sn is None:
        sn = scpu.issue_serial_number()
    attr = RecordAttributes(created_at=scpu.now, retention_seconds=1000.0)
    data_hash = scpu.hash_record_data([payload])
    metasig, datasig = scpu.witness_write(sn, attr.canonical_bytes(), data_hash)
    return VirtualRecordDescriptor(
        sn=sn, attr=attr,
        rdl=(RecordDescriptor(key=f"rec-{sn}", length=len(payload)),),
        metasig=metasig, datasig=datasig, data_hash=data_hash)


class TestEntryManagement:
    def test_insert_and_lookup(self, scpu):
        table = VrdTable()
        vrd = make_vrd(scpu)
        table.insert_active(vrd)
        assert table.get_active(vrd.sn) is vrd
        assert table.is_active(vrd.sn)
        assert table.entry_count() == 1

    def test_duplicate_sn_rejected(self, scpu):
        table = VrdTable()
        vrd = make_vrd(scpu)
        table.insert_active(vrd)
        with pytest.raises(ValueError):
            table.insert_active(vrd)

    def test_mark_expired_swaps_entry(self, scpu):
        table = VrdTable()
        vrd = make_vrd(scpu)
        table.insert_active(vrd)
        proof = scpu.make_deletion_proof(vrd.sn)
        table.mark_expired(vrd.sn, proof)
        assert table.get_active(vrd.sn) is None
        assert table.get_deletion_proof(vrd.sn) is proof
        assert table.entry_count() == 1
        assert table.proof_count() == 1

    def test_mark_expired_requires_active(self, scpu):
        table = VrdTable()
        with pytest.raises(KeyError):
            table.mark_expired(99, scpu.make_deletion_proof(99))

    def test_replace_active_requires_presence(self, scpu):
        table = VrdTable()
        with pytest.raises(KeyError):
            table.replace_active(make_vrd(scpu))

    def test_lowest_active_sn(self, scpu):
        table = VrdTable()
        assert table.lowest_active_sn is None
        vrds = [make_vrd(scpu) for _ in range(3)]
        for vrd in vrds:
            table.insert_active(vrd)
        assert table.lowest_active_sn == vrds[0].sn
        table.mark_expired(vrds[0].sn, scpu.make_deletion_proof(vrds[0].sn))
        assert table.lowest_active_sn == vrds[1].sn


class TestExpiredRuns:
    def _table_with_proofs(self, scpu, sns):
        table = VrdTable()
        for sn in sns:
            vrd = make_vrd(scpu, sn=sn)
            table.insert_active(vrd)
            table.mark_expired(sn, scpu.make_deletion_proof(sn))
        return table

    def test_single_long_run(self, scpu):
        base = scpu.current_serial_number + 100
        table = self._table_with_proofs(scpu, range(base, base + 5))
        assert table.contiguous_expired_runs() == [(base, base + 4)]

    def test_short_runs_ignored(self, scpu):
        base = scpu.current_serial_number + 200
        table = self._table_with_proofs(scpu, [base, base + 1, base + 3])
        assert table.contiguous_expired_runs(minimum=3) == []

    def test_multiple_runs_with_gaps(self, scpu):
        base = scpu.current_serial_number + 300
        sns = list(range(base, base + 3)) + list(range(base + 10, base + 14))
        table = self._table_with_proofs(scpu, sns)
        assert table.contiguous_expired_runs() == [
            (base, base + 2), (base + 10, base + 13)]

    def test_empty_table_no_runs(self):
        assert VrdTable().contiguous_expired_runs() == []

    def test_threshold_respected(self, scpu):
        base = scpu.current_serial_number + 400
        table = self._table_with_proofs(scpu, range(base, base + 4))
        assert table.contiguous_expired_runs(minimum=5) == []
        assert table.contiguous_expired_runs(minimum=4) == [(base, base + 3)]


class TestDeletionWindows:
    def test_window_covering(self, scpu):
        lower, upper = scpu._sign_deletion_window(10, 20)
        window = DeletionWindow(lower, upper)
        table = VrdTable()
        table.deletion_windows.append(window)
        assert table.window_covering(10) is window
        assert table.window_covering(20) is window
        assert table.window_covering(15) is window
        assert table.window_covering(9) is None
        assert table.window_covering(21) is None

    def test_window_properties(self, scpu):
        lower, upper = scpu._sign_deletion_window(5, 8)
        window = DeletionWindow(lower, upper)
        assert window.low_sn == 5
        assert window.high_sn == 8
        assert window.window_id == lower.field("window_id")


class TestStorageAccounting:
    def test_compaction_reduces_footprint(self, scpu):
        table = VrdTable()
        base = scpu.current_serial_number + 500
        proofs = {}
        for sn in range(base, base + 10):
            table.insert_active(make_vrd(scpu, sn=sn))
            proof = scpu.make_deletion_proof(sn)
            table.mark_expired(sn, proof)
            proofs[sn] = proof
        before = table.estimated_bytes()
        lower, upper = scpu.compact_deletion_window(base, base + 9, proofs)
        table.deletion_windows.append(DeletionWindow(lower, upper))
        table.drop_proofs(iter(range(base, base + 10)))
        assert table.estimated_bytes() < before
        assert table.proof_count() == 0


class TestSerialization:
    def test_roundtrip(self, scpu):
        table = VrdTable()
        vrd = make_vrd(scpu)
        table.insert_active(vrd)
        expired = make_vrd(scpu)
        table.insert_active(expired)
        table.mark_expired(expired.sn, scpu.make_deletion_proof(expired.sn))
        table.sn_current_envelope = scpu.sign_sn_current(
            scpu.current_serial_number)
        table.sn_base_envelope = scpu.sign_sn_base()
        lower, upper = scpu._sign_deletion_window(100, 110)
        table.deletion_windows.append(DeletionWindow(lower, upper))

        restored = VrdTable.from_dict(table.to_dict())
        assert restored.active_sns == table.active_sns
        assert restored.expired_sns == table.expired_sns
        assert restored.get_active(vrd.sn).data_hash == vrd.data_hash
        assert (restored.sn_current_envelope.signature
                == table.sn_current_envelope.signature)
        assert restored.deletion_windows[0].low_sn == 100
