"""Tests for the append-only log-structured block store."""

import pytest

from repro.storage.block_store import MissingRecordError
from repro.storage.log_store import AppendLogBlockStore


@pytest.fixture
def log_store(tmp_path):
    return AppendLogBlockStore(tmp_path / "store.log")


class TestBasics:
    def test_put_get_roundtrip(self, log_store):
        key = log_store.put(b"payload bytes")
        assert log_store.get(key) == b"payload bytes"
        assert key in log_store
        assert log_store.size_of(key) == 13

    def test_multiple_records_appended(self, log_store):
        keys = [log_store.put(bytes([i]) * (i + 1)) for i in range(10)]
        for i, key in enumerate(keys):
            assert log_store.get(key) == bytes([i]) * (i + 1)

    def test_missing_key(self, log_store):
        with pytest.raises(MissingRecordError):
            log_store.get("rec-nope")

    def test_empty_payload(self, log_store):
        key = log_store.put(b"")
        assert log_store.get(key) == b""


class TestRecovery:
    def test_index_rebuilt_on_reopen(self, tmp_path):
        path = tmp_path / "persist.log"
        store = AppendLogBlockStore(path)
        keys = [store.put(f"record {i}".encode()) for i in range(5)]
        store.delete(keys[2])
        reopened = AppendLogBlockStore(path)
        assert set(reopened.keys()) == set(keys) - {keys[2]}
        assert reopened.get(keys[0]) == b"record 0"
        with pytest.raises(MissingRecordError):
            reopened.get(keys[2])

    def test_counter_resumes_without_collisions(self, tmp_path):
        path = tmp_path / "resume.log"
        store = AppendLogBlockStore(path)
        old = {store.put(b"x") for _ in range(3)}
        reopened = AppendLogBlockStore(path)
        assert reopened.put(b"y") not in old

    def test_torn_final_frame_tolerated(self, tmp_path):
        path = tmp_path / "torn.log"
        store = AppendLogBlockStore(path)
        key = store.put(b"complete record")
        with path.open("ab") as handle:
            handle.write(b"WLG1\x00")  # a truncated header: a crash mid-write
        reopened = AppendLogBlockStore(path)
        assert reopened.get(key) == b"complete record"

    def test_corrupt_interior_frame_raises(self, tmp_path):
        path = tmp_path / "bad.log"
        store = AppendLogBlockStore(path)
        store.put(b"record")
        raw = bytearray(path.read_bytes())
        raw[0] = 0x00  # smash the first frame's magic
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="magic"):
            AppendLogBlockStore(path)


class TestDeletionAndCompaction:
    def test_delete_marks_dead(self, log_store):
        key = log_store.put(b"doomed")
        log_store.delete(key)
        assert key not in log_store
        assert log_store.dead_bytes == 6

    def test_shred_overwrite_in_place(self, tmp_path):
        path = tmp_path / "shred.log"
        store = AppendLogBlockStore(path)
        key = store.put(b"SECRETSECRET")
        store.overwrite(key, b"\x00" * 12)
        assert b"SECRETSECRET" not in path.read_bytes()
        assert store.get(key) == b"\x00" * 12

    def test_overwrite_length_must_match(self, log_store):
        key = log_store.put(b"12345")
        with pytest.raises(ValueError):
            log_store.overwrite(key, b"too long for the slot")

    def test_compact_reclaims_space(self, log_store):
        keep = log_store.put(b"K" * 100)
        for _ in range(5):
            key = log_store.put(b"D" * 1000)
            log_store.delete(key)
        before = log_store.log_bytes()
        reclaimed = log_store.compact()
        assert reclaimed >= 5000
        assert log_store.log_bytes() < before
        assert log_store.get(keep) == b"K" * 100
        assert log_store.dead_bytes == 0

    def test_compacted_log_still_reopens(self, tmp_path):
        path = tmp_path / "c.log"
        store = AppendLogBlockStore(path)
        keep = store.put(b"survivor")
        dead = store.put(b"casualty")
        store.delete(dead)
        store.compact()
        reopened = AppendLogBlockStore(path)
        assert reopened.get(keep) == b"survivor"


class TestAsWormBacking:
    def test_full_worm_store_over_log(self, tmp_path, ca):
        """The log store backs a complete WORM lifecycle on disk."""
        from repro import StrongWormStore, demo_keyring
        from repro.hardware import SecureCoprocessor
        log = AppendLogBlockStore(tmp_path / "worm.log")
        store = StrongWormStore(
            scpu=SecureCoprocessor(keyring=demo_keyring()), block_store=log)
        client = store.make_client(ca)
        keeper = store.write([b"retained"], policy="sox")
        brief = store.write([b"SHREDME!"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.maintenance()
        # The shredded payload left no trace in the raw log bytes.
        assert b"SHREDME!" not in (tmp_path / "worm.log").read_bytes()
        verified = client.verify_read(store.read(keeper.sn), keeper.sn)
        assert verified.data == b"retained"
        assert client.verify_read(store.read(brief.sn),
                                  brief.sn).status == "deleted"
