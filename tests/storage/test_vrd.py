"""Unit tests for Virtual Record Descriptors."""

import pytest

from repro import demo_keyring
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.storage.record import RecordAttributes, RecordDescriptor
from repro.storage.vrd import VirtualRecordDescriptor


@pytest.fixture(scope="module")
def scpu():
    return SecureCoprocessor(keyring=demo_keyring())


def make_vrd(scpu, strength=Strength.STRONG, records=(b"one", b"two")):
    sn = scpu.issue_serial_number()
    attr = RecordAttributes(created_at=scpu.now, retention_seconds=60.0)
    data_hash = scpu.hash_record_data(records)
    metasig, datasig = scpu.witness_write(sn, attr.canonical_bytes(),
                                          data_hash, strength=strength)
    rdl = tuple(RecordDescriptor(key=f"rec-{sn}-{i}", length=len(r))
                for i, r in enumerate(records))
    return VirtualRecordDescriptor(sn=sn, attr=attr, rdl=rdl,
                                   metasig=metasig, datasig=datasig,
                                   data_hash=data_hash)


class TestVrd:
    def test_structure(self, scpu):
        vrd = make_vrd(scpu)
        assert vrd.record_count == 2
        assert vrd.total_bytes == 6
        assert vrd.is_client_verifiable

    def test_sn_must_be_positive(self, scpu):
        vrd = make_vrd(scpu)
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(vrd, sn=0)

    def test_hmac_vrd_not_client_verifiable(self, scpu):
        vrd = make_vrd(scpu, strength=Strength.HMAC)
        assert not vrd.is_client_verifiable

    def test_with_signatures_upgrades(self, scpu):
        vrd = make_vrd(scpu, strength=Strength.WEAK)
        metasig = scpu.strengthen(vrd.metasig)
        datasig = scpu.strengthen(vrd.datasig)
        upgraded = vrd.with_signatures(metasig, datasig)
        assert upgraded.sn == vrd.sn
        assert upgraded.metasig is metasig
        assert vrd.metasig is not metasig  # original untouched

    def test_with_attr_replaces_attr_and_metasig(self, scpu):
        vrd = make_vrd(scpu)
        new_attr = vrd.attr.with_hold(timeout=1e6, credential_hash=b"c")
        new_metasig = scpu.resign_metadata(vrd.sn, new_attr.canonical_bytes())
        updated = vrd.with_attr(new_attr, new_metasig)
        assert updated.attr.litigation_hold
        assert updated.datasig is vrd.datasig

    def test_serialization_roundtrip(self, scpu):
        vrd = make_vrd(scpu)
        restored = VirtualRecordDescriptor.from_dict(vrd.to_dict())
        assert restored.sn == vrd.sn
        assert restored.attr == vrd.attr
        assert restored.rdl == vrd.rdl
        assert restored.data_hash == vrd.data_hash
        assert (restored.metasig.envelope.canonical_bytes()
                == vrd.metasig.envelope.canonical_bytes())
        assert restored.datasig.signature == vrd.datasig.signature
