"""Property-based tests for the WORM file system: model-checked namespace.

A stateful machine drives random write/append/unlink/rename sequences
against both the real WormFileSystem and a trivial in-memory model; after
every step the namespace listing and every readable file's content must
agree, and every version ever created must remain readable by explicit
version number (the WORM property at the fs layer).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import StrongWormStore, demo_keyring
from repro.fs import WormFileSystem
from repro.hardware.scpu import SecureCoprocessor

_SHARED: dict = {}


def _keyring():
    if "keyring" not in _SHARED:
        _SHARED["keyring"] = demo_keyring()
    return dataclasses.replace(_SHARED["keyring"])


_PATHS = st.sampled_from(["/a", "/b", "/dir/c", "/dir/d", "/deep/e/f"])
_CONTENT = st.binary(min_size=0, max_size=64)


class FsModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        store = StrongWormStore(scpu=SecureCoprocessor(keyring=_keyring()))
        self.fs = WormFileSystem(store)
        self.model: dict = {}            # path -> current content
        self.history: dict = {}          # (path, version) -> content

    @rule(path=_PATHS, content=_CONTENT)
    def write(self, path, content):
        entry = self.fs.write(path, content, retention_seconds=1e9)
        self.model[path] = content
        self.history[(path, entry.version)] = content

    @rule(path=_PATHS, content=_CONTENT)
    def append(self, path, content):
        entry = self.fs.append(path, content, retention_seconds=1e9)
        combined = self.model.get(path, b"") + content
        self.model[path] = combined
        self.history[(path, entry.version)] = combined

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def unlink(self, data):
        path = data.draw(st.sampled_from(sorted(self.model)))
        self.fs.unlink(path)
        del self.model[path]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), suffix=st.integers(min_value=0, max_value=99))
    def rename(self, data, suffix):
        old = data.draw(st.sampled_from(sorted(self.model)))
        new = f"/renamed/{suffix}"
        if new in self.model:
            return
        entry = self.fs.rename(old, new)
        self.model[new] = self.model.pop(old)
        self.history[(new, entry.version)] = self.model[new]

    @invariant()
    def listings_agree(self):
        assert set(self.fs.walk()) == set(self.model)

    @invariant()
    def current_contents_agree(self):
        for path, content in self.model.items():
            assert self.fs.read(path) == content

    @invariant()
    def all_history_remains_readable(self):
        for (path, version), content in self.history.items():
            assert self.fs.read(path, version=version) == content


FsModel.TestCase.settings = settings(
    max_examples=10, stateful_step_count=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
TestFsModel = FsModel.TestCase


class TestRename:
    def test_rename_moves_binding(self, store, client):
        fs = WormFileSystem(store)
        fs.write("/old", b"content")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        verified = fs.verified_read(client, "/new")
        assert verified.content == b"content"

    def test_rename_shares_content_records(self, store):
        fs = WormFileSystem(store)
        fs.write("/big", b"B" * 8192)
        bytes_before = sum(store.blocks.size_of(k)
                           for k in store.blocks.keys())
        fs.rename("/big", "/moved")
        bytes_after = sum(store.blocks.size_of(k)
                          for k in store.blocks.keys())
        assert bytes_after - bytes_before < 200  # header only, no copy

    def test_rename_onto_existing_refused(self, store):
        from repro.core.errors import WormError
        fs = WormFileSystem(store)
        fs.write("/a", b"1")
        fs.write("/b", b"2")
        with pytest.raises(WormError, match="exists"):
            fs.rename("/a", "/b")

    def test_old_history_survives_rename(self, store):
        fs = WormFileSystem(store)
        fs.write("/doc", b"v1")
        fs.write("/doc", b"v2")
        fs.rename("/doc", "/doc-final")
        # Auditors can still read the pre-rename versions by number.
        assert fs.read("/doc", version=1) == b"v1"
        assert fs.read("/doc", version=2) == b"v2"

    def test_renamed_file_verifies_under_new_name(self, store, client):
        fs = WormFileSystem(store)
        fs.write("/from", b"payload")
        fs.rename("/from", "/to")
        verified = fs.verified_read(client, "/to")
        assert verified.path == "/to"
        assert verified.version == 1
