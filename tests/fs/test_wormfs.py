"""Tests for the WORM file system layer."""

import pytest

from repro.core.errors import VerificationError, WormError
from repro.fs import WormFileSystem
from repro.hardware.scpu import Strength


@pytest.fixture
def fs(store):
    return WormFileSystem(store)


class TestPaths:
    def test_relative_paths_rejected(self, fs):
        with pytest.raises(WormError):
            fs.write("relative.txt", b"x")

    def test_escaping_paths_rejected(self, fs):
        with pytest.raises(WormError):
            fs.write("/../etc/passwd", b"x")

    def test_paths_normalized(self, fs):
        fs.write("/a//./c.txt", b"x")
        assert fs.exists("/a/c.txt")

    def test_parent_references_rejected_anywhere(self, fs):
        with pytest.raises(WormError):
            fs.write("/a/../c.txt", b"x")


class TestWriteRead:
    def test_roundtrip(self, fs):
        fs.write("/docs/report.pdf", b"pdf bytes")
        assert fs.read("/docs/report.pdf") == b"pdf bytes"

    def test_empty_file(self, fs):
        fs.write("/empty", b"")
        assert fs.read("/empty") == b""

    def test_missing_file(self, fs):
        with pytest.raises(WormError, match="no such file"):
            fs.read("/nope")

    def test_versioning_on_rewrite(self, fs):
        fs.write("/f", b"v1 contents")
        fs.write("/f", b"v2 contents")
        assert fs.read("/f") == b"v2 contents"
        assert fs.read("/f", version=1) == b"v1 contents"
        assert len(fs.versions("/f")) == 2

    def test_version_out_of_range(self, fs):
        fs.write("/f", b"x")
        with pytest.raises(WormError, match="no version"):
            fs.read("/f", version=2)

    def test_stat(self, fs):
        fs.write("/f", b"abc")
        entry = fs.stat("/f")
        assert entry.size == 3
        assert entry.version == 1
        assert entry.sn >= 1


class TestAppend:
    def test_append_concatenates(self, fs):
        fs.write("/log", b"line1\n")
        fs.append("/log", b"line2\n")
        fs.append("/log", b"line3\n")
        assert fs.read("/log") == b"line1\nline2\nline3\n"
        assert fs.stat("/log").version == 3

    def test_append_creates_missing_file(self, fs):
        fs.append("/new", b"first")
        assert fs.read("/new") == b"first"

    def test_append_shares_records_not_copies(self, fs, store):
        fs.write("/big", b"A" * 10_000)
        keys_before = set(store.blocks.keys())
        fs.append("/big", b"B")
        new_keys = set(store.blocks.keys()) - keys_before
        # Only a header and the 1-byte append were written — the 10KB
        # body was shared, not copied.
        new_bytes = sum(store.blocks.size_of(k) for k in new_keys)
        assert new_bytes < 200

    def test_old_version_still_reads_after_append(self, fs):
        fs.write("/f", b"base")
        fs.append("/f", b"+more")
        assert fs.read("/f", version=1) == b"base"


class TestVerifiedReads:
    def test_verified_read(self, fs, client):
        fs.write("/ledger", b"entries")
        verified = fs.verified_read(client, "/ledger")
        assert verified.content == b"entries"
        assert not verified.weakly_signed

    def test_namespace_remap_detected(self, fs, store, client):
        """The insider points one path's index entry at another file."""
        fs.write("/innocuous", b"nothing here")
        fs.write("/evidence", b"the smoking gun")
        innocuous = fs._versions["/innocuous"][0]
        import dataclasses
        remapped = dataclasses.replace(innocuous, sn=fs._versions["/evidence"][0].sn)
        fs._versions["/innocuous"][0] = remapped
        with pytest.raises(VerificationError, match="namespace remap"):
            fs.verified_read(client, "/innocuous")

    def test_version_rollback_detected(self, fs, client):
        """The insider rewinds the index to serve v1 as the latest."""
        fs.write("/contract", b"original terms")
        fs.write("/contract", b"amended terms")
        v1, v2 = fs._versions["/contract"]
        import dataclasses
        fs._versions["/contract"] = [
            v1, dataclasses.replace(v1, version=2)]
        with pytest.raises(VerificationError, match="rollback"):
            fs.verified_read(client, "/contract")

    def test_tampered_content_detected(self, fs, store, client):
        entry = fs.write("/f", b"real content")
        vrd = store.vrdt.get_active(entry.sn)
        store.blocks.unchecked_overwrite(vrd.rdl[1].key, b"fake content")
        with pytest.raises(VerificationError):
            fs.verified_read(client, "/f")

    def test_weak_write_flagged(self, fs, client):
        fs.write("/burst", b"x", strength=Strength.WEAK)
        assert fs.verified_read(client, "/burst").weakly_signed


class TestNamespace:
    def test_listdir_root(self, fs):
        fs.write("/a.txt", b"1")
        fs.write("/dir/b.txt", b"2")
        fs.write("/dir/sub/c.txt", b"3")
        assert fs.listdir("/") == ["a.txt", "dir"]
        assert fs.listdir("/dir") == ["b.txt", "sub"]

    def test_walk(self, fs):
        fs.write("/x", b"1")
        fs.write("/y/z", b"2")
        assert fs.walk() == ["/x", "/y/z"]

    def test_unlink_hides_but_preserves_history(self, fs):
        fs.write("/secret", b"data")
        fs.unlink("/secret")
        assert not fs.exists("/secret")
        assert fs.listdir("/") == []
        # WORM: history (and the records) survive.
        assert len(fs.versions("/secret")) == 1
        with pytest.raises(WormError, match="unlinked"):
            fs.read("/secret")
        # Explicit version access still works (auditors need it).
        assert fs.read("/secret", version=1) == b"data"

    def test_unlink_missing(self, fs):
        with pytest.raises(WormError):
            fs.unlink("/ghost")

    def test_double_unlink(self, fs):
        fs.write("/f", b"x")
        fs.unlink("/f")
        with pytest.raises(WormError, match="already"):
            fs.unlink("/f")

    def test_rewrite_after_unlink_relinks(self, fs):
        fs.write("/f", b"v1")
        fs.unlink("/f")
        fs.write("/f", b"v2")
        assert fs.exists("/f")
        assert fs.read("/f") == b"v2"
        assert len(fs.versions("/f")) == 2


class TestPolicies:
    def test_subtree_policy_inheritance(self, fs):
        fs.set_directory_policy("/patients", "hipaa")
        fs.set_directory_policy("/", "sox")
        assert fs.policy_for("/patients/alice/chart") == "hipaa"
        assert fs.policy_for("/ledger/2026") == "sox"

    def test_nearest_ancestor_wins(self, fs):
        fs.set_directory_policy("/a", "sox")
        fs.set_directory_policy("/a/b", "hipaa")
        assert fs.policy_for("/a/b/file") == "hipaa"
        assert fs.policy_for("/a/file") == "sox"

    def test_unknown_policy_rejected(self, fs):
        with pytest.raises(KeyError):
            fs.set_directory_policy("/x", "not-a-regulation")

    def test_policy_applied_to_writes(self, fs, store):
        fs.set_directory_policy("/audit", "sox")
        entry = fs.write("/audit/trail", b"x")
        vrd = store.vrdt.get_active(entry.sn)
        assert vrd.attr.policy == "sox"

    def test_policy_floor_enforced_through_fs(self, fs):
        from repro.core.errors import RetentionViolationError
        fs.set_directory_policy("/audit", "sox")
        with pytest.raises(RetentionViolationError):
            fs.write("/audit/trail", b"x", retention_seconds=60.0)


class TestRetentionInteraction:
    def test_expired_version_unreadable_but_provable(self, fs, store, client):
        entry = fs.write("/temp", b"short-lived", retention_seconds=10.0)
        store.scpu.clock.advance(20.0)
        store.maintenance()
        with pytest.raises(WormError, match="deleted"):
            fs.read("/temp")
        # The deletion is still provable at the record layer.
        verified = client.verify_read(store.read(entry.sn), entry.sn)
        assert verified.status == "deleted"
