"""Tests for the command-line interface (persistent on-disk store)."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture
def store_dir(tmp_path):
    directory = tmp_path / "worm"
    assert main(["init", str(directory), "--strong-bits", "512"]) == 0
    return directory


def _write_file(tmp_path, name, content: bytes) -> str:
    path = tmp_path / name
    path.write_bytes(content)
    return str(path)


class TestInit:
    def test_creates_layout(self, store_dir):
        assert (store_dir / "scpu_state.json").exists()
        assert (store_dir / "state.json").exists()
        assert (store_dir / "ca.json").exists()
        assert (store_dir / "blocks").is_dir()

    def test_double_init_refused(self, store_dir):
        with pytest.raises(SystemExit):
            main(["init", str(store_dir)])

    def test_uninitialized_dir_refused(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["status", str(tmp_path / "nothere")])


class TestWriteCat:
    def test_roundtrip(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "doc.txt", b"hello compliance")
        assert main(["write", str(store_dir), source, "--policy", "sox"]) == 0
        out = capsys.readouterr().out
        assert "SN 1" in out
        assert main(["cat", str(store_dir), "1"]) == 0
        out = capsys.readouterr().out
        assert "hello compliance" in out

    def test_state_survives_reload(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "a.txt", b"persisted")
        main(["write", str(store_dir), source])
        capsys.readouterr()
        # A fresh process (new load) still reads and verifies SN 1.
        assert main(["cat", str(store_dir), "1"]) == 0
        assert "persisted" in capsys.readouterr().out

    def test_sns_continue_across_reloads(self, store_dir, tmp_path, capsys):
        a = _write_file(tmp_path, "a", b"1")
        b = _write_file(tmp_path, "b", b"2")
        main(["write", str(store_dir), a])
        main(["write", str(store_dir), b])
        out = capsys.readouterr().out
        assert "SN 1" in out and "SN 2" in out

    def test_cat_never_allocated(self, store_dir, capsys):
        assert main(["cat", str(store_dir), "99"]) == 1
        assert "never-allocated" in capsys.readouterr().err

    def test_weak_write_then_maintain(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "w.txt", b"burst data")
        main(["write", str(store_dir), source, "--strength", "weak",
              "--retention-years", "1"])
        capsys.readouterr()
        assert main(["maintain", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "strengthened:         1" in out


class TestFsCommands:
    def test_put_cat_ls(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "l.csv", b"a,b,c")
        assert main(["fs-put", str(store_dir), "/ledger/q3.csv", source,
                     "--policy", "sec17a-4"]) == 0
        capsys.readouterr()
        assert main(["fs-cat", str(store_dir), "/ledger/q3.csv"]) == 0
        assert "a,b,c" in capsys.readouterr().out
        assert main(["fs-ls", str(store_dir), "/"]) == 0
        assert "ledger" in capsys.readouterr().out

    def test_append_across_processes(self, store_dir, tmp_path, capsys):
        first = _write_file(tmp_path, "1.log", b"line1\n")
        second = _write_file(tmp_path, "2.log", b"line2\n")
        main(["fs-put", str(store_dir), "/app.log", first])
        main(["fs-put", str(store_dir), "/app.log", second, "--append"])
        capsys.readouterr()
        main(["fs-cat", str(store_dir), "/app.log"])
        assert "line1\nline2\n" in capsys.readouterr().out

    def test_fs_history_lists_versions(self, store_dir, tmp_path, capsys):
        v1 = _write_file(tmp_path, "v1", b"first")
        v2 = _write_file(tmp_path, "v2", b"second")
        main(["fs-put", str(store_dir), "/doc", v1])
        main(["fs-put", str(store_dir), "/doc", v2])
        capsys.readouterr()
        assert main(["fs-history", str(store_dir), "/doc"]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out

    def test_fs_history_missing_path(self, store_dir, capsys):
        assert main(["fs-history", str(store_dir), "/ghost"]) == 1

    def test_old_version_readable(self, store_dir, tmp_path, capsys):
        v1 = _write_file(tmp_path, "v1", b"first")
        v2 = _write_file(tmp_path, "v2", b"second")
        main(["fs-put", str(store_dir), "/doc", v1])
        main(["fs-put", str(store_dir), "/doc", v2])
        capsys.readouterr()
        main(["fs-cat", str(store_dir), "/doc", "--version", "1"])
        assert "first" in capsys.readouterr().out


class TestAudit:
    def test_clean_store(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "x", b"data")
        main(["write", str(store_dir), source])
        capsys.readouterr()
        assert main(["audit", str(store_dir)]) == 0
        assert "store is clean" in capsys.readouterr().out

    def test_tampered_store_detected(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "x", b"original record")
        main(["write", str(store_dir), source])
        capsys.readouterr()
        # The insider rewrites the record file directly on disk.
        blocks = store_dir / "blocks"
        victim = next(blocks.glob("rec-*"))
        victim.write_bytes(b"doctored record")
        assert main(["audit", str(store_dir)]) == 2
        captured = capsys.readouterr()
        assert "TAMPERING DETECTED" in captured.err
        assert "violation" in captured.out

    def test_status_runs(self, store_dir, capsys):
        assert main(["status", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "frontier SN" in out
        assert "active_records" in out


class TestAttestation:
    def test_attest_prints_state(self, store_dir, tmp_path, capsys):
        source = _write_file(tmp_path, "x", b"data")
        main(["write", str(store_dir), source])
        capsys.readouterr()
        assert main(["attest", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "sn_counter=1" in out

    def test_attestation_chain_accepts_forward(self, store_dir, tmp_path,
                                               capsys):
        first = tmp_path / "att1.json"
        main(["attest", str(store_dir), "--out", str(first)])
        source = _write_file(tmp_path, "x", b"data")
        main(["write", str(store_dir), source])
        capsys.readouterr()
        assert main(["attest", str(store_dir),
                     "--previous", str(first)]) == 0
        assert "OK" in capsys.readouterr().err

    def test_attestation_chain_detects_rollback(self, store_dir, tmp_path,
                                                capsys):
        source = _write_file(tmp_path, "x", b"data")
        main(["write", str(store_dir), source])
        later = tmp_path / "att-later.json"
        main(["attest", str(store_dir), "--out", str(later)])
        # An examiner presented an *older* card state than the saved
        # attestation: simulate by rolling the persisted counter back.
        import json as json_mod
        state_path = store_dir / "scpu_state.json"
        state = json_mod.loads(state_path.read_text())
        state["sn_counter"] = 0
        state_path.write_text(json_mod.dumps(state))
        capsys.readouterr()
        assert main(["attest", str(store_dir),
                     "--previous", str(later)]) == 2
        assert "FAILED" in capsys.readouterr().err
