"""A week in the life of a compliance store — long-horizon integration.

Seven simulated business days of diurnal traffic (quiet nights, steady
days, an end-of-day archival burst absorbed with deferred signatures),
with nightly maintenance.  At the end, the whole store must audit clean,
every weak construct must have been strengthened inside its lifetime,
and the burst latencies must reflect §4.3's absorption claim.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.audit import StoreAuditor
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import Strength
from repro.sim.driver import SimulationConfig, make_sim_store, run_open_loop
from repro.sim.workload import DiurnalArrivals, RetentionSampler, UniformSize


@pytest.fixture(scope="module")
def week():
    config = SimulationConfig(strengthen_when_idle=True,
                              maintenance_interval=300.0)
    simstore = make_sim_store(config=config, keyring=demo_keyring())
    simstore.store.windows.refresh_interval = 120.0
    workload = DiurnalArrivals(
        size_dist=UniformSize(256, 8192),
        days=7,
        night_rate=0.01,
        day_rate=0.02,
        burst_rate=250.0,
        burst_seconds=8.0,
        retention=RetentionSampler(profiles=((30 * 24 * 3600.0, 0.2),
                                             (5 * 365 * 24 * 3600.0, 0.8))),
        seed=99,
    )
    metrics = run_open_loop(
        simstore, workload, config=config,
        horizon=7 * 24 * 3600.0 + 3600.0,
        write_kwargs={"strength": Strength.WEAK, "defer_data_hash": True})
    return simstore, metrics


class TestWeekInTheLife:
    def test_volume_is_a_real_week(self, week):
        simstore, metrics = week
        # 7 EOD bursts of ~2k writes dominate; plus day/night trickle.
        assert metrics.count("write") > 15_000
        assert simstore.sim.now >= 7 * 24 * 3600.0

    def test_bursts_absorbed_with_low_latency(self, week):
        _, metrics = week
        summary = metrics.latency_summary("write")
        # 250/s bursts against ~2100/s deferred capacity: no pile-up.
        assert summary["p99"] < 0.5
        assert summary["max"] < 5.0

    def test_all_constructs_strengthened_in_time(self, week):
        simstore, metrics = week
        store = simstore.store
        assert store.strengthening.lifetime_violations == 0
        # The backlog never outlives the week's final idle stretch.
        assert len(store.strengthening) == 0
        assert store.strengthening.strengthened_count == metrics.count("write")

    def test_all_deferred_hashes_verified_clean(self, week):
        simstore, _ = week
        store = simstore.store
        assert len(store.hash_verification) == 0
        assert store.hash_verification.mismatches == []

    def test_store_audits_clean_after_the_week(self, week):
        simstore, _ = week
        store = simstore.store
        ca = CertificateAuthority(bits=512)
        client = store.make_client(ca)
        store.windows.refresh_current(force=True)
        # Sample-audit 500 SNs across the week (a full sweep of 50k+
        # records is run in the dedicated benchmark).
        frontier = store.scpu.current_serial_number
        step = max(1, frontier // 500)
        for sn in range(1, frontier + 1, step):
            verified = client.verify_read(store.read(sn), sn)
            assert verified.status in ("active", "deleted")

    def test_scpu_was_never_the_bottleneck_off_burst(self, week):
        simstore, _ = week
        # Across the whole week the card is mostly idle — the §4.1 point
        # that sparse SCPU access leaves capacity for bursts.
        assert simstore.scpu_dev.utilization(simstore.sim.now) < 0.25
