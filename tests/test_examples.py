"""Smoke tests: every shipped example must run clean, start to finish.

The examples are documentation that executes; a refactor that breaks one
breaks the README's promises.  Each runs in a subprocess with a timeout
(the Figure 1 example in --quick mode).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", [], b"never-allocated"),
    ("sec17a4_broker_archive.py", [], b"lifetime violations: 0"),
    ("hipaa_hospital_records.py", [], b"no PHI traces remain"),
    ("insider_attack_demo.py", [], b"Theorems 1 and 2 hold: True"),
    ("compliant_migration.py", [], b"REJECTED source SN"),
    ("crypto_shredding_demo.py", [], b"refused by the SCPU"),
    ("embedded_flight_recorder.py", [], b"remap detected"),
    ("replicated_archive.py", [], b"verified read still succeeds"),
    ("sharded_ingest.py", [], b"records per witnessing signature"),
    ("throughput_figure1.py", ["--quick"], b"paper bands"),
]


@pytest.mark.parametrize("script,args,marker",
                         _CASES, ids=[c[0] for c in _CASES])
def test_example_runs_clean(script, args, marker):
    path = _EXAMPLES_DIR / script
    assert path.exists(), f"missing example: {script}"
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True, timeout=420)
    assert result.returncode == 0, result.stderr.decode()[-800:]
    assert marker in result.stdout, (
        f"{script} output missing marker {marker!r}:\n"
        + result.stdout.decode()[-800:])
    assert b"Traceback" not in result.stderr
    assert b"FAILURE" not in result.stdout
