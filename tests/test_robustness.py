"""Robustness fuzzing: malformed serialized inputs must fail cleanly.

Deserializers in this codebase ingest *untrusted* bytes (migration
packages, persisted CLI state, trace files).  The contract: malformed
input raises a sane exception (ValueError/KeyError/TypeError) — never a
silent wrong object, never an exotic crash deep inside the crypto.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.envelope import Envelope, SignedEnvelope
from repro.storage.record import RecordAttributes
from repro.storage.vrd import VirtualRecordDescriptor

_SANE_ERRORS = (ValueError, KeyError, TypeError, AttributeError,
                OverflowError)

# A generator of "almost right" dictionaries: correct shapes with
# random values, plus completely arbitrary junk.
_junk_values = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(allow_nan=True),
    st.text(max_size=8), st.binary(max_size=8),
    st.lists(st.integers(), max_size=3))
_junk_dicts = st.dictionaries(st.text(max_size=12), _junk_values, max_size=6)


def _valid_signed_dict() -> dict:
    env = Envelope(purpose="p", fields={"sn": 1, "h": b"\x01"}, timestamp=2.0)
    return SignedEnvelope(envelope=env, signature=b"\xaa", key_fingerprint="f",
                          key_bits=512).to_dict()


class TestSignedEnvelopeFuzz:
    @given(_junk_dicts)
    @settings(max_examples=80, deadline=None)
    def test_junk_dicts_fail_cleanly(self, data):
        try:
            restored = SignedEnvelope.from_dict(data)
        except _SANE_ERRORS:
            return
        # If it parsed, it must round-trip consistently.
        assert SignedEnvelope.from_dict(restored.to_dict()) == restored

    @given(st.sampled_from(["purpose", "timestamp", "fields", "signature",
                            "key_fingerprint", "key_bits"]))
    def test_missing_required_field_raises(self, missing):
        data = _valid_signed_dict()
        del data[missing]
        with pytest.raises(_SANE_ERRORS):
            SignedEnvelope.from_dict(data)

    @given(st.text(max_size=12))
    @settings(max_examples=40)
    def test_corrupt_hex_raises(self, junk):
        data = _valid_signed_dict()
        data["signature"] = junk
        try:
            restored = SignedEnvelope.from_dict(data)
            assert isinstance(restored.signature, bytes)
        except _SANE_ERRORS:
            pass

    def test_valid_dict_roundtrips(self):
        data = _valid_signed_dict()
        restored = SignedEnvelope.from_dict(data)
        assert restored.to_dict() == data


class TestAttributesFuzz:
    @given(_junk_dicts)
    @settings(max_examples=80, deadline=None)
    def test_junk_dicts_fail_cleanly(self, data):
        try:
            attr = RecordAttributes.from_dict(data)
        except _SANE_ERRORS:
            return
        assert RecordAttributes.from_dict(attr.to_dict()) == attr

    def test_negative_smuggled_retention_rejected(self):
        good = RecordAttributes(created_at=1.0, retention_seconds=10.0)
        data = good.to_dict()
        data["retention_seconds"] = -5.0
        with pytest.raises(ValueError):
            RecordAttributes.from_dict(data)


class TestVrdFuzz:
    @given(_junk_dicts)
    @settings(max_examples=60, deadline=None)
    def test_junk_dicts_fail_cleanly(self, data):
        with pytest.raises(_SANE_ERRORS):
            VirtualRecordDescriptor.from_dict(data)

    def test_zero_sn_smuggled_rejected(self, store):
        receipt = store.write([b"x"], retention_seconds=1e9)
        data = receipt.vrd.to_dict()
        data["sn"] = 0
        with pytest.raises(ValueError):
            VirtualRecordDescriptor.from_dict(data)


class TestMigrationPackageFuzz:
    def test_bitflipped_snapshot_rejected_wholesale(self, store, ca):
        """Any mutation of the serialized snapshot breaks the manifest."""
        import json
        from repro.core.migration import (
            MigrationError, export_package, import_package)
        from repro.core.worm import StrongWormStore
        from repro.hardware.scpu import SecureCoprocessor
        from repro import demo_keyring

        store.write([b"cargo"], policy="sox")
        package = export_package(store, ca)
        blob = json.dumps(package.vrdt_snapshot, sort_keys=True)
        # Flip one character somewhere structural-but-valid: int → int+1.
        mutated = json.loads(blob.replace('"sn": 1', '"sn": 2', 1))
        import dataclasses
        bad = dataclasses.replace(package, vrdt_snapshot=mutated)
        dest = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        with pytest.raises(MigrationError):
            import_package(dest, bad, ca)
