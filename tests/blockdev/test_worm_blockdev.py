"""Tests for the block-level WORM device."""

import pytest

from repro.blockdev import BlockWriteError, WormBlockDevice
from repro.core.errors import VerificationError, WormError


@pytest.fixture
def dev(store):
    return WormBlockDevice(store, block_size=256, capacity_blocks=64,
                           retention_seconds=1e9)


class TestGeometry:
    def test_capacity(self, dev):
        assert dev.capacity_bytes == 64 * 256
        assert dev.blocks_written == 0

    def test_lba_bounds(self, dev):
        with pytest.raises(WormError):
            dev.read_block(64)
        with pytest.raises(WormError):
            dev.write_block(-1, b"x")

    def test_tiny_block_size_rejected(self, store):
        with pytest.raises(ValueError):
            WormBlockDevice(store, block_size=32)


class TestWriteOnce:
    def test_write_read_roundtrip(self, dev):
        dev.write_block(5, b"sensor frame 0001")
        data = dev.read_block(5)
        assert data.startswith(b"sensor frame 0001")
        assert len(data) == 256  # zero-padded to the block size

    def test_unwritten_reads_zeros(self, dev):
        assert dev.read_block(10) == b"\x00" * 256

    def test_rewrite_refused(self, dev):
        dev.write_block(3, b"first")
        with pytest.raises(BlockWriteError):
            dev.write_block(3, b"second")
        assert dev.read_block(3).startswith(b"first")

    def test_oversized_write_refused(self, dev):
        with pytest.raises(WormError):
            dev.write_block(0, b"x" * 257)

    def test_written_lbas_tracked(self, dev):
        dev.write_block(9, b"a")
        dev.write_block(2, b"b")
        assert list(dev.written_lbas()) == [2, 9]
        assert dev.is_written(9)
        assert not dev.is_written(1)
        assert dev.sn_of(9) is not None
        assert dev.sn_of(1) is None


class TestRanges:
    def test_range_roundtrip(self, dev):
        payload = bytes(range(256)) * 3  # 3 blocks exactly
        sns = dev.write_range(4, payload)
        assert len(sns) == 3
        assert dev.read_range(4, 3) == payload

    def test_partial_last_block_padded(self, dev):
        dev.write_range(0, b"z" * 300)  # 1 full block + 44 bytes
        data = dev.read_range(0, 2)
        assert data[:300] == b"z" * 300
        assert data[300:] == b"\x00" * 212


class TestTamperEvidence:
    def test_remap_detected(self, dev, store, client):
        """Insider swaps the LBA map so block B serves block A's record."""
        dev.write_block(1, b"block one")
        dev.write_block(2, b"block two")
        dev._lba_map[2] = dev._lba_map[1]
        with pytest.raises(VerificationError, match="remap"):
            dev.read_block(2)

    def test_payload_tamper_detected_by_verified_read(self, dev, store, client):
        dev.write_block(7, b"flight data")
        sn = dev.sn_of(7)
        vrd = store.vrdt.get_active(sn)
        raw = store.blocks.get(vrd.rdl[0].key)
        store.blocks.unchecked_overwrite(
            vrd.rdl[0].key, raw[:-4] + b"!!!!")
        with pytest.raises(VerificationError):
            dev.read_block_verified(client, 7)

    def test_verified_read_clean_path(self, dev, client):
        dev.write_block(8, b"clean")
        assert dev.read_block_verified(client, 8).startswith(b"clean")

    def test_missing_framing_detected(self, dev, store):
        """A record committed outside the device can't pose as a block."""
        receipt = store.write([b"not a framed block" + b"\x00" * 238],
                              retention_seconds=1e9)
        from repro.blockdev.device import _BlockEntry
        dev._lba_map[12] = _BlockEntry(sn=receipt.sn, written_at=0.0)
        with pytest.raises(VerificationError, match="framing"):
            dev.read_block(12)


class TestRetention:
    def test_discard_after_expiry(self, store):
        dev = WormBlockDevice(store, block_size=128, capacity_blocks=16,
                              retention_seconds=10.0)
        dev.write_block(0, b"ephemeral")
        store.scpu.clock.advance(20.0)
        store.retention.tick(store.now)
        assert dev.discard_expired() == 1
        # The slot reads as zeros and is rewritable again.
        assert dev.read_block(0) == b"\x00" * 128
        dev.write_block(0, b"new generation")
        assert dev.read_block(0).startswith(b"new generation")

    def test_expired_but_undiscarded_reads_zeros(self, store):
        dev = WormBlockDevice(store, block_size=128, capacity_blocks=16,
                              retention_seconds=10.0)
        dev.write_block(0, b"gone soon")
        store.scpu.clock.advance(20.0)
        store.retention.tick(store.now)
        assert dev.read_block(0) == b"\x00" * 128

    def test_discard_noop_while_active(self, dev):
        dev.write_block(0, b"still retained")
        assert dev.discard_expired() == 0
        assert dev.is_written(0)
