"""Tamper trip during deferred strengthening: no laundering, no loss.

§4.3's deferred-strength witnessing absorbs bursts with weak constructs
and strengthens them during idle time.  If the card dies mid-backlog,
two things must hold:

* weak signatures are **never laundered to strong** — a record whose
  strengthening failed still presents (and verifies as) its weak
  construct, flagged ``weakly_signed`` to the client;
* the backlog is **reported, not lost** — every still-weak SN remains in
  the queue and shows up in :meth:`StrengtheningQueue.report`.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import ScpuUnavailableError, TamperedError
from repro.core.worm import StrongWormStore
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.sim.manual_clock import ManualClock

pytestmark = pytest.mark.chaos


def make_faulty_store(plan):
    scpu = FaultyScpu(
        SecureCoprocessor(keyring=demo_keyring(), clock=ManualClock()), plan)
    return StrongWormStore(config=StoreConfig(scpu=scpu))


class TestTamperDuringStrengthening:
    def test_backlog_reported_not_lost(self, ca):
        plan = FaultPlan().tamper(op="strengthen", after_ops=1)
        store = make_faulty_store(plan)
        receipts = [store.write([b"burst-%d" % i], strength=Strength.WEAK)
                    for i in range(5)]
        assert len(store.strengthening) == 5

        # The card zeroizes on the first strengthen attempt.
        with pytest.raises(TamperedError):
            store.strengthening.drain(store.now)

        # Nothing left the queue without its strong signature.
        report = store.strengthening.report(store.now)
        assert report["backlog"] == 5
        assert report["pending_sns"] == sorted(r.sn for r in receipts)
        assert report["strengthened"] == 0

    def test_weak_signatures_never_laundered(self, ca):
        plan = FaultPlan().tamper(op="strengthen", after_ops=1)
        store = make_faulty_store(plan)
        client = store.make_client(ca)  # certified while the card lived
        receipts = [store.write([b"burst-%d" % i], strength=Strength.WEAK)
                    for i in range(3)]
        with pytest.raises(TamperedError):
            store.strengthening.drain(store.now)

        # Every record still reads and verifies — as WEAK.  A laundered
        # record would verify with weakly_signed=False despite never
        # having received its strong signature.
        for receipt in receipts:
            verified = client.verify_read(store.read(receipt.sn), receipt.sn)
            assert verified.status == "active"
            assert verified.weakly_signed is True

    def test_transient_fault_keeps_entry_for_retry(self):
        # One dropped strengthen request: the entry survives and the
        # next idle slice completes it.
        plan = FaultPlan().transient(op="strengthen", after_ops=1)
        store = make_faulty_store(plan)
        store.write([b"burst"], strength=Strength.WEAK)
        assert len(store.strengthening) == 1
        # The store-level retry layer rides through the single fault.
        assert store.strengthening.drain(store.now) == 1
        assert store.strengthening.report(store.now)["backlog"] == 0
        assert store.retry.stats.retries >= 1

    def test_exhausted_retries_restore_entry(self):
        plan = FaultPlan().transient(op="strengthen", after_ops=1, count=99)
        store = make_faulty_store(plan)
        receipt = store.write([b"burst"], strength=Strength.WEAK)
        with pytest.raises(ScpuUnavailableError):
            store.strengthening.drain(store.now)
        report = store.strengthening.report(store.now)
        assert report["backlog"] == 1
        assert report["pending_sns"] == [receipt.sn]


class TestHashVerificationBacklog:
    def test_failed_verification_stays_queued(self):
        plan = FaultPlan().transient(op="verify_deferred_hash",
                                     after_ops=1, count=99)
        store = make_faulty_store(plan)
        store.write([b"burst"], strength=Strength.HMAC,
                    defer_data_hash=True)
        assert len(store.hash_verification) == 1
        with pytest.raises(ScpuUnavailableError):
            store.hash_verification.drain()
        # The unverified host hash is still in the exposure window —
        # queued, not silently treated as verified.
        assert len(store.hash_verification) == 1
