"""Unit tests for the deterministic fault-injection harness.

The whole point of :mod:`repro.faults` is replayability: the same plan
against the same workload injects the same faults, so every chaos
failure reproduces.  These tests pin that property plus the semantics of
each fault kind against the real device wrappers.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.errors import (
    CrashError,
    ScpuUnavailableError,
    StorageUnavailableError,
    TamperedError,
)
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultyBlockStore,
    FaultyScpu,
    SCPU_FAULTABLE_OPS,
)
from repro.hardware.device import ScpuLike
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.manual_clock import ManualClock
from repro.storage.block_store import MemoryBlockStore

pytestmark = pytest.mark.chaos


@pytest.fixture
def scpu():
    return SecureCoprocessor(keyring=demo_keyring(), clock=ManualClock())


class TestFaultPlan:
    def test_rate_stream_is_deterministic(self):
        def draw(seed):
            plan = FaultPlan(transient_rate=0.3, seed=seed)
            return [bool(plan.advise("op", 0.0, i)) for i in range(1, 101)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_scheduled_event_fires_once_at_op_count(self):
        plan = FaultPlan().transient(after_ops=3)
        fires = [plan.advise("op", 0.0, i) for i in range(1, 6)]
        assert [bool(f) for f in fires] == [False, False, True, False, False]

    def test_time_trigger_fires_at_virtual_time(self):
        plan = FaultPlan().transient(at=10.0)
        assert not plan.advise("op", 9.9, 1)
        assert plan.advise("op", 10.0, 2)

    def test_op_filter_restricts_event(self):
        plan = FaultPlan().transient(after_ops=1, op="witness_write")
        assert not plan.advise("issue_serial_number", 0.0, 1)
        assert plan.advise("witness_write", 0.0, 2)

    def test_count_repeats_event(self):
        plan = FaultPlan().transient(after_ops=1, count=3)
        fired = sum(bool(plan.advise("op", 0.0, i)) for i in range(1, 6))
        assert fired == 3

    def test_crash_event_requires_op(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.CRASH_BEFORE, after_ops=1)

    def test_event_requires_trigger(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TRANSIENT)

    def test_injected_counters_track_delivery(self):
        plan = FaultPlan().transient(after_ops=1).latency(0.5, after_ops=2)
        plan.advise("op", 0.0, 1)
        plan.advise("op", 0.0, 2)
        assert plan.injected[FaultKind.TRANSIENT] == 1
        assert plan.injected[FaultKind.LATENCY] == 1
        assert plan.total_injected == 2
        assert plan.report()["consulted"] == 2


class TestFaultyScpu:
    def test_is_scpulike_and_preserves_surface(self, scpu):
        faulty = FaultyScpu(scpu, FaultPlan())
        assert isinstance(faulty, ScpuLike)
        for name in SCPU_FAULTABLE_OPS:
            assert callable(getattr(faulty, name))
        assert faulty.clock is scpu.clock
        assert faulty.inner is scpu

    def test_clean_plan_is_transparent(self, scpu):
        faulty = FaultyScpu(scpu, FaultPlan())
        sn = faulty.issue_serial_number()
        assert sn == 1
        assert faulty.current_serial_number == 1

    def test_transient_fault_raises_without_touching_device(self, scpu):
        faulty = FaultyScpu(scpu, FaultPlan().transient(after_ops=1))
        with pytest.raises(ScpuUnavailableError):
            faulty.issue_serial_number()
        # The device never saw the dropped request.
        assert scpu.current_serial_number == 0
        assert faulty.issue_serial_number() == 1

    def test_tamper_uses_genuine_zeroization_path(self, scpu):
        faulty = FaultyScpu(scpu, FaultPlan().tamper(after_ops=2))
        assert faulty.issue_serial_number() == 1
        with pytest.raises(TamperedError):
            faulty.issue_serial_number()
        # The inner card really zeroized: dead forever, even unwrapped.
        assert scpu.tamper.tripped
        with pytest.raises(TamperedError):
            scpu.issue_serial_number()

    def test_latency_charges_inner_meter(self, scpu):
        faulty = FaultyScpu(scpu, FaultPlan().latency(2.5, after_ops=1))
        before = scpu.meter.total_seconds
        faulty.issue_serial_number()
        assert scpu.meter.total_seconds - before >= 2.5

    def test_crash_before_leaves_state_untouched(self, scpu):
        faulty = FaultyScpu(
            scpu, FaultPlan().crash_before("issue_serial_number",
                                           after_ops=1))
        with pytest.raises(CrashError):
            faulty.issue_serial_number()
        assert scpu.current_serial_number == 0

    def test_crash_after_commits_then_dies(self, scpu):
        faulty = FaultyScpu(
            scpu, FaultPlan().crash_after("issue_serial_number",
                                          after_ops=1))
        with pytest.raises(CrashError):
            faulty.issue_serial_number()
        # The operation happened — the caller just never heard.
        assert scpu.current_serial_number == 1


class TestFaultyBlockStore:
    def test_transparent_io(self):
        faulty = FaultyBlockStore(MemoryBlockStore(), FaultPlan())
        key = faulty.put(b"payload")
        assert faulty.get(key) == b"payload"
        assert key in faulty
        assert faulty.size_of(key) == 7

    def test_transient_fault_raises_storage_error(self):
        faulty = FaultyBlockStore(MemoryBlockStore(),
                                  FaultPlan().transient(after_ops=1))
        with pytest.raises(StorageUnavailableError):
            faulty.put(b"x")
        assert faulty.put(b"x")  # next attempt lands

    def test_metadata_never_faulted(self):
        faulty = FaultyBlockStore(MemoryBlockStore(),
                                  FaultPlan(transient_rate=0.99, seed=1))
        assert list(faulty.keys()) == []
        assert "nope" not in faulty
