"""Telemetry under fault injection: one story, told twice, no drift.

The bus's snapshot and the legacy reports (``health_report``,
``cost_summary``, the queue ``report()``s) are two accountings of the
same run.  Under a chaotic burst — transient faults on every shard, one
card tripping tamper mid-burst — they must agree exactly: backlog
depths, failover and degradation counts, retry totals, and per-device
virtual seconds.  Divergence would mean the new telemetry invents or
loses events, which is exactly the failure mode the reconciliation in
:mod:`repro.obs.reconcile` exists to catch.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import ScpuUnavailableError
from repro.core.sharded import ShardedWormStore
from repro.core.worm import StrongWormStore
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.obs import TelemetryBus, reconcile_sharded
from repro.sim.manual_clock import ManualClock

pytestmark = pytest.mark.chaos


def build_observed_sharded(plans, bus, group_commit_size=4):
    """A fault-injected sharded store with *bus* observing every shard."""
    keyring = demo_keyring()
    clock = ManualClock()
    template = StoreConfig(group_commit_size=group_commit_size,
                           observe=bus).per_shard()
    stores = []
    for plan in plans:
        scpu = SecureCoprocessor(keyring=keyring, clock=clock)
        if plan is not None:
            scpu = FaultyScpu(scpu, plan)
        stores.append(StrongWormStore(config=template.replace(scpu=scpu)))
    return ShardedWormStore(
        stores,
        config=StoreConfig(shard_count=len(plans),
                           group_commit_size=group_commit_size,
                           observe=bus))


def chaotic_burst(store, records=60):
    """Weak-strength group-commit ingest (builds a strengthening backlog)."""
    receipts = []
    for i in range(records):
        flushed = store.submit(b"payload-%03d" % i, retention_seconds=3600.0,
                               strength=Strength.WEAK)
        if flushed:
            receipts.extend(flushed)
    receipts.extend(store.flush())
    return receipts


class TestSnapshotAgreesWithHealthReport:
    @pytest.fixture
    def observed(self):
        """4 shards, 8% transient faults everywhere, shard 1 dies."""
        bus = TelemetryBus()
        plans = [FaultPlan(seed=40 + i, transient_rate=0.08)
                 for i in range(4)]
        plans[1].tamper(after_ops=10)
        return build_observed_sharded(plans, bus), bus

    def test_snapshot_reconciles_after_chaotic_burst(self, observed):
        store, _ = observed
        receipts = chaotic_burst(store)
        assert len(receipts) == 60
        assert store.degraded_shards == (1,)
        assert reconcile_sharded(store, store.telemetry_snapshot()) == []

    def test_backlog_depth_agrees(self, observed):
        """The headline: both accountings see the same strengthening debt."""
        store, bus = observed
        chaotic_burst(store)
        legacy = sum(
            store.shard(i).strengthening.report(store.now)["backlog"]
            for i in range(4))
        assert legacy > 0  # weak burst + dead card: debt must exist
        assert bus.gauge_value("strengthen.backlog") == legacy
        snapshot = store.telemetry_snapshot()
        assert snapshot["gauges"]["strengthen.backlog"] == legacy

    def test_pending_records_gauge_matches_health(self, observed):
        store, bus = observed
        for i in range(7):  # a partial group stays pending, un-flushed
            store.submit(b"pending-%d" % i, strength=Strength.WEAK)
        health = store.health_report()
        assert health["pending_records"] > 0
        assert (bus.gauge_value("sharded.pending_records")
                == health["pending_records"])

    def test_failure_accounting_agrees(self, observed):
        store, bus = observed
        chaotic_burst(store)
        health = store.health_report()
        assert bus.counter("breaker.degraded") == len(
            health["degraded_shards"]) == 1
        assert bus.counter("sharded.failovers") == health["failovers"] >= 1
        retry = health["retry_total"]
        assert bus.counter("retry.retries") == retry["retries"] > 0
        assert bus.counter("retry.calls") == retry["calls"]

    def test_device_seconds_match_cost_summary(self, observed):
        store, bus = observed
        chaotic_burst(store)
        costs = store.cost_summary()
        for device in ("scpu", "host", "disk"):
            assert (bus.counter(f"device.{device}.seconds")
                    == pytest.approx(costs[device]))


class TestViolationAccountingUnderFaults:
    def test_no_double_count_when_strengthen_fails_mid_drain(self):
        """The PR 5 fix, end to end: an overdue entry whose strengthen
        keeps failing is one violation, however many retries it takes."""
        bus = TelemetryBus()
        plans = [FaultPlan(), FaultPlan()]
        plans[0].transient(op="strengthen", after_ops=1, count=99)
        store = build_observed_sharded(plans, bus, group_commit_size=1)
        receipt = store.write([b"burst"], strength=Strength.WEAK)
        shard = store.shard(receipt.shard_id)
        # Outlive the 512-bit lifetime before strengthening gets a turn.
        shard.scpu.clock.advance(60 * 60.0 + 100.0)

        for _ in range(3):  # three exhausted-retry drain attempts
            with pytest.raises(ScpuUnavailableError):
                shard.strengthening.drain(shard.now)

        assert shard.strengthening.lifetime_violations == 1
        assert bus.counter("strengthen.lifetime_violations") == 1
        # The backlog survived every failure — reported, not lost.
        assert shard.strengthening.report(shard.now)["backlog"] == 1
