"""The site-loss drill: kill a whole site mid-burst, rebuild, lose nothing.

The scenario the replication subsystem exists for: a multi-tenant
workload (Zipf tenants, diurnal arrivals, an end-of-day burst) is
pouring ≥100k records into the primary when the entire site — hosts,
disks, SCPU cards — is destroyed with no warning, catalog tail
unshipped and deferred tickets outstanding.  The drill then rebuilds a
fresh site from the untrusted standby (crashing the recovery process
once mid-way for good measure) and proves the compliance story end to
end: every acknowledged write is readable *and verifiable* on the
rebuilt site, every window authenticator re-verified, tickets redeem,
the books reconcile, and the recovery-time objective stays bounded in
virtual time.  A corrupted-replica variant proves the other half: a
standby that lies is detected, never laundered into the new store.
"""

from __future__ import annotations

import json

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import TamperedError
from repro.core.locator import RecordLocator
from repro.core.sharded import ShardedWormStore
from repro.faults import FaultPlan
from repro.obs import TelemetryBus
from repro.recovery import (RecoveryStage, ReplicaSite,
                            ReplicatedIntentJournal, ReplicationPump,
                            ReplicationTransport, SiteRecovery)
from repro.service import ServiceRequest, TenantConfig, WormService
from repro.sim.manual_clock import ManualClock
from repro.sim.workload import FixedSize, MultiTenantArrivals
from repro.storage.journal import MemoryIntentJournal

pytestmark = pytest.mark.chaos

#: Virtual-time recovery bound the drill enforces (half an hour).
RTO_BOUND_SECONDS = 1800.0

TENANTS = ("tenant0", "tenant1", "tenant2")
BATCH = 250            # records per service write_batch call
KILL_AT = 101_000      # offered records before the site dies; up to one
                       # unflushed batch per tenant is never acknowledged,
                       # so this leaves >=100k acknowledged writes
PUMP_EVERY = 4         # batches between replication cycles (leaves a tail)


def build_primary(plan=None, bus=None):
    clock = ManualClock()
    transport = ReplicationTransport(plan=plan, obs=bus)
    replica = ReplicaSite()
    journal = ReplicatedIntentJournal(
        MemoryIntentJournal(), transport, replica, clock=clock, obs=bus)
    store = ShardedWormStore.build(
        shard_count=2, keyring=demo_keyring(), clock=clock,
        config=StoreConfig(group_commit_size=64, observe=bus),
        journal=journal)
    return store, transport, replica


def build_service(store, ca):
    tenants = [TenantConfig(name, rate=5_000.0, burst=150_000,
                            max_deferred=64)
               for name in TENANTS]
    # One tiny tenant whose burst bucket exhausts immediately: its
    # extra writes defer, leaving live tickets outstanding when the
    # site dies (rate stays low enough that nothing refills mid-setup,
    # but the survivors can still redeem after failback).
    tenants.append(TenantConfig("smallco", rate=0.5, burst=4,
                                max_deferred=8))
    return WormService(store, ca=ca, tenants=tenants)


def run_workload(service, store, pump, ledger, kill_at=KILL_AT):
    """Drive the generator, batching per tenant; returns offered count."""
    workload = MultiTenantArrivals(
        TENANTS, FixedSize(32), days=1, night_rate=0.5, day_rate=300.0,
        burst_rate=3_000.0, burst_seconds=60.0, skew=1.1,
        users_per_tenant=10_000, hour_seconds=4.0, seed=42)
    buffers = {name: [] for name in TENANTS}
    current = store.now
    offered = batches = 0

    def flush_tenant(name):
        nonlocal batches
        payloads = buffers[name]
        if not payloads:
            return
        buffers[name] = []
        response = service.handle(ServiceRequest(
            operation="write_batch", tenant=name,
            params={"payloads": list(payloads),
                    "retention_seconds": 10 * 365 * 24 * 3600.0}))
        assert response.status == 201, response.problem
        for locator, payload in zip(response.body["locators"], payloads):
            ledger[locator] = payload
        batches += 1
        if batches % PUMP_EVERY == 0:
            pump.pump()

    for item in workload:
        if item.request.arrival > current:
            store.advance_clocks(item.request.arrival - current)
            current = item.request.arrival
        offered += 1
        buffers[item.tenant].append(
            b"%s|u%d|%d|" % (item.tenant.encode(), item.user, offered)
            + b"." * 8)
        if len(buffers[item.tenant]) >= BATCH:
            flush_tenant(item.tenant)
        if offered >= kill_at:
            break  # the site dies here: buffers and catalog tail lost
    return offered


class TestSiteLossDrill:
    def test_full_site_kill_mid_burst_loses_nothing(self, ca):
        plan = FaultPlan(transient_rate=0.02, seed=11)  # flaky WAN
        bus = TelemetryBus()
        store, transport, replica = build_primary(plan=plan, bus=bus)
        pump = ReplicationPump(store, transport, replica, ca=ca, obs=bus)
        service = build_service(store, ca)

        # Outstanding deferred tickets: smallco's bucket dies after 4.
        tickets = {}
        smallco_durable = {}
        for i in range(6):
            response = service.handle(ServiceRequest(
                operation="write", tenant="smallco",
                params={"payload": b"smallco-%d" % i,
                        "retention_seconds": 10 * 365 * 24 * 3600.0}))
            if response.status == 201:
                smallco_durable[response.body["locator"]] = b"smallco-%d" % i
            else:
                assert response.status == 202
                tickets[response.body["ticket"]] = b"smallco-%d" % i
        assert len(tickets) == 2

        ledger = dict(smallco_durable)
        offered = run_workload(service, store, pump, ledger)
        assert offered >= KILL_AT
        assert len(ledger) >= 100_000  # acknowledged writes to account for

        # --- the disaster: the whole site is gone, mid-burst, with a
        # catalog tail unshipped and artifacts still in flight.
        assert pump.unacked_count > 0 or transport.in_flight > 0
        del store, pump, transport

        # --- rebuild from the untrusted replica, crashing the recovery
        # process once after VERIFY and resuming from its checkpoint.
        standby = ShardedWormStore.build(
            shard_count=2, keyring=demo_keyring(), clock=ManualClock(),
            config=StoreConfig(group_commit_size=64))
        first = SiteRecovery(replica, standby, ca, obs=bus)
        while first.stage != RecoveryStage.REPLAY:
            first.step()
        saved = json.loads(json.dumps(first.checkpoint()))  # crash here
        recovery = SiteRecovery(replica, standby, ca, obs=bus,
                                checkpoint=saved)
        report = recovery.run()

        assert report.complete
        assert report.records_verified == report.records_replayed > 0
        assert report.windows_verified >= 2 * len(standby.shards)
        assert report.journal_requeued > 0  # the unshipped tail
        assert not report.unverifiable
        assert report.rto_seconds <= RTO_BOUND_SECONDS
        assert standby.site_state == "active"

        # --- zero acknowledged-write loss: every 201 locator resolves
        # on the rebuilt site to its original payload, and every VR it
        # landed in verifies against the *standby's* own proofs.
        service.promote(standby, report)
        client = standby.make_client(ca)
        verified_sns = set()
        for scoped, payload in ledger.items():
            packed = scoped.split("/", 1)[1]
            new_packed = report.locator_mapping.get(packed, packed)
            assert standby.read_record(new_packed) == payload
            new = RecordLocator.unpack(new_packed)
            if (new.shard_id, new.sn) not in verified_sns:
                verified_sns.add((new.shard_id, new.sn))
                verified = client.verify_read(
                    standby.shard(new.shard_id).read(new.sn), new.sn)
                assert verified.status == "active"
        assert len(verified_sns) >= report.records_replayed

        # --- the dead site's deferred tickets redeem on the new one.
        standby.advance_clocks(10.0)
        for ticket, payload in tickets.items():
            response = service.handle(ServiceRequest(
                operation="redeem", tenant="smallco",
                params={"ticket": ticket}))
            assert response.status == 200
            assert response.body["state"] == "durable"
            packed = response.body["locator"].split("/", 1)[1]
            assert standby.read_record(packed) == payload

        # --- accounting reconciles clean after failback, and the
        # replication/recovery telemetry tells the story.
        assert service.reconcile() == []
        counters = bus.snapshot()["counters"]
        assert counters["replication.journal_ops"] >= len(ledger)
        assert counters["replication.artifacts_shipped"] > 0
        assert counters["recovery.records_replayed"] > 0
        assert counters["recovery.journal_requeued"] > 0
        assert counters["recovery.stages_completed"] >= 5


class TestCorruptedReplicaVariant:
    def test_lying_standby_is_terminal_not_laundered(self, ca):
        store, transport, replica = build_primary()
        pump = ReplicationPump(store, transport, replica, ca=ca)
        service = build_service(store, ca)
        ledger = {}
        run_workload(service, store, pump, ledger, kill_at=2_000)
        # Let the standby catch up fully, then have its disk start lying.
        for _ in range(60):
            store.advance_clocks(2.0)
            pump.pump()
            if pump.unacked_count == 0 and transport.in_flight == 0:
                break
        assert replica.source_certificates
        # Flip one byte of one replicated payload block at the standby.
        for shard_id in replica.shard_ids:
            history = replica._shards[shard_id].history
            payload = next((p for p in history if p.get("blocks")), None)
            if payload is not None:
                key = sorted(payload["blocks"])[0]
                data = payload["blocks"][key]
                payload["blocks"][key] = \
                    bytes([data[0] ^ 0x01]) + data[1:]
                break
        standby = ShardedWormStore.build(
            shard_count=2, keyring=demo_keyring(), clock=ManualClock(),
            config=StoreConfig(group_commit_size=64))
        recovery = SiteRecovery(replica, standby, ca)
        with pytest.raises(TamperedError):
            recovery.run()
        # VERIFY never completed, so nothing was imported: the rebuilt
        # site holds zero records rather than one forged one.
        assert RecoveryStage.VERIFY not in recovery.checkpoint()["completed"]
        assert all(len(s.vrdt.active_sns) == 0 for s in standby.shards)
