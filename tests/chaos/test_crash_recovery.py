"""Crash recovery: the intent journal closes the submit→flush hole.

A host crash between ``submit()`` and the group-commit flush would lose
accepted records silently — the exact failure a compliance store cannot
have.  These tests crash the process (discard the store / replay the
file) at every interesting point and assert the journal's at-least-once
contract: after restart, every unflushed submission is back in the
pending queue and commits normally.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import CrashError
from repro.core.sharded import ShardedWormStore
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.manual_clock import ManualClock
from repro.storage.journal import FileIntentJournal, MemoryIntentJournal

pytestmark = pytest.mark.chaos


def make_store(journal, keyring=None, clock=None, shard_count=2,
               group_commit_size=4):
    return ShardedWormStore.build(
        shard_count=shard_count,
        keyring=keyring if keyring is not None else demo_keyring(),
        clock=clock if clock is not None else ManualClock(),
        config=StoreConfig(group_commit_size=group_commit_size),
        journal=journal)


@pytest.fixture(params=["memory", "file"])
def journal(request, tmp_path):
    if request.param == "memory":
        return MemoryIntentJournal()
    return FileIntentJournal(tmp_path / "intent.jsonl")


class TestCrashBetweenSubmitAndFlush:
    def test_restart_requeues_unflushed_records(self, journal):
        keyring = demo_keyring()
        store = make_store(journal, keyring=keyring)
        # Three submissions below the group-commit threshold: all pending.
        for i in range(3):
            assert store.submit(b"pending-%d" % i) is None
        assert store.pending_count == 3
        del store  # crash: pending queue was main-CPU memory only

        recovered = make_store(journal, keyring=keyring)
        assert recovered.pending_count == 3  # replayed from the journal
        receipts = recovered.flush()
        assert len(receipts) == 3
        payloads = {recovered.read_record(r.locator) for r in receipts}
        assert payloads == {b"pending-0", b"pending-1", b"pending-2"}
        assert journal.pending_count() == 0  # acknowledged on commit

    def test_committed_records_are_not_replayed(self, journal):
        keyring = demo_keyring()
        store = make_store(journal, keyring=keyring, group_commit_size=2)
        flushed = []
        for i in range(5):  # 2 auto-flushes + 1 leftover
            result = store.submit(b"rec-%d" % i)
            if result:
                flushed.extend(result)
        assert len(flushed) == 4
        del store

        recovered = make_store(journal, keyring=keyring)
        # Only the one unflushed record comes back.
        assert recovered.pending_count == 1
        receipts = recovered.flush()
        assert len(receipts) == 1
        assert recovered.read_record(receipts[0].locator) == b"rec-4"

    def test_write_kwargs_survive_the_crash(self, journal):
        keyring = demo_keyring()
        store = make_store(journal, keyring=keyring)
        store.submit(b"held", policy="sox")
        del store

        recovered = make_store(journal, keyring=keyring)
        receipts = recovered.flush()
        assert len(receipts) == 1
        vrd = receipts[0].vrd
        assert vrd.attr.policy == "sox"


class TestInjectedMidCommitCrash:
    def test_crash_before_witness_loses_nothing(self, tmp_path):
        """The host dies inside the group commit, before the SCPU
        witnessed anything: on restart the journal replays every record
        of the torn group."""
        keyring = demo_keyring()
        journal = FileIntentJournal(tmp_path / "intent.jsonl")
        clock = ManualClock()
        plan = FaultPlan().crash_before("witness_write", after_ops=3)
        scpu = FaultyScpu(SecureCoprocessor(keyring=keyring, clock=clock),
                          plan)
        from repro.core.worm import StrongWormStore
        template = StoreConfig(group_commit_size=2).per_shard()
        store = ShardedWormStore(
            [StrongWormStore(config=template.replace(scpu=scpu))],
            config=StoreConfig(shard_count=1, group_commit_size=2),
            journal=journal)

        store.submit(b"first")
        with pytest.raises(CrashError):
            store.submit(b"second")  # triggers the auto-flush that crashes
        del store  # the "process" dies with the exception

        recovered = make_store(journal, keyring=keyring, shard_count=1)
        assert recovered.pending_count == 2
        receipts = recovered.flush()
        payloads = {recovered.read_record(r.locator) for r in receipts}
        assert payloads == {b"first", b"second"}

    def test_crash_after_commit_replays_as_duplicate(self, tmp_path):
        """The host dies after the SCPU witnessed the group but before
        the journal acknowledgement: at-least-once means the records
        replay and commit again — under a WORM regime a duplicate is
        harmless (two SNs, same bytes) while a lost record is a
        compliance violation."""
        keyring = demo_keyring()
        journal = FileIntentJournal(tmp_path / "intent.jsonl")
        clock = ManualClock()
        plan = FaultPlan().crash_after("witness_write", after_ops=3)
        scpu = FaultyScpu(SecureCoprocessor(keyring=keyring, clock=clock),
                          plan)
        from repro.core.worm import StrongWormStore
        template = StoreConfig(group_commit_size=2).per_shard()
        store = ShardedWormStore(
            [StrongWormStore(config=template.replace(scpu=scpu))],
            config=StoreConfig(shard_count=1, group_commit_size=2),
            journal=journal)

        store.submit(b"first")
        with pytest.raises(CrashError):
            store.submit(b"second")
        del store

        recovered = make_store(journal, keyring=keyring, shard_count=1)
        assert recovered.pending_count == 2  # never acknowledged
        receipts = recovered.flush()
        assert len(receipts) == 2
        payloads = [recovered.read_record(r.locator) for r in receipts]
        assert sorted(payloads) == [b"first", b"second"]
        assert journal.pending_count() == 0
