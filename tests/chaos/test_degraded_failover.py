"""Degraded-mode acceptance: one card dies mid-burst, nothing is lost.

The headline chaos scenario from the failure-domain design: a 4-shard
store ingests a burst while one shard's SCPU trips tamper response and
every shard drops a fraction of its requests.  The invariants:

* **zero accepted records lost** — every receipt the store issued reads
  back and client-verifies;
* **writes continue** — healthy shards keep committing after the trip;
* **degraded shard serves reads** — its committed records stay readable
  and verifiable forever (proofs are stored artifacts);
* **fail loud at total loss** — all cards gone raises ``TamperedError``.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import TamperedError
from repro.core.health import BreakerState
from repro.core.sharded import ShardedWormStore
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor
from repro.sim.manual_clock import ManualClock

pytestmark = pytest.mark.chaos


def build_faulty_sharded(plans, group_commit_size=4, journal=None,
                         keyring=None):
    """A sharded store whose per-shard SCPUs run under *plans*."""
    keyring = keyring if keyring is not None else demo_keyring()
    clock = ManualClock()
    template = StoreConfig(group_commit_size=group_commit_size).per_shard()
    stores = []
    for plan in plans:
        scpu = SecureCoprocessor(keyring=keyring, clock=clock)
        if plan is not None:
            scpu = FaultyScpu(scpu, plan)
        stores.append(StrongWormStore(config=template.replace(scpu=scpu)))
    return ShardedWormStore(
        stores,
        config=StoreConfig(shard_count=len(plans),
                           group_commit_size=group_commit_size),
        journal=journal)


@pytest.fixture
def chaotic_store():
    """4 shards, >=5% transient faults everywhere, shard 1 dies mid-burst."""
    plans = [FaultPlan(seed=40 + i, transient_rate=0.08) for i in range(4)]
    plans[1].tamper(after_ops=10)
    return build_faulty_sharded(plans)


class TestZeroLossUnderFaults:
    def test_no_accepted_record_is_lost(self, chaotic_store, ca):
        store = chaotic_store
        receipts = []
        for i in range(60):
            flushed = store.submit(b"payload-%03d" % i,
                                   retention_seconds=3600.0)
            if flushed:
                receipts.extend(flushed)
        receipts.extend(store.flush())

        # Every submitted record was accepted and got a receipt.
        assert len(receipts) == 60
        assert store.pending_count == 0
        # The dead shard really died, and work failed over around it.
        assert store.degraded_shards == (1,)
        assert store.failover_count >= 1
        # Zero loss: every receipt reads back and client-verifies,
        # including the ones committed on the now-dead shard.
        client = store.make_client(ca)
        on_dead_shard = 0
        for receipt in receipts:
            result = store.read(receipt.locator)
            verified = client.verify_read(result, receipt.sn)
            assert verified.status == "active"
            if receipt.shard_id == 1:
                on_dead_shard += 1
        assert on_dead_shard > 0  # the trip happened mid-burst, not before

    def test_writes_continue_on_healthy_shards(self, chaotic_store):
        store = chaotic_store
        for i in range(60):
            store.submit(b"payload-%03d" % i, retention_seconds=3600.0)
        store.flush()
        assert store.degraded_shards == (1,)
        # The store still ingests: new writes land on healthy shards only.
        after = [store.write([b"after-death-%d" % i]) for i in range(8)]
        assert all(r.shard_id != 1 for r in after)
        assert set(store.writable_shards) == {0, 2, 3}

    def test_health_report_covers_dead_shards(self, chaotic_store):
        store = chaotic_store
        for i in range(60):
            store.submit(b"payload-%03d" % i, retention_seconds=3600.0)
        store.flush()
        report = store.health_report()
        by_id = {s["shard_id"]: s for s in report["shards"]}
        assert by_id[1]["state"] == BreakerState.DEGRADED
        assert by_id[1]["tamper_tripped"] is True
        assert report["degraded_shards"] == [1]
        assert report["retry_total"]["retries"] > 0
        assert report["failovers"] >= 1


class TestTotalLoss:
    def test_all_cards_dead_fails_loud(self):
        # Store construction itself costs 2 SCPU ops per shard; trip on
        # the first post-construction call of each card.
        plans = [FaultPlan().tamper(after_ops=3) for _ in range(3)]
        store = build_faulty_sharded(plans, group_commit_size=1)
        with pytest.raises(TamperedError):
            for i in range(10):
                store.submit(b"payload-%d" % i)

    def test_certificates_require_a_live_card(self, ca):
        plans = [FaultPlan().tamper(after_ops=3) for _ in range(2)]
        store = build_faulty_sharded(plans, group_commit_size=1)
        with pytest.raises(TamperedError):
            for i in range(10):
                store.submit(b"payload-%d" % i)
        with pytest.raises(TamperedError):
            store.certificates(ca)


class TestBreakerRouting:
    def test_transient_storm_opens_breaker_and_routes_away(self):
        # Shard 0 drops every witness_write for a while: its breaker
        # opens and round-robin skips it without any record loss.
        plans = [FaultPlan() for _ in range(3)]
        plans[0].transient(op="witness_write", after_ops=1, count=50)
        store = build_faulty_sharded(plans, group_commit_size=1)
        receipts = []
        for i in range(12):
            flushed = store.submit(b"payload-%d" % i)
            if flushed:
                receipts.extend(flushed)
        receipts.extend(store.flush())
        assert len(receipts) == 12
        assert store.degraded_shards == ()
        assert store.breaker(0).snapshot(store.now).transient_failures > 0
        # Everything that shard 0 bounced landed elsewhere.
        for receipt in receipts:
            assert store.read_record(receipt.locator).startswith(b"payload-")

    def test_single_write_fails_over_mid_call(self):
        plans = [FaultPlan() for _ in range(2)]
        # Shard 0's card dies on its first post-construction service call.
        plans[0].tamper(after_ops=3)
        store = build_faulty_sharded(plans, group_commit_size=1)
        receipt = store.write([b"must-land"])  # round-robin starts at 0
        assert receipt.shard_id == 1
        assert store.degraded_shards == (0,)
        assert store.read_record(receipt.locator) == b"must-land"
