"""W001 trust-domain: SCPU/key-store internals stay in repro.hardware."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W001",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_private_scpu_attribute_fires():
    assert rules("""
        def persist(store):
            return store.scpu._keys
    """) == ["W001"]


def test_private_on_retry_view_fires_too():
    # Reaching privates *through* the wrapped view launders the same
    # boundary as reaching into the raw device.
    assert rules("""
        def peek(self):
            return self._scpu_rt._policy
    """) == ["W001"]


def test_keyring_internals_fire():
    assert rules("""
        def leak(self):
            return self.keyring._s_key
    """) == ["W001"]


def test_public_service_surface_is_fine():
    assert rules("""
        def commit(store, data, sn, now):
            return store.scpu.witness_write(data, sn, now)
    """) == []


def test_dunder_access_is_fine():
    assert rules("""
        def kind(store):
            return store.scpu.__class__
    """) == []


def test_hardware_package_is_exempt():
    source = """
        def zeroize(self):
            self.scpu._keys = None
    """
    assert rules(source, path="src/repro/hardware/tamper.py") == []
    assert rules(source) == ["W001"]


def test_fires_in_test_files_as_well():
    # White-box tests are exactly what the committed baseline is for.
    assert rules("""
        def test_zeroized(scpu):
            assert scpu._keys is None
    """, path="tests/hardware/test_fixture.py") == ["W001"]


def test_unrelated_private_receivers_are_ignored():
    assert rules("""
        def tally(self):
            return self.metrics._counters
    """) == []


# -- accumulator trapdoor confinement ---------------------------------------


def test_trapdoor_import_fires_outside_hardware():
    assert rules("""
        from repro.crypto.accumulator import TrapdoorAccumulator

        def build():
            return TrapdoorAccumulator(bits=512)
    """) == ["W001", "W001"]


def test_trapdoor_attribute_reference_fires():
    assert rules("""
        import repro.crypto.accumulator as acc

        def build():
            return acc.TrapdoorAccumulator(bits=512)
    """) == ["W001"]


def test_trapdoor_phi_access_fires():
    assert rules("""
        def leak(accumulator):
            return accumulator._phi
    """) == ["W001"]


def test_trapdoor_allowed_in_hardware_package():
    source = """
        from repro.crypto.accumulator import TrapdoorAccumulator

        def provision(self):
            self._accumulators["active"] = TrapdoorAccumulator()
    """
    assert rules(source, path="src/repro/hardware/scpu.py") == []
    assert rules(source) == ["W001", "W001"]


def test_trapdoor_allowed_in_its_home_module():
    source = """
        class TrapdoorAccumulator:
            def zeroize(self):
                self._phi = 0
    """
    assert rules(source, path="src/repro/crypto/accumulator.py") == []


def test_trapdoor_free_surface_is_fine():
    assert rules("""
        from repro.crypto.accumulator import (
            WitnessDirectory,
            hash_to_prime,
            verify_membership,
        )

        def check(sn, witness, value, modulus):
            return verify_membership(witness, hash_to_prime(sn), value,
                                     modulus)
    """) == []
