"""W005 taxonomy: raises in src/repro stay WormError-rooted."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W005",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_ad_hoc_runtime_error_fires():
    assert rules("""
        def check(flag):
            if not flag:
                raise RuntimeError("broken")
    """) == ["W005"]


def test_ad_hoc_key_error_fires():
    assert rules("""
        def lookup(table, name):
            if name not in table:
                raise KeyError(name)
            return table[name]
    """) == ["W005"]


def test_taxonomy_exceptions_are_fine():
    assert rules("""
        from repro.core.errors import TamperedError, WormError

        def check(flag):
            if flag == "tamper":
                raise TamperedError("enclosure breached")
            raise WormError("generic")
    """) == []


def test_argument_validation_stdlib_is_fine():
    assert rules("""
        def configure(count):
            if count < 0:
                raise ValueError("count cannot be negative")
            if not isinstance(count, int):
                raise TypeError("count must be an int")
    """) == []


def test_local_subclass_of_worm_error_is_fine():
    assert rules("""
        from repro.core.errors import WormError

        class FixtureError(WormError):
            pass

        class DeeperError(FixtureError):
            pass

        def check():
            raise DeeperError("rooted two levels down")
    """) == []


def test_names_imported_from_repro_are_trusted():
    # The taxonomy module is where roots are audited; importers of
    # *Error names from repro.* are assumed compliant.
    assert rules("""
        from repro.storage.journal import JournalError

        def check():
            raise JournalError("torn line")
    """) == []


def test_reraising_a_bound_variable_is_fine():
    assert rules("""
        def drain(errors):
            last_exc = None
            for exc in errors:
                last_exc = exc
            if last_exc is not None:
                raise last_exc
    """) == []


def test_tests_are_out_of_scope():
    assert rules("""
        def test_check():
            raise RuntimeError("test scaffolding may raise anything")
    """, path="tests/core/test_fixture.py") == []


def test_taxonomy_self_updates_from_errors_module():
    # W005 imports repro.core.errors.__all__ at runtime: exceptions added
    # to the taxonomy are legal without touching the lint.
    from repro.core import errors
    assert rules(f"""
        from repro.core.errors import {errors.__all__[0]}

        def check():
            raise {errors.__all__[0]}("from the live taxonomy")
    """) == []
