"""W007 verify-before-trust: the interprocedural taint fixtures.

Every fixture is a small virtual project (``{path: source}``) linted
with :func:`repro.lint.lint_project_sources` — the same entry point the
real project run uses, minus the filesystem.
"""

from __future__ import annotations

from textwrap import dedent
from typing import Dict

from repro.lint import lint_project_sources


def rules(sources: Dict[str, str], select=("W007",)):
    return [f for f in lint_project_sources(
        {path: dedent(src) for path, src in sources.items()}, select=select)]


# ------------------------------------------------------------------ positives

def test_block_store_bytes_reaching_catalog_import_are_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                payload = self.blocks.get(sn)
                self.catalog.index_record(sn, payload)
    """})
    assert [f.rule for f in findings] == ["W007"]
    assert "index_record" in findings[0].message


def test_taint_flows_through_a_helper_function():
    # The read, the (missing) verify, and the sink span two functions —
    # the per-file rules are blind to exactly this.
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def _fetch(self, sn):
                return self.blocks.get(sn)

            def rebuild(self, sn):
                payload = self._fetch(sn)
                self.catalog.index_record(sn, payload)
    """})
    assert [f.rule for f in findings] == ["W007"]


def test_taint_flows_across_modules():
    findings = rules({
        "src/repro/storage/reader.py": """
            def fetch_raw(blocks, sn):
                return blocks.get(sn)
        """,
        "src/repro/core/fixture.py": """
            from repro.storage.reader import fetch_raw

            class Importer:
                def rebuild(self, sn):
                    payload = fetch_raw(self.blocks, sn)
                    self.catalog.index_record(sn, payload)
        """,
    })
    assert [(f.path, f.rule) for f in findings] == [
        ("src/repro/core/fixture.py", "W007")]


def test_seeded_verify_skip_on_one_path_is_caught():
    # The acceptance-criterion bug: the sanitizer call was removed on
    # ONE branch.  Union-merge at the join means the value is tainted
    # when it reaches the sink.
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn, fast_path):
                payload = self.blocks.get(sn)
                if fast_path:
                    pass   # verify call was deleted here
                else:
                    self.client.verify_read(payload, sn)
                self.catalog.index_record(sn, payload)
    """})
    assert [f.rule for f in findings] == ["W007"]


def test_replica_payload_replayed_without_vrd_check_is_flagged():
    findings = rules({"src/repro/recovery/fixture.py": """
        class Replayer:
            def replay(self, shard_id):
                image = self.replica.materialize_shard(shard_id)
                for entry in image:
                    self.store.import_record(entry.attr, entry.payload)
    """})
    assert [f.rule for f in findings] == ["W007"]


def test_tainted_return_from_client_surface_is_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        class WormClient:
            def read_record(self, sn):
                raw = self.blocks.get(sn)
                return raw
    """})
    assert [f.rule for f in findings] == ["W007"]
    assert "WormClient.read_record" in findings[0].message


def test_retry_wrapped_block_store_read_is_a_source():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                raw = self.retry.call("block_store.get", self.blocks.get, sn)
                self.catalog.index_record(sn, raw)
    """})
    assert [f.rule for f in findings] == ["W007"]


# ------------------------------------------------------------------ negatives

def test_verified_on_every_path_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn, fast_path):
                payload = self.blocks.get(sn)
                if fast_path:
                    self.client.verify_read(payload, sn)
                else:
                    self.client.verify_read(payload, sn)
                self.catalog.index_record(sn, payload)
    """})
    assert findings == []


def test_sanitizer_before_sink_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                payload = self.blocks.get(sn)
                vrd = self.client.verify_read(payload, sn)
                self.catalog.index_record(sn, payload)
    """})
    assert findings == []


def test_sanitizer_result_is_clean_at_the_sink():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                verified = self.client.verify_read(self.blocks.get(sn), sn)
                self.catalog.index_record(sn, verified)
    """})
    assert findings == []


def test_parameters_are_not_treated_as_tainted():
    # Run-A semantics: W007 asks whether untrusted *reads* reach sinks,
    # not whether arbitrary arguments do — otherwise every verify_read
    # returning its own argument's fields would flag.
    findings = rules({"src/repro/core/fixture.py": """
        class WormClient:
            def verify_read(self, result, requested_sn):
                self._check_envelope(result)
                return result
    """})
    assert findings == []


def test_untainted_import_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                payload = self.journal[sn]
                self.catalog.index_record(sn, payload)
    """})
    assert findings == []


def test_suppression_comment_silences_w007():
    findings = rules({"src/repro/core/fixture.py": """
        class Importer:
            def rebuild(self, sn):
                payload = self.blocks.get(sn)
                self.catalog.index_record(sn, payload)  # wormlint: disable=W007
    """})
    assert findings == []
