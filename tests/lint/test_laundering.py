"""W006 no-laundering: weak witnessing must feed the strengthening queue."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W006",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_weak_witness_without_enqueue_fires():
    assert rules("""
        def flush(self, data, sn, now):
            signed = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.WEAK)
            self.vrdt.insert_active(signed)
    """) == ["W006"]


def test_hmac_witness_without_enqueue_fires():
    assert rules("""
        def flush(self, data, sn, now):
            return_value = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.HMAC)
            self.vrdt.insert_active(return_value)
    """) == ["W006"]


def test_weak_witness_with_enqueue_is_fine():
    assert rules("""
        def flush(self, data, sn, now, lifetime):
            signed = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.WEAK)
            self.strengthening.enqueue(sn, now, lifetime)
            self.vrdt.insert_active(signed)
    """) == []


def test_deferred_hash_queue_also_counts():
    assert rules("""
        def flush(self, data, sn, now):
            signed = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.HMAC)
            self.hash_verification.enqueue(sn, now)
            self.vrdt.insert_active(signed)
    """) == []


def test_strong_witnessing_needs_no_queue():
    assert rules("""
        def write(self, data, sn, now):
            signed = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.STRONG)
            self.vrdt.insert_active(signed)
    """) == []


def test_omitted_strength_defaults_strong():
    assert rules("""
        def write(self, data, sn, now):
            signed = self._scpu_rt.witness_write(data, sn, now)
            self.vrdt.insert_active(signed)
    """) == []


def test_positional_weak_strength_fires():
    assert rules("""
        def flush(self, data, sn, now):
            signed = self._scpu_rt.witness_write(
                data, sn, now, Strength.WEAK)
            self.vrdt.insert_active(signed)
    """) == ["W006"]


def test_public_function_returning_witness_output_fires():
    # Even at STRONG the result escapes with no window left to enqueue a
    # downgrade — the public surface must materialize first.
    assert rules("""
        def witness(self, data, sn, now):
            return self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.STRONG)
    """) == ["W006"]


def test_private_helper_may_return_witness_output():
    assert rules("""
        def _witness(self, data, sn, now):
            return self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.STRONG)
    """) == []


def test_only_core_is_in_scope():
    source = """
        def flush(self, data, sn, now):
            signed = self._scpu_rt.witness_write(
                data, sn, now, strength=Strength.WEAK)
            self.vrdt.insert_active(signed)
    """
    assert rules(source, path="src/repro/baselines/fixture.py") == []
    assert rules(source, path="tests/core/test_fixture.py") == []
