"""Diff-aware gating: hunk parsing and the per-rule filter asymmetry."""

from __future__ import annotations

import subprocess

import pytest

from repro.lint.diff import changed_lines, filter_findings, merge_base
from repro.lint.engine import Finding


def _finding(rule="W001", path="src/repro/core/x.py", line=10):
    return Finding(rule=rule, path=path, line=line, col=0,
                   message="m", source_line="s")


# ----------------------------------------------------------- filter_findings

def test_module_rule_findings_filter_strictly_by_line():
    changes = {"src/repro/core/x.py": {10, 11}}
    kept = filter_findings(
        [_finding(line=10), _finding(line=50)], changes)
    assert [f.line for f in kept] == [10]


def test_findings_in_untouched_files_are_dropped():
    kept = filter_findings(
        [_finding(path="src/repro/core/other.py")],
        {"src/repro/core/x.py": {10}})
    assert kept == []


@pytest.mark.parametrize("rule", ["W007", "W008", "W009"])
def test_project_rule_findings_are_kept_per_file_not_per_line(rule):
    # A taint chain is not a per-line property: the finding's line may be
    # far from the edit that created it (e.g. a deleted sanitizer call).
    changes = {"src/repro/core/x.py": {200}}
    kept = filter_findings([_finding(rule=rule, line=10)], changes)
    assert [f.rule for f in kept] == [rule]


# -------------------------------------------------------------- git plumbing

def _git(tmp_path, *args):
    subprocess.run(["git", *args], cwd=tmp_path, check=True,
                   capture_output=True)


@pytest.fixture()
def repo(tmp_path, monkeypatch):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "t@example.invalid")
    _git(tmp_path, "config", "user.name", "t")
    (tmp_path / "mod.py").write_text("a = 1\nb = 2\nc = 3\n")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_changed_lines_reports_edits_and_insertions(repo):
    (repo / "mod.py").write_text("a = 1\nb = 20\nb2 = 21\nc = 3\n")
    assert changed_lines("HEAD") == {"mod.py": {2, 3}}


def test_changed_lines_ignores_non_python_and_deletions(repo):
    (repo / "notes.txt").write_text("hi\n")
    _git(repo, "add", "notes.txt")
    (repo / "mod.py").write_text("a = 1\nc = 3\n")   # pure deletion
    assert changed_lines("HEAD") == {}


def test_changed_lines_sees_new_files(repo):
    (repo / "fresh.py").write_text("x = 1\ny = 2\n")
    _git(repo, "add", "fresh.py")
    assert changed_lines("HEAD") == {"fresh.py": {1, 2}}


def test_merge_base_of_head_with_itself(repo):
    base = merge_base("HEAD")
    head = subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo,
                          capture_output=True, text=True).stdout.strip()
    assert base == head


def test_git_failures_surface_as_value_errors(repo):
    with pytest.raises(ValueError, match="git"):
        changed_lines("no-such-ref")
