"""Baseline mechanics: grandfathering by line *content*, never by number."""

from __future__ import annotations

import pytest

from repro.lint import Baseline
from repro.lint.engine import Finding


def _finding(rule="W001", path="tests/x.py", line=10,
             source_line="assert scpu._keys is None"):
    return Finding(rule=rule, path=path, line=line, col=0,
                   message="m", source_line=source_line)


def test_matched_findings_are_subtracted():
    baseline = Baseline.from_findings([_finding()])
    fresh, matched, stale = baseline.partition([_finding()])
    assert fresh == []
    assert matched == 1
    assert stale == []


def test_line_number_drift_still_matches():
    # Fingerprints are (rule, path, normalized text): editing unrelated
    # parts of the file must not resurrect grandfathered findings.
    baseline = Baseline.from_findings([_finding(line=10)])
    fresh, matched, _ = baseline.partition(
        [_finding(line=99, source_line="assert  scpu._keys   is None")])
    assert fresh == []
    assert matched == 1


def test_new_findings_stay_fresh():
    baseline = Baseline.from_findings([_finding()])
    intruder = _finding(source_line="scpu._sign_deletion_window(1, 2)")
    fresh, matched, _ = baseline.partition([_finding(), intruder])
    assert fresh == [intruder]
    assert matched == 1


def test_counts_cap_identical_lines():
    # Two identical grandfathered lines, three occurrences: one is new.
    baseline = Baseline.from_findings([_finding(), _finding()])
    fresh, matched, _ = baseline.partition(
        [_finding(line=1), _finding(line=2), _finding(line=3)])
    assert matched == 2
    assert len(fresh) == 1


def test_fixed_entries_surface_as_stale():
    baseline = Baseline.from_findings([_finding()])
    fresh, matched, stale = baseline.partition([])
    assert fresh == [] and matched == 0
    assert len(stale) == 1
    assert "W001" in stale[0]


def test_dump_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(), _finding()]).dump(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 2
    fresh, matched, stale = reloaded.partition([_finding(), _finding()])
    assert fresh == [] and matched == 2 and stale == []


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 2, "findings": []}')
    with pytest.raises(ValueError, match="version-1"):
        Baseline.load(path)


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(ValueError, match="unreadable"):
        Baseline.load(path)


# -------------------------------------------------------------- maintenance

def test_pruned_to_drops_entries_no_longer_found():
    baseline = Baseline.from_findings(
        [_finding(), _finding(source_line="gone()")])
    pruned, dropped = baseline.pruned_to([_finding()])
    assert len(pruned) == 1
    assert len(dropped) == 1 and "gone()" in dropped[0]


def test_pruned_to_caps_counts_but_never_adds():
    baseline = Baseline.from_findings([_finding(), _finding()])
    pruned, dropped = baseline.pruned_to(
        [_finding(),                       # one of two survives
         _finding(source_line="brand_new()")])   # never enters the baseline
    assert len(pruned) == 1
    assert dropped and "(x1)" in dropped[0]
    fresh, matched, _ = pruned.partition([_finding(source_line="brand_new()")])
    assert matched == 0 and len(fresh) == 1


def test_pruned_to_is_a_noop_when_everything_still_fires():
    baseline = Baseline.from_findings([_finding()])
    pruned, dropped = baseline.pruned_to([_finding()])
    assert dropped == [] and len(pruned) == 1


def test_growth_since_reports_new_and_increased_entries():
    old = Baseline.from_findings([_finding()])
    new = Baseline.from_findings(
        [_finding(), _finding(), _finding(source_line="added()")])
    grown = new.growth_since(old)
    assert len(grown) == 2
    assert any("added()" in g for g in grown)
    assert any("(+1)" in g for g in grown)


def test_growth_since_ignores_shrinkage():
    old = Baseline.from_findings([_finding(), _finding(source_line="x()")])
    new = Baseline.from_findings([_finding()])
    assert new.growth_since(old) == []


def test_loads_parses_text_and_labels_errors():
    assert len(Baseline.loads('{"version": 1, "findings": []}')) == 0
    with pytest.raises(ValueError, match="ref:wormlint.baseline.json"):
        Baseline.loads("nonsense", label="ref:wormlint.baseline.json")
