"""Integration: the repo itself lints clean, and the CLI gates on it."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import Baseline, lint_paths
from repro.lint.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(*argv: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300)


def test_repo_is_clean_modulo_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)   # baseline fingerprints use repo-relative paths
    try:
        result = lint_paths(["src", "tests"], baseline=baseline)
    finally:
        os.chdir(cwd)
    assert result.clean, "\n".join(f.location() + " " + f.rule
                                   for f in result.findings)
    assert result.stale_baseline == [], result.stale_baseline
    assert result.files_checked > 100


def test_cli_exits_zero_on_the_repo():
    proc = _run_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_flags_a_seeded_violation(tmp_path):
    # The acceptance gate: re-introducing a wall-clock read must fail the
    # build. Seed one into a scratch tree and watch the CLI go red.
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "W002" in proc.stdout


def test_cli_baseline_does_not_mask_new_findings(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    proc = _run_cli("--baseline", str(REPO_ROOT / DEFAULT_BASELINE_NAME),
                    str(bad))
    assert proc.returncode == 1


def test_cli_json_format(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    proc = _run_cli("--format", "json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["summary"]["new_findings"] == 1
    assert payload["findings"][0]["rule"] == "W002"


def test_cli_select_restricts_rules(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    proc = _run_cli("--select", "W001", str(bad))
    assert proc.returncode == 0


def test_cli_write_baseline_then_clean(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    wrote = _run_cli("--write-baseline", "--baseline", str(baseline),
                     str(bad), cwd=tmp_path)
    assert wrote.returncode == 0
    assert baseline.exists()
    rerun = _run_cli("--baseline", str(baseline), str(bad), cwd=tmp_path)
    assert rerun.returncode == 0
    assert "grandfathered" in rerun.stdout


def test_cli_usage_errors_exit_two(tmp_path):
    assert _run_cli("--select", "W999", "src").returncode == 2
    assert _run_cli(str(tmp_path / "missing")).returncode == 2


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ("W001", "W002", "W003", "W004", "W005", "W006",
                 "W007", "W008", "W009"):
        assert rule in proc.stdout
    assert "(advisory)" in proc.stdout     # W009 is marked as such
    assert "[project]" in proc.stdout


def test_cli_project_mode_is_clean_on_the_repo():
    proc = _run_cli("--project", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
    assert "advisory" in proc.stdout       # W009 reports, never gates


def test_cli_sarif_output_validates(tmp_path):
    from repro.obs.schema import load_schema, validate
    out = tmp_path / "lint.sarif"
    proc = _run_cli("--project", "--format", "sarif",
                    "--output", str(out), "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(out.read_text())
    schema = load_schema(REPO_ROOT / "scripts" / "sarif_schema.json")
    assert validate(document, schema) == []
    # Advisories ride along as "note"-level results.
    levels = {r["level"] for r in document["runs"][0]["results"]}
    assert levels <= {"note", "error"}


def test_cli_baseline_gate_against_head():
    proc = _run_cli("--baseline-gate", "HEAD", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "did not grow" in proc.stdout


def test_cli_diff_mode_runs_clean_against_head():
    proc = _run_cli("--project", "--diff", "HEAD", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_prune_baseline_reports_when_nothing_is_stale(tmp_path):
    # Run against a scratch copy so the committed file is never touched.
    import shutil
    scratch = tmp_path / "repo"
    scratch.mkdir()
    shutil.copy(REPO_ROOT / DEFAULT_BASELINE_NAME,
                scratch / DEFAULT_BASELINE_NAME)
    (scratch / "tests").mkdir()
    for entry in json.loads(
            (REPO_ROOT / DEFAULT_BASELINE_NAME).read_text())["findings"]:
        src = REPO_ROOT / entry["path"]
        dst = scratch / entry["path"]
        dst.parent.mkdir(parents=True, exist_ok=True)
        if src.exists() and not dst.exists():
            shutil.copy(src, dst)
    proc = _run_cli("--prune-baseline", "tests", cwd=scratch)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "baseline" in proc.stdout.lower()


def test_committed_baseline_only_grandfathers_white_box_tests():
    # The baseline must never grow to cover src/ — grandfathering is for
    # pre-existing white-box *tests* only.
    data = json.loads((REPO_ROOT / DEFAULT_BASELINE_NAME).read_text())
    assert data["version"] == 1
    for entry in data["findings"]:
        assert entry["path"].startswith("tests/"), entry
