"""W009 scpu-in-loop (advisory): per-record SCPU round-trip fixtures."""

from __future__ import annotations

from textwrap import dedent
from typing import Dict

from repro.lint import lint_project_sources
from repro.lint.engine import lint_paths


def rules(sources: Dict[str, str], select=("W009",)):
    return [f for f in lint_project_sources(
        {path: dedent(src) for path, src in sources.items()}, select=select)]


# ------------------------------------------------------------------ positives

def test_direct_scpu_call_in_loop_is_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def reseal_all(self, records):
                for record in records:
                    self.scpu.witness_write(record)
    """})
    assert [f.rule for f in findings] == ["W009"]
    assert findings[0].severity == "advisory"
    assert "witness_write" in findings[0].message


def test_transitive_scpu_reach_in_loop_is_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def _seal_one(self, record):
                self.scpu_rt.sign_window(record)

            def reseal_all(self, records):
                for record in records:
                    self._seal_one(record)
    """})
    assert [f.rule for f in findings] == ["W009"]
    assert "_seal_one" in findings[0].message


def test_retry_wrapped_scpu_op_in_while_loop_is_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def drain(self):
                while self.pending:
                    item = self.pending.popleft()
                    self.retry.call("scpu.witness_write", item)
    """})
    assert [f.rule for f in findings] == ["W009"]


def test_one_finding_per_loop():
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def reseal_all(self, records):
                for record in records:
                    self.scpu.witness_write(record)
                    self.scpu.sign_window(record)
    """})
    assert len(findings) == 1


# ------------------------------------------------------------------ negatives

def test_scpu_call_outside_a_loop_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def flush(self, batch):
                digest = fold(batch)
                self.scpu.witness_write(digest)
    """})
    assert findings == []


def test_hoisted_crossing_with_host_side_loop_is_clean():
    # The perf campaign's target shape: one crossing per flush, the
    # per-record work stays on the host.
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def flush(self, batch):
                hashes = []
                for record in batch:
                    hashes.append(hash_record(record))
                self.scpu.witness_write(fold(hashes))
    """})
    assert findings == []


def test_retry_module_is_exempt():
    findings = rules({"src/repro/core/retry.py": """
        class RetryExecutor:
            def call(self, op, fn):
                while True:
                    self.scpu.attempt(op, fn)
    """})
    assert findings == []


def test_hardware_package_is_exempt():
    findings = rules({"src/repro/hardware/fixture_dev.py": """
        class Device:
            def selftest(self):
                for block in self.banks:
                    self.scpu.check(block)
    """})
    assert findings == []


def test_advisories_never_fail_the_run(tmp_path):
    module = tmp_path / "repro" / "core"
    module.mkdir(parents=True)
    (module / "fixture.py").write_text(dedent("""
        class Store:
            def reseal_all(self, records):
                for record in records:
                    self.scpu.witness_write(record)
    """))
    result = lint_paths([str(tmp_path)], select=["W009"], project=True)
    assert result.clean          # advisory findings never gate
    assert len(result.advisories) == 1
    assert result.advisories[0].rule == "W009"
