"""W003 retry-boundary: repro.core reaches devices through the retry layer."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W003",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_raw_scpu_service_call_fires():
    assert rules("""
        def commit(self, data, sn, now):
            return self.scpu.witness_write(data, sn, now)
    """) == ["W003"]


def test_raw_block_store_call_fires():
    assert rules("""
        def fetch(store, key):
            return store.blocks.get(key)
    """) == ["W003"]


def test_block_store_receiver_alias_fires():
    assert rules("""
        def fetch(self, key):
            return self.block_store.get(key)
    """) == ["W003"]


def test_retrying_view_is_the_sanctioned_route():
    assert rules("""
        def commit(self, data, sn, now):
            return self._scpu_rt.witness_write(data, sn, now)
    """) == []


def test_retry_call_wrapping_is_fine():
    # Passing the bound method as a *reference* to retry.call is the
    # whole point — only direct calls are raw.
    assert rules("""
        def fetch(store, key):
            return store.retry.call("block_store.get", store.blocks.get, key)
    """) == []


def test_non_faultable_scpu_attribute_is_fine():
    assert rules("""
        def latch(self):
            return self.scpu.tamper.tripped
    """) == []


def test_only_core_is_in_scope():
    source = """
        def fetch(store, key):
            return store.blocks.get(key)
    """
    assert rules(source, path="src/repro/storage/migration_helper.py") == []
    assert rules(source, path="src/repro/core/retry.py") == []
    assert rules(source, path="tests/core/test_fixture.py") == []


def test_rule_tracks_the_fault_harness_surface():
    # W003's op tables are imported from repro.faults.wrappers, so the
    # lint can never disagree with the fault-injection harness about
    # where the trust boundary is.
    from repro.faults.wrappers import BLOCK_FAULTABLE_OPS, SCPU_FAULTABLE_OPS
    assert "witness_write" in SCPU_FAULTABLE_OPS
    assert "get" in BLOCK_FAULTABLE_OPS
