"""ProjectModel: symbol resolution, the call graph, and reachability."""

from __future__ import annotations

from textwrap import dedent

from repro.lint.engine import ModuleContext
from repro.lint.project import ProjectModel, module_name_for


def model(**sources: str) -> ProjectModel:
    """Build a model from ``path_with__for_slashes=source`` kwargs."""
    return ProjectModel.from_sources({
        "src/" + name.replace("__", "/") + ".py": dedent(src)
        for name, src in sources.items()})


def test_module_name_derivation():
    assert module_name_for("repro/core/worm.py") == "repro.core.worm"
    assert module_name_for("repro/core/__init__.py") == "repro.core"
    assert module_name_for("repro/cli.py") == "repro.cli"


def test_functions_and_methods_are_indexed_under_qualified_names():
    m = model(repro__core__store="""
        def helper():
            pass

        class Store:
            def read(self):
                pass
    """)
    assert "repro.core.store.helper" in m.functions
    assert "repro.core.store.Store.read" in m.functions
    info = m.functions["repro.core.store.Store.read"]
    assert info.class_qname == "repro.core.store.Store"


def test_resolve_chases_aliases_and_reexports():
    m = model(
        repro__util__compat="""
            import time
            now = time.time
        """,
        repro__core__user="""
            from repro.util.compat import now as clock_read
        """,
    )
    assert m.resolve("repro.core.user", "clock_read") == "time.time"


def test_resolve_chases_package_reexports_to_the_defining_module():
    m = ProjectModel.from_sources({
        "src/repro/core/__init__.py":
            "from repro.core.store import Store\n",
        "src/repro/core/store.py":
            "class Store:\n    def read(self):\n        pass\n",
        "src/repro/cli.py":
            "from repro.core import Store\n",
    })
    assert m.resolve("repro.cli", "Store") == "repro.core.store.Store"
    assert m.qname_of("repro.cli", "Store") == "repro.core.store.Store"


def test_relative_imports_resolve_against_the_package():
    m = model(
        repro__core__a="""
            def shared():
                pass
        """,
        repro__core__b="""
            from .a import shared

            def use():
                shared()
        """,
    )
    edges = m.edges()
    assert "repro.core.a.shared" in edges["repro.core.b.use"]


def test_self_calls_resolve_through_the_class_hierarchy():
    m = model(repro__core__s="""
        class Base:
            def leaf(self):
                pass

        class Child(Base):
            def driver(self):
                self.leaf()
    """)
    edges = m.edges()
    assert "repro.core.s.Base.leaf" in edges["repro.core.s.Child.driver"]


def test_unknown_receiver_falls_back_to_cha_by_name():
    m = model(repro__core__s="""
        class Store:
            def certify(self):
                pass

        def driver(store):
            store.certify()
    """)
    edges = m.edges()
    assert "repro.core.s.Store.certify" in edges["repro.core.s.driver"]


def test_container_protocol_names_are_excluded_from_cha():
    m = model(repro__core__s="""
        class Store:
            def get(self, key):
                pass

        def driver(mapping):
            mapping.get("x")
    """)
    # dict-protocol name: an edge here would connect every .get() in the
    # tree to every class that happens to define one.
    assert m.edges()["repro.core.s.driver"] == set()


def test_transitive_closure_reaches_through_chains():
    m = model(repro__core__s="""
        def deep():
            pass

        def middle():
            deep()

        def top():
            middle()

        def unrelated():
            pass
    """)
    reaches = m.transitive_closure({"repro.core.s.deep"})
    assert "repro.core.s.top" in reaches
    assert "repro.core.s.middle" in reaches
    assert "repro.core.s.unrelated" not in reaches


def test_direct_scpu_call_detection():
    m = model(repro__core__s="""
        class Store:
            def a(self):
                self.scpu.witness_write(b"x")

            def b(self):
                self.retry.call("scpu.sign", lambda: None)

            def c(self):
                self.retry.call("block_store.get", lambda: None)
    """)
    def sites(name):
        return m.call_sites(f"repro.core.s.Store.{name}")
    assert any(ProjectModel.is_direct_scpu_call(s) for s in sites("a"))
    assert any(ProjectModel.is_direct_scpu_call(s) for s in sites("b"))
    assert not any(ProjectModel.is_direct_scpu_call(s) for s in sites("c"))


def test_non_package_files_are_excluded():
    contexts = [ModuleContext("x = 1\n", "tests/core/test_x.py"),
                ModuleContext("y = 2\n", "src/repro/core/mod.py")]
    m = ProjectModel(contexts)
    assert list(m.modules) == ["repro.core.mod"]
