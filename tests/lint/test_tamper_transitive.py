"""W008 tamper-terminal-transitive: interprocedural handler fixtures."""

from __future__ import annotations

from textwrap import dedent
from typing import Dict

from repro.lint import lint_project_sources


def rules(sources: Dict[str, str], select=("W008",)):
    return [f for f in lint_project_sources(
        {path: dedent(src) for path, src in sources.items()}, select=select)]


# ------------------------------------------------------------------ positives

def test_broad_handler_over_transitive_tamper_raise_is_flagged():
    # The raise is two calls away — W004 cannot see it, W008 can.
    findings = rules({"src/repro/core/fixture.py": """
        def deep_check():
            raise TamperedError("enclosure breached")

        def middle():
            deep_check()

        def driver():
            try:
                middle()
            except Exception:
                return None
    """})
    assert [f.rule for f in findings] == ["W008"]
    # The message names the entry point of the chain inside the try body.
    assert "middle" in findings[0].message


def test_handler_naming_tampered_error_without_reraise_is_flagged():
    findings = rules({"src/repro/core/fixture.py": """
        def middle():
            raise TamperedError("breached")

        def driver():
            try:
                middle()
            except TamperedError:
                return None
    """})
    assert [f.rule for f in findings] == ["W008"]


def test_scpu_round_trip_in_try_body_counts_as_tamper_reachable():
    # Any SCPU crossing may trip the tamper latch.
    findings = rules({"src/repro/core/fixture.py": """
        class Store:
            def flush(self):
                try:
                    self.scpu.witness_write(b"x")
                except Exception:
                    pass
    """})
    assert [f.rule for f in findings] == ["W008"]
    assert "witness_write" in findings[0].message


def test_cross_module_chain_is_followed():
    findings = rules({
        "src/repro/hardware/fixture_dev.py": """
            def tamper_trip():
                raise TamperedError("zeroized")
        """,
        "src/repro/core/fixture.py": """
            from repro.hardware.fixture_dev import tamper_trip

            def driver():
                try:
                    tamper_trip()
                except Exception:
                    pass
        """,
    })
    assert [(f.path, f.rule) for f in findings] == [
        ("src/repro/core/fixture.py", "W008")]


# ------------------------------------------------------------------ negatives

def test_broad_handler_over_tamper_free_code_is_not_w008():
    # W004's business at most; W008 needs actual reachability.
    findings = rules({"src/repro/core/fixture.py": """
        def harmless():
            return 1

        def driver():
            try:
                harmless()
            except Exception:
                return None
    """})
    assert findings == []


def test_reraising_handler_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        def middle():
            raise TamperedError("breached")

        def driver():
            try:
                middle()
            except TamperedError:
                raise
            except Exception:
                return None
    """})
    assert findings == []


def test_guarded_escalation_inside_broad_handler_is_clean():
    findings = rules({"src/repro/core/fixture.py": """
        def middle():
            raise TamperedError("breached")

        def driver():
            try:
                middle()
            except Exception as exc:
                if isinstance(exc, TamperedError):
                    raise
                return None
    """})
    assert findings == []


def test_narrow_handler_is_clean_even_over_tamper_reaching_code():
    findings = rules({"src/repro/core/fixture.py": """
        def middle():
            raise TamperedError("breached")

        def driver():
            try:
                middle()
            except KeyError:
                return None
    """})
    assert findings == []


def test_sanctioned_terminal_handler_suppression_works():
    findings = rules({"src/repro/core/fixture.py": """
        def middle():
            raise TamperedError("breached")

        def driver():
            try:
                middle()
            except Exception:  # wormlint: disable=W008 - top-level render
                return None
    """})
    assert findings == []
