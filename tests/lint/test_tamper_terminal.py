"""W004 tamper-terminal: no handler may swallow a TamperedError."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W004",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_swallowed_tamper_fires():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except TamperedError:
                return None
    """) == ["W004"]


def test_reraised_tamper_is_fine():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except TamperedError:
                raise
    """) == []


def test_broad_handler_fires_in_package_code():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except Exception:
                return None
    """) == ["W004"]


def test_bare_except_fires_in_package_code():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except:
                return None
    """) == ["W004"]


def test_worm_error_is_broad_too():
    # WormError is TamperedError's base: catching it absorbs the trip.
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except WormError:
                return None
    """) == ["W004"]


def test_escalating_arm_legalizes_later_broad_handler():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except TamperedError:
                raise
            except Exception:
                return None
    """) == []


def test_guarded_reraise_inside_broad_handler_is_fine():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except Exception as exc:
                if isinstance(exc, TamperedError):
                    raise
                return None
    """) == []


def test_reraising_the_bound_name_is_fine():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except Exception as exc:
                log(exc)
                raise exc
    """) == []


def test_broad_handlers_in_tests_are_exempt():
    # ...but an *explicit* TamperedError swallow fires even in tests.
    broad = """
        def test_read(store):
            try:
                store.read(1)
            except Exception:
                pass
    """
    explicit = """
        def test_read(store):
            try:
                store.read(1)
            except TamperedError:
                pass
    """
    assert rules(broad, path="tests/core/test_fixture.py") == []
    assert rules(explicit, path="tests/core/test_fixture.py") == ["W004"]


def test_narrow_handlers_are_fine():
    assert rules("""
        def read(store, sn):
            try:
                return store.read(sn)
            except (VerificationError, FreshnessError):
                return None
    """) == []


def test_recovery_stage_swallowing_tamper_fires():
    # The disaster-recovery VERIFY stage is exactly where a swallowed
    # tamper trip would be catastrophic: the stage would "succeed" and
    # REPLAY would import forged records into the rebuilt site.  The
    # rule must fire on the retry-the-stage idiom.
    assert rules("""
        def step(self):
            handler = self._handlers[self.stage]
            try:
                handler()
            except TamperedError:
                self._retries += 1
                return self.stage  # keep the stage re-runnable
    """, path="src/repro/recovery/stages.py") == ["W004"]


def test_recovery_stage_demoting_tamper_fires():
    # Demoting the trip to a resumable RecoveryError is the same bug
    # with better manners — W004 treats raise-of-something-else in a
    # tamper handler as a swallow unless the original escalates.
    assert rules("""
        def _verify(self):
            try:
                self._verify_shard_windows()
            except TamperedError as exc:
                self.checkpoint["failed"] = str(exc)
                raise RecoveryError("verify failed; resume later")
    """, path="src/repro/recovery/stages.py") == ["W004"]


def test_recovery_stage_escalating_tamper_is_fine():
    assert rules("""
        def _verify(self):
            try:
                self._verify_shard_windows()
            except TamperedError:
                self.checkpoint["failed"] = True
                raise
    """, path="src/repro/recovery/stages.py") == []
