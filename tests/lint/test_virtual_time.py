"""W002 virtual-time: only repro.sim.clock may read the wall clock."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W002",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_time_time_fires():
    assert rules("""
        import time

        def stamp():
            return time.time()
    """) == ["W002"]


def test_time_sleep_fires():
    assert rules("""
        import time

        def backoff(seconds):
            time.sleep(seconds)
    """) == ["W002"]


def test_aliased_import_fires():
    assert rules("""
        import time as _t

        def stamp():
            return _t.monotonic()
    """) == ["W002"]


def test_from_import_fires():
    assert rules("""
        from time import perf_counter

        def stamp():
            return perf_counter()
    """) == ["W002"]


def test_datetime_now_fires():
    assert rules("""
        from datetime import datetime

        def stamp():
            return datetime.utcnow()
    """) == ["W002"]


def test_implicit_clock_read_fires_only_with_no_args():
    # time.ctime(stamp) is a deterministic formatter; time.ctime() reads
    # the clock.
    assert rules("""
        import time

        def calendar(stamp):
            return time.ctime(stamp)
    """) == []
    assert rules("""
        import time

        def calendar():
            return time.ctime()
    """) == ["W002"]


def test_deterministic_datetime_constructors_are_fine():
    assert rules("""
        from datetime import datetime, timezone

        def calendar(stamp):
            return datetime.fromtimestamp(stamp, tz=timezone.utc)
    """) == []


def test_clock_module_is_exempt():
    source = """
        import time

        def read():
            return time.time()
    """
    assert rules(source, path="src/repro/sim/clock.py") == []


def test_unimported_time_attribute_is_not_confused():
    # `self.time.time()` is somebody's clock object, not the time module.
    assert rules("""
        def read(self):
            return self.time.time()
    """) == []
