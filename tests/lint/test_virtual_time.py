"""W002 virtual-time: only repro.sim.clock may read the wall clock."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_source


def rules(source: str, path: str = "src/repro/core/fixture.py",
          select=("W002",)) -> list:
    return [f.rule for f in lint_source(dedent(source), path, select=select)]


def test_time_time_fires():
    assert rules("""
        import time

        def stamp():
            return time.time()
    """) == ["W002"]


def test_time_sleep_fires():
    assert rules("""
        import time

        def backoff(seconds):
            time.sleep(seconds)
    """) == ["W002"]


def test_aliased_import_fires():
    assert rules("""
        import time as _t

        def stamp():
            return _t.monotonic()
    """) == ["W002"]


def test_from_import_fires():
    assert rules("""
        from time import perf_counter

        def stamp():
            return perf_counter()
    """) == ["W002"]


def test_datetime_now_fires():
    assert rules("""
        from datetime import datetime

        def stamp():
            return datetime.utcnow()
    """) == ["W002"]


def test_implicit_clock_read_fires_only_with_no_args():
    # time.ctime(stamp) is a deterministic formatter; time.ctime() reads
    # the clock.
    assert rules("""
        import time

        def calendar(stamp):
            return time.ctime(stamp)
    """) == []
    assert rules("""
        import time

        def calendar():
            return time.ctime()
    """) == ["W002"]


def test_deterministic_datetime_constructors_are_fine():
    assert rules("""
        from datetime import datetime, timezone

        def calendar(stamp):
            return datetime.fromtimestamp(stamp, tz=timezone.utc)
    """) == []


def test_clock_module_is_exempt():
    source = """
        import time

        def read():
            return time.time()
    """
    assert rules(source, path="src/repro/sim/clock.py") == []


def test_unimported_time_attribute_is_not_confused():
    # `self.time.time()` is somebody's clock object, not the time module.
    assert rules("""
        def read(self):
            return self.time.time()
    """) == []


# ------------------------------------------------- alias-blindness regression

def test_module_level_rebinding_of_time_module_fires():
    # `clock = time` used to launder the module past W002 entirely.
    source = dedent("""
        import time

        clock = time

        def stamp():
            return clock.time()
    """)
    assert [f.rule for f in lint_source(
        source, "src/repro/core/fixture.py")] == ["W002"]


def test_module_level_rebinding_of_clock_function_fires():
    source = dedent("""
        import time

        now = time.time

        def stamp():
            return now()
    """)
    assert [f.rule for f in lint_source(
        source, "src/repro/core/fixture.py")] == ["W002"]


def test_rebinding_chain_fires():
    source = dedent("""
        import time

        t = time
        clock = t

        def stamp():
            return clock.time()
    """)
    assert [f.rule for f in lint_source(
        source, "src/repro/core/fixture.py")] == ["W002"]


def test_datetime_rebinding_fires():
    source = dedent("""
        import datetime

        dt = datetime

        def stamp():
            return dt.datetime.utcnow()
    """)
    assert [f.rule for f in lint_source(
        source, "src/repro/core/fixture.py")] == ["W002"]


def test_harmless_rebinding_does_not_fire():
    source = dedent("""
        import time

        sleeper = time.sleep   # rebinding alone is not a clock read

        def configure():
            return 1
    """)
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_cross_module_reexport_of_clock_fires_in_project_mode():
    # The alias lives in another module — only the project symbol table
    # can see through it.
    from repro.lint import lint_project_sources
    findings = lint_project_sources({
        "src/repro/util/compat.py": dedent("""
            import time

            now = time.time
        """),
        "src/repro/core/fixture.py": dedent("""
            from repro.util.compat import now

            def stamp():
                return now()
        """),
    }, select=["W002"])
    assert [(f.path, f.rule) for f in findings] == [
        ("src/repro/core/fixture.py", "W002")]


def test_cross_module_nonclock_import_is_clean_in_project_mode():
    from repro.lint import lint_project_sources
    findings = lint_project_sources({
        "src/repro/util/compat.py": dedent("""
            def fold(items):
                return sum(items)
        """),
        "src/repro/core/fixture.py": dedent("""
            from repro.util.compat import fold

            def total(items):
                return fold(items)
        """),
    }, select=["W002"])
    assert findings == []
