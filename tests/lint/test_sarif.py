"""SARIF reporter: shape, level mapping, and 2.1.0 schema validation."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import Finding, LintResult
from repro.lint.reporters import render_sarif
from repro.obs.schema import load_schema, validate

SCHEMA_PATH = Path(__file__).resolve().parents[2] / "scripts" / "sarif_schema.json"


def result_with_findings() -> LintResult:
    return LintResult(
        findings=[Finding(
            rule="W007", path="src/repro/core/x.py", line=12, col=8,
            message="unverified block-store payload reaches catalog import",
            source_line="self.catalog.index_record(sn, payload)")],
        advisories=[Finding(
            rule="W009", path="src/repro/core/y.py", line=30, col=4,
            message="SCPU round-trip inside loop", source_line="for r in rs:",
            severity="advisory")],
        files_checked=2)


def test_sarif_document_validates_against_the_2_1_0_schema():
    document = json.loads(render_sarif(result_with_findings()))
    problems = validate(document, load_schema(SCHEMA_PATH))
    assert problems == []


def test_sarif_carries_version_and_tool_identity():
    document = json.loads(render_sarif(result_with_findings()))
    assert document["version"] == "2.1.0"
    driver = document["runs"][0]["tool"]["driver"]
    assert driver["name"] == "wormlint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"W007", "W008", "W009"} <= rule_ids


def test_error_and_advisory_map_to_sarif_levels():
    document = json.loads(render_sarif(result_with_findings()))
    levels = {r["ruleId"]: r["level"] for r in document["runs"][0]["results"]}
    assert levels == {"W007": "error", "W009": "note"}


def test_sarif_locations_are_one_indexed():
    document = json.loads(render_sarif(result_with_findings()))
    w007 = next(r for r in document["runs"][0]["results"]
                if r["ruleId"] == "W007")
    region = w007["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12
    assert region["startColumn"] == 9      # SARIF columns are 1-based


def test_empty_result_is_still_valid_sarif():
    document = json.loads(render_sarif(LintResult()))
    assert document["runs"][0]["results"] == []
    assert validate(document, load_schema(SCHEMA_PATH)) == []
