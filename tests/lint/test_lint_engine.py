"""Engine mechanics: scoping, suppression comments, registry, runner."""

from __future__ import annotations

from textwrap import dedent

import pytest

from repro.lint import all_rules, lint_paths, lint_source
from repro.lint.engine import ModuleContext
from repro.lint.reporters import render_json, render_text


def test_all_nine_rules_are_registered():
    assert list(all_rules()) == ["W001", "W002", "W003", "W004", "W005",
                                 "W006", "W007", "W008", "W009"]


def test_registry_entries_carry_documentation():
    for cls in all_rules().values():
        assert cls.title
        assert cls.rationale


@pytest.mark.parametrize("path,expected", [
    ("src/repro/core/worm.py", "repro/core/worm.py"),
    ("repro/cli.py", "repro/cli.py"),
    ("tests/core/test_worm.py", None),
    ("tests/repro/test_fake.py", None),   # "repro" under tests/ is a test dir
    ("scripts/helper.py", None),
])
def test_package_path_derivation(path, expected):
    assert ModuleContext._derive_package_path(path) == expected


def test_unknown_select_rule_is_an_error():
    with pytest.raises(ValueError, match="W999"):
        lint_source("x = 1", "src/repro/core/fixture.py", select=["W999"])


def test_suppression_comment_silences_its_rule():
    source = dedent("""
        import time

        def stamp():
            return time.time()  # wormlint: disable=W002 - fixture
    """)
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_suppression_is_rule_specific():
    source = dedent("""
        import time

        def stamp():
            return time.time()  # wormlint: disable=W001 - wrong rule
    """)
    assert [f.rule for f in
            lint_source(source, "src/repro/core/fixture.py")] == ["W002"]


def test_suppression_accepts_a_rule_list():
    source = dedent("""
        import time

        def stamp(store):
            return time.time(), store.scpu._keys  # wormlint: disable=W001,W002
    """)
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_suppression_only_covers_its_own_line():
    source = dedent("""
        import time

        # wormlint: disable=W002
        def stamp():
            return time.time()
    """)
    assert [f.rule for f in
            lint_source(source, "src/repro/core/fixture.py")] == ["W002"]


def test_suppression_works_on_the_last_line_of_a_file():
    # No trailing newline, no following line — the pragma must still be
    # read from the line it sits on.
    source = ("import time\n"
              "def stamp():\n"
              "    return time.time()  # wormlint: disable=W002")
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_unknown_rule_id_in_pragma_is_an_e998_error():
    # The pragma is spliced so that wormlint's own scan of THIS file does
    # not read the fixture text as a live suppression comment.
    source = ("def stamp():\n"
              "    return 1  # wormlint: dis" "able=W0042\n")
    (finding,) = lint_source(source, "src/repro/core/fixture.py")
    assert finding.rule == "E998"
    assert "W0042" in finding.message
    assert "known rules" in finding.message


def test_unknown_rule_id_is_caught_even_without_a_finding_to_hide():
    # The dangerous case: a typo'd pragma on a line that happens to be
    # clean today silently stops protecting once the violation appears.
    source = "x = 1  # wormlint: dis" "able=W999\n"
    (finding,) = lint_source(source, "src/repro/core/fixture.py")
    assert finding.rule == "E998"


def test_e998_itself_can_be_suppressed_explicitly():
    source = "x = 1  # wormlint: dis" "able=W999,E998 - documenting a typo\n"
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_findings_carry_location_and_source_line():
    source = dedent("""
        import time

        def stamp():
            return time.time()
    """)
    (finding,) = lint_source(source, "src/repro/core/fixture.py")
    assert finding.location() == "src/repro/core/fixture.py:5:12"
    assert finding.source_line == "return time.time()"


def test_lint_paths_reports_syntax_errors_as_e999(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    result = lint_paths([str(bad)])
    assert result.parse_errors == 1
    assert [f.rule for f in result.findings] == ["E999"]
    assert not result.clean


def test_lint_paths_skips_pycache(tmp_path):
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "stale.py").write_text("def broken(:\n")
    (tmp_path / "fine.py").write_text("x = 1\n")
    result = lint_paths([str(tmp_path)])
    assert result.files_checked == 1
    assert result.clean


def test_reporters_render_findings(tmp_path):
    import json

    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    module = tmp_path / "fixture.py"
    module.write_text(source)
    result = lint_paths([str(module)], select=["W002"])
    text = render_text(result)
    assert "W002" in text
    assert "finding(s) across 1 file(s)" in text
    payload = json.loads(render_json(result))
    assert payload["summary"]["new_findings"] == 1
    assert payload["findings"][0]["rule"] == "W002"
