"""Unit tests for window management (§4.2.1)."""

import pytest

from repro.core.windows import WindowManager


def _write(store, retention=1000.0):
    return store.write([b"payload"], retention_seconds=retention)


def _expire_prefix(store, count, retention=10.0):
    """Write *count* records with short retention and expire them."""
    receipts = [_write(store, retention=retention) for _ in range(count)]
    store.scpu.clock.advance(retention + 1.0)
    store.retention.tick(store.now)
    return receipts


class TestFreshness:
    def test_refresh_only_when_stale(self, store):
        first = store.windows.refresh_current()
        again = store.windows.refresh_current()
        assert again is first  # not re-signed within the interval

    def test_refresh_after_interval(self, store):
        first = store.windows.refresh_current()
        store.scpu.clock.advance(store.windows.refresh_interval + 1.0)
        second = store.windows.refresh_current()
        assert second is not first
        assert second.timestamp > first.timestamp

    def test_forced_refresh(self, store):
        first = store.windows.refresh_current()
        second = store.windows.refresh_current(force=True)
        assert second is not first

    def test_write_does_not_resign_within_interval(self, store):
        before = store.windows.refresh_count
        for _ in range(5):
            _write(store)
        assert store.windows.refresh_count == before

    def test_base_resigned_before_expiry(self, store):
        first = store.windows.refresh_base()
        store.scpu.clock.advance(store.windows.base_validity)
        second = store.windows.refresh_base()
        assert second is not first

    def test_invalid_parameters_rejected(self, store):
        with pytest.raises(ValueError):
            WindowManager(store.scpu, store.vrdt, refresh_interval=0.0)
        with pytest.raises(ValueError):
            WindowManager(store.scpu, store.vrdt, compaction_threshold=2)


class TestBaseAdvancement:
    def test_advances_over_expired_prefix(self, store):
        _expire_prefix(store, 3)
        survivor = _write(store)
        assert store.windows.try_advance_base()
        assert store.scpu.sn_base == survivor.sn
        # Proofs below the base were expelled.
        assert store.vrdt.proof_count() == 0

    def test_no_advance_when_prefix_active(self, store):
        _write(store)
        _expire_prefix(store, 2)
        assert not store.windows.try_advance_base()
        assert store.scpu.sn_base == 1

    def test_no_advance_on_empty_prefix(self, store):
        _write(store)
        assert not store.windows.try_advance_base()

    def test_advance_to_frontier_when_all_expired(self, store):
        _expire_prefix(store, 4)
        assert store.windows.try_advance_base()
        assert store.scpu.sn_base == store.scpu.current_serial_number + 1

    def test_advance_uses_window_evidence(self, store):
        _expire_prefix(store, 5)
        store.windows.compact_expired_runs()
        assert store.vrdt.proof_count() == 0  # proofs replaced by a window
        assert store.windows.try_advance_base()
        assert store.vrdt.deletion_windows == []  # window now redundant


class TestCompaction:
    def test_compacts_runs_of_three(self, store):
        _write(store, retention=1e9)  # anchor keeps base at 1
        _expire_prefix(store, 3)
        created = store.windows.compact_expired_runs()
        assert created == 1
        window = store.vrdt.deletion_windows[0]
        assert window.high_sn - window.low_sn + 1 == 3
        assert store.vrdt.proof_count() == 0

    def test_short_runs_not_compacted(self, store):
        _write(store, retention=1e9)
        _expire_prefix(store, 2)
        assert store.windows.compact_expired_runs() == 0
        assert store.vrdt.proof_count() == 2

    def test_limit_bounds_work_per_slice(self, store):
        _write(store, retention=1e9)
        _expire_prefix(store, 3)
        _write(store, retention=1e9)  # gap
        _expire_prefix(store, 3)
        assert store.windows.compact_expired_runs(limit=1) == 1
        assert store.windows.compact_expired_runs(limit=1) == 1
        assert len(store.vrdt.deletion_windows) == 2


class TestClassification:
    def test_all_cases(self, store):
        active = _write(store, retention=1e9)
        expired = _write(store, retention=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)

        assert store.windows.classify(active.sn) == "active"
        assert store.windows.classify(expired.sn) == "deletion-proof"
        assert store.windows.classify(
            store.scpu.current_serial_number + 1) == "never-allocated"

    def test_below_base_classification(self, store):
        _expire_prefix(store, 3)
        _write(store, retention=1e9)
        store.windows.try_advance_base()
        assert store.windows.classify(1) == "below-base"

    def test_window_classification(self, store):
        _write(store, retention=1e9)
        _expire_prefix(store, 3)
        store.windows.compact_expired_runs()
        assert store.windows.classify(2) == "deletion-window"

    def test_missing_classification_on_corruption(self, store):
        receipt = _write(store)
        del store.vrdt._active[receipt.sn]  # insider wipes the slot
        assert store.windows.classify(receipt.sn) == "missing"
