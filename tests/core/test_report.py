"""Tests for the compliance report generator."""

import pytest

from repro.core.report import generate_report
from repro.hardware.scpu import Strength


class TestVerdicts:
    def test_clean_store_passes(self, store, client):
        store.write([b"clean"], policy="sox")
        report = generate_report(store, client)
        assert report.verdict == "PASS"
        assert report.clean
        assert "VERDICT: PASS" in report.text
        assert report.warnings == []

    def test_tampered_store_fails(self, store, client):
        receipt = store.write([b"evidence"], policy="sox")
        store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"doctored")
        report = generate_report(store, client)
        assert report.verdict == "FAIL"
        assert "TAMPERING EVIDENCE" in report.text
        assert not report.clean

    def test_weak_backlog_warns(self, store, client):
        store.write([b"weak"], strength=Strength.WEAK, retention_seconds=1e9)
        report = generate_report(store, client)
        assert report.verdict == "WARN"
        assert any("weakly signed" in w for w in report.warnings)

    def test_overdue_strengthening_warns(self, store, client):
        store.write([b"weak"], strength=Strength.WEAK, retention_seconds=1e9)
        store.scpu.clock.advance(40 * 60.0)  # past the half-lifetime deadline
        report = generate_report(store, client)
        assert any("deadline" in w for w in report.warnings)

    def test_host_lie_warns_loudly(self, store, client):
        receipt = store.write([b"burst"], defer_data_hash=True,
                              retention_seconds=1e9)
        store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"swap!")
        store.hash_verification.drain()
        report = generate_report(store, client)
        # Both the audit (FAIL) and the mismatch warning fire.
        assert report.verdict == "FAIL"
        assert any("lied" in w for w in report.warnings)


class TestContent:
    def test_summary_numbers_present(self, store, client):
        for _ in range(3):
            store.write([b"x"], policy="ferpa")
        report = generate_report(store, client)
        assert "serial numbers issued" in report.text
        assert "active records" in report.text

    def test_policy_inventory_listed(self, store, client):
        report = generate_report(store, client)
        for name in ("sec17a-4", "hipaa", "sox"):
            assert name in report.text

    def test_wall_time_override(self, store, client):
        report = generate_report(store, client, wall_time=0.0)
        assert "1970" in report.text


class TestCliIntegration:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main
        directory = tmp_path / "store"
        main(["init", str(directory), "--strong-bits", "512"])
        source = tmp_path / "f.txt"
        source.write_bytes(b"filing")
        main(["write", str(directory), str(source), "--policy", "sox"])
        capsys.readouterr()
        assert main(["report", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: PASS" in out

    def test_report_command_fails_on_tamper(self, tmp_path, capsys):
        from repro.cli import main
        directory = tmp_path / "store"
        main(["init", str(directory), "--strong-bits", "512"])
        source = tmp_path / "f.txt"
        source.write_bytes(b"filing")
        main(["write", str(directory), str(source)])
        victim = next((directory / "blocks").glob("rec-*"))
        victim.write_bytes(b"doctored")
        capsys.readouterr()
        assert main(["report", str(directory)]) == 2
        assert "VERDICT: FAIL" in capsys.readouterr().out
