"""Tests for compliant migration (§1)."""

import pytest

from repro import demo_keyring
from repro.core.errors import MigrationError
from repro.core.migration import export_package, import_package
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor, Strength


@pytest.fixture
def source(store):
    """The obsolete store being migrated away from."""
    return store


@pytest.fixture
def dest():
    """The new-media store (its own SCPU, its own keys)."""
    return StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))


class TestCleanMigration:
    def test_all_records_move_and_verify(self, source, dest, ca):
        receipts = [source.write([f"record-{i}".encode()], policy="sox")
                    for i in range(4)]
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        assert report.clean
        assert report.migrated == 4
        client = dest.make_client(ca)
        for receipt in receipts:
            new_sn = report.sn_mapping[receipt.sn]
            verified = client.verify_read(dest.read(new_sn), new_sn)
            assert verified.status == "active"

    def test_retention_clock_preserved(self, source, dest, ca):
        receipt = source.write([b"old"], retention_seconds=1000.0)
        source.scpu.clock.advance(400.0)
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        new_vrd = dest.vrdt.get_active(report.sn_mapping[receipt.sn])
        # created_at survived: 600 seconds of retention remain, not 1000.
        assert new_vrd.attr.created_at == receipt.vrd.attr.created_at
        assert new_vrd.attr.expires_at == receipt.vrd.attr.expires_at

    def test_expired_records_archived_not_migrated(self, source, dest, ca):
        source.write([b"gone"], retention_seconds=5.0)
        survivor = source.write([b"stays"], policy="sox")
        source.scpu.clock.advance(10.0)
        source.retention.tick(source.now)
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        assert report.migrated == 1
        assert report.archived_deletion_proofs == 1
        assert survivor.sn in report.sn_mapping

    def test_weak_records_must_be_strengthened_first(self, source, dest, ca):
        source.write([b"hmac-weak"], strength=Strength.HMAC)
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        assert not report.clean
        assert "HMAC" in report.rejected[0][1]

    def test_multi_record_vrs_migrate(self, source, dest, ca):
        receipt = source.write([b"a", b"b"], policy="sox")
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        new_sn = report.sn_mapping[receipt.sn]
        assert dest.read(new_sn).data == b"ab"


class TestTamperedMigration:
    def test_tampered_payload_rejected_per_record(self, source, dest, ca):
        bad = source.write([b"original"], policy="sox")
        good = source.write([b"untouched"], policy="sox")
        package = export_package(source, ca)
        package.blocks[bad.vrd.rdl[0].key] = b"doctored"
        # Package hash now disagrees with the manifest — wholesale reject.
        with pytest.raises(MigrationError, match="manifest"):
            import_package(dest, package, ca)

    def test_in_transit_record_swap_detected(self, source, dest, ca):
        """Mallory re-exports after doctoring the source store itself."""
        bad = source.write([b"original"], policy="sox")
        good = source.write([b"untouched"], policy="sox")
        # Insider rewrites the source payload, then the migration runs.
        source.blocks.unchecked_overwrite(bad.vrd.rdl[0].key, b"doctored")
        package = export_package(source, ca)
        report = import_package(dest, package, ca)
        assert report.migrated == 1
        assert report.sn_mapping.get(good.sn) is not None
        assert report.rejected[0][0] == bad.sn
        assert "data does not match" in report.rejected[0][1]

    def test_foreign_manifest_rejected(self, source, dest, ca):
        import dataclasses
        from repro.crypto.keys import SigningKey
        source.write([b"x"])
        package = export_package(source, ca)
        mallory = SigningKey.generate(512, role="s")
        forged = mallory.sign_envelope(package.manifest.envelope)
        with pytest.raises(MigrationError):
            import_package(
                dest, dataclasses.replace(package, manifest=forged), ca)

    def test_certificates_from_wrong_ca_rejected(self, source, dest, ca):
        from repro.crypto.keys import CertificateAuthority
        source.write([b"x"])
        package = export_package(source, ca)
        other_ca = CertificateAuthority(bits=512)
        with pytest.raises(MigrationError, match="CA"):
            import_package(dest, package, other_ca)

    def test_truncated_package_rejected(self, source, dest, ca):
        r1 = source.write([b"one"], policy="sox")
        source.write([b"two"], policy="sox")
        package = export_package(source, ca)
        # Drop one record's snapshot entry (hide it from the new store).
        package.vrdt_snapshot["active"] = [
            e for e in package.vrdt_snapshot["active"] if e["sn"] == r1.sn]
        with pytest.raises(MigrationError, match="manifest"):
            import_package(dest, package, ca)
