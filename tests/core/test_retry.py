"""Tests for the virtual-time retry layer at the SCPU trust boundary."""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import (
    ScpuUnavailableError,
    TamperedError,
    TransientFaultError,
)
from repro.core.retry import RetryExecutor, RetryingScpu, RetryPolicy, RetryStats
from repro.core.worm import StrongWormStore
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.manual_clock import ManualClock


class TestRetryPolicy:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestRetryExecutor:
    def test_retries_transient_until_success(self):
        clock = ManualClock()
        executor = RetryExecutor(RetryPolicy(max_attempts=4), clock=clock)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("dropped")
            return "ok"

        assert executor.call("op", flaky) == "ok"
        assert len(attempts) == 3
        assert executor.stats.retries == 2
        assert executor.stats.by_op == {"op": 2}

    def test_exhaustion_raises_unavailable(self):
        executor = RetryExecutor(RetryPolicy(max_attempts=2),
                                 clock=ManualClock())

        def always_down():
            raise TransientFaultError("dropped")

        with pytest.raises(ScpuUnavailableError):
            executor.call("op", always_down)
        assert executor.stats.exhausted == 1

    def test_tamper_is_never_retried(self):
        executor = RetryExecutor(RetryPolicy(max_attempts=5),
                                 clock=ManualClock())
        attempts = []

        def dead():
            attempts.append(1)
            raise TamperedError("zeroized")

        with pytest.raises(TamperedError):
            executor.call("op", dead)
        assert len(attempts) == 1
        assert executor.stats.retries == 0

    def test_backoff_advances_manual_clock(self):
        clock = ManualClock()
        executor = RetryExecutor(
            RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=2.0),
            clock=clock)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("dropped")
            return "ok"

        executor.call("op", flaky)
        # Two retries: 0.5s + 1.0s of virtual backoff, visible on the clock.
        assert clock.now == pytest.approx(1.5)
        assert executor.stats.backoff_seconds == pytest.approx(1.5)

    def test_op_timeout_bounds_total_backoff(self):
        executor = RetryExecutor(
            RetryPolicy(max_attempts=100, base_delay=1.0, max_delay=1.0,
                        op_timeout=2.5),
            clock=ManualClock())

        def always_down():
            raise TransientFaultError("dropped")

        with pytest.raises(ScpuUnavailableError):
            executor.call("op", always_down)
        assert executor.stats.backoff_seconds <= 2.5


class TestRetryStats:
    def test_merge_accumulates(self):
        a = RetryStats(calls=2, retries=1, by_op={"x": 1})
        b = RetryStats(calls=3, exhausted=1, backoff_seconds=0.5,
                       by_op={"x": 2, "y": 1})
        a.merge(b)
        assert a.calls == 5
        assert a.exhausted == 1
        assert a.by_op == {"x": 3, "y": 1}
        assert a.as_dict()["backoff_seconds"] == pytest.approx(0.5)


class TestStoreRetryIntegration:
    def test_store_rides_through_transient_faults(self, regulator_key):
        scpu = SecureCoprocessor(keyring=demo_keyring(), clock=ManualClock())
        faulty = FaultyScpu(scpu, FaultPlan(transient_rate=0.15, seed=11))
        store = StrongWormStore(config=StoreConfig(
            scpu=faulty, regulator_public_key=regulator_key.public))
        receipts = [store.write([b"rec-%d" % i]) for i in range(20)]
        assert len(receipts) == 20
        assert store.retry.stats.retries > 0
        for receipt in receipts:
            assert store.read(receipt.sn).status == "active"

    def test_store_scpu_identity_preserved(self):
        scpu = SecureCoprocessor(keyring=demo_keyring(), clock=ManualClock())
        store = StrongWormStore(scpu=scpu)
        assert store.scpu is scpu  # retry wrapping is internal
        assert isinstance(store._scpu_rt, RetryingScpu)
        assert store._scpu_rt.inner is scpu

    def test_no_retry_policy_disables_retrying(self):
        scpu = SecureCoprocessor(keyring=demo_keyring(), clock=ManualClock())
        faulty = FaultyScpu(scpu, FaultPlan().transient(op="witness_write",
                                                        after_ops=1,
                                                        count=99))
        store = StrongWormStore(config=StoreConfig(
            scpu=faulty, retry_policy=RetryPolicy(max_attempts=1)))
        with pytest.raises(ScpuUnavailableError):
            store.write([b"payload"])
