"""Tests for encrypted records and crypto-shredding."""

import pytest

from repro.core.encryption import EncryptedWormStore
from repro.core.errors import WormError
from repro.hardware.scpu import Strength, WrappedKey


@pytest.fixture
def estore(store):
    return EncryptedWormStore(store)


class TestEncryptedRoundtrip:
    def test_write_read(self, estore, client):
        receipt = estore.write(b"confidential memo", policy="sox")
        read = estore.read_verified(client, receipt.sn)
        assert read.plaintext == b"confidential memo"

    def test_ciphertext_on_disk_differs(self, estore, store):
        receipt = estore.write(b"confidential memo", policy="sox")
        on_disk = store.blocks.get(receipt.vrd.rdl[0].key)
        assert on_disk != b"confidential memo"
        assert b"memo" not in on_disk

    def test_distinct_deks_per_record(self, estore, store):
        a = estore.write(b"same plaintext", policy="sox")
        b = estore.write(b"same plaintext", policy="sox")
        ct_a = store.blocks.get(a.vrd.rdl[0].key)
        ct_b = store.blocks.get(b.vrd.rdl[0].key)
        assert ct_a != ct_b  # fresh DEK each time

    def test_integrity_still_verified(self, estore, store, client):
        from repro.core.errors import VerificationError
        receipt = estore.write(b"data", policy="sox")
        store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"garbage!")
        with pytest.raises(VerificationError):
            estore.read_verified(client, receipt.sn)

    def test_weak_strength_passes_through(self, estore, client):
        receipt = estore.write(b"burst", strength=Strength.WEAK,
                               retention_seconds=1e6)
        read = estore.read_verified(client, receipt.sn)
        assert read.weakly_signed


class TestKeyWrapping:
    def test_wrap_unwrap_roundtrip(self, scpu):
        dek = b"\x42" * 32
        wrapped = scpu.wrap_key(dek)
        assert scpu.unwrap_key(wrapped) == dek
        assert wrapped.ciphertext != dek

    def test_wrapped_key_tamper_detected(self, scpu):
        import dataclasses
        wrapped = scpu.wrap_key(b"\x42" * 32)
        bad = dataclasses.replace(
            wrapped, ciphertext=bytes(32)[:-1] + b"\x01")
        with pytest.raises(ValueError, match="authentication"):
            scpu.unwrap_key(bad)

    def test_dek_length_enforced(self, scpu):
        with pytest.raises(ValueError):
            scpu.wrap_key(b"short")

    def test_serialization_roundtrip(self, scpu):
        wrapped = scpu.wrap_key(b"\x42" * 32)
        restored = WrappedKey.from_dict(wrapped.to_dict())
        assert scpu.unwrap_key(restored) == b"\x42" * 32

    def test_zeroize_destroys_epoch_key(self, scpu):
        from repro.hardware.tamper import TamperedError
        wrapped = scpu.wrap_key(b"\x42" * 32)
        scpu.tamper.trip()
        with pytest.raises(TamperedError):
            scpu.unwrap_key(wrapped)


class TestEncryptedMigration:
    def _dest(self):
        from repro import demo_keyring
        from repro.core.worm import StrongWormStore
        from repro.hardware.scpu import SecureCoprocessor
        return EncryptedWormStore(StrongWormStore(
            scpu=SecureCoprocessor(keyring=demo_keyring())))

    def test_full_encrypted_migration(self, estore, ca):
        receipts = [estore.write(f"secret {i}".encode(), policy="sox")
                    for i in range(3)]
        dest = self._dest()
        report = estore.migrate_to(dest, ca)
        assert report.clean and report.migrated == 3
        client = dest.store.make_client(ca)
        for receipt in receipts:
            new_sn = report.sn_mapping[receipt.sn]
            read = dest.read_verified(client, new_sn)
            assert read.plaintext == f"secret {receipts.index(receipt)}".encode()

    def test_migrated_deks_survive_dest_epoch_rotation(self, estore, ca):
        receipt = estore.write(b"durable secret", policy="sox")
        dest = self._dest()
        report = estore.migrate_to(dest, ca)
        dest.shred_epoch()  # the dest rotates — migrated DEKs must follow
        client = dest.store.make_client(ca)
        read = dest.read_verified(client, report.sn_mapping[receipt.sn])
        assert read.plaintext == b"durable secret"

    def test_source_refuses_uncertified_destination(self, estore, ca):
        """Mallory's fake 'destination enclave' gets nothing."""
        from repro.crypto.keys import CertificateAuthority, SigningKey
        estore.write(b"coveted", policy="sox")
        mallory_key = SigningKey.generate(512, role="kx")
        rogue_ca = CertificateAuthority(bits=512)
        rogue_cert = rogue_ca.certify(mallory_key.public, role="kx",
                                      now=estore.store.now)
        with pytest.raises(ValueError, match="CA verification"):
            estore.store.scpu.export_deks(
                estore.wrapped_table() and {
                    sn: WrappedKey.from_dict(w)
                    for sn, w in estore.wrapped_table().items()},
                mallory_key.public, rogue_cert, ca.root_public_key)

    def test_tampered_bundle_rejected(self, estore, ca):
        estore.write(b"payload", policy="sox")
        dest = self._dest()
        dest_public, dest_cert = dest.store.scpu.key_transport_public(ca)
        wrapped = {sn: WrappedKey.from_dict(w)
                   for sn, w in estore.wrapped_table().items()}
        bundle = estore.store.scpu.export_deks(
            wrapped, dest_public, dest_cert, ca.root_public_key)
        # Flip (not overwrite) the last byte so the tamper is guaranteed
        # even when the genuine ciphertext happens to end in that value.
        flipped = int(bundle["ciphertext"][-2:], 16) ^ 0xFF
        bundle["ciphertext"] = bundle["ciphertext"][:-2] + f"{flipped:02x}"
        with pytest.raises(ValueError, match="authentication"):
            dest.store.scpu.import_deks(bundle)

    def test_wrong_role_certificate_rejected(self, estore, ca):
        """A genuine CA cert for the wrong role ('s') must not release DEKs."""
        dest = self._dest()
        estore.write(b"x", policy="sox")
        s_pub = dest.store.scpu.public_keys()["s"]
        s_cert = ca.certify(s_pub, role="s", now=estore.store.now)
        wrapped = {sn: WrappedKey.from_dict(w)
                   for sn, w in estore.wrapped_table().items()}
        with pytest.raises(ValueError, match="kx certificate"):
            estore.store.scpu.export_deks(wrapped, s_pub, s_cert,
                                          ca.root_public_key)


class TestCryptoShredding:
    def test_rotation_destroys_stale_epoch_keys(self, scpu):
        doomed = scpu.wrap_key(b"\x01" * 32)
        survivor = scpu.wrap_key(b"\x02" * 32)
        rewrapped = scpu.rotate_epoch([survivor])
        # The survivor unwraps under the new epoch.
        assert scpu.unwrap_key(rewrapped[0]) == b"\x02" * 32
        # The hoarded old wrap is now useless.
        with pytest.raises(ValueError, match="destroyed"):
            scpu.unwrap_key(doomed)

    def test_expired_record_unreadable_after_shred(self, estore, store, client):
        receipt = estore.write(b"to be shredded", retention_seconds=10.0)
        keeper = estore.write(b"keeper", policy="ferpa")
        store.scpu.clock.advance(20.0)
        summary = estore.maintenance()
        assert summary["deks_destroyed"] == 1
        # The surviving record still round-trips...
        assert estore.read_verified(client, keeper.sn).plaintext == b"keeper"
        # ...the shredded one is gone at the WORM layer...
        with pytest.raises(WormError):
            estore.read_verified(client, receipt.sn)
        # ...and even a hoarded ciphertext+wrapped-DEK copy is dead.
        assert store.scpu.current_epoch == 2

    def test_hoarded_copies_unrecoverable(self, estore, store, client):
        """The full insider scenario the extension exists for."""
        receipt = estore.write(b"incriminating", retention_seconds=10.0)
        # Mallory hoards everything before deletion:
        hoarded_ct = store.blocks.get(receipt.vrd.rdl[0].key)
        hoarded_wrap = estore._wrapped[receipt.sn]
        store.scpu.clock.advance(20.0)
        estore.maintenance()
        # The medium copy is shredded; her hoarded wrap cannot unwrap.
        with pytest.raises(ValueError, match="destroyed"):
            store.scpu.unwrap_key(hoarded_wrap)
        assert hoarded_ct != b"incriminating"  # and the ct alone is noise

    def test_rotation_counts(self, estore, store):
        estore.write(b"a", policy="ferpa")
        assert estore.shred_epoch() == 0  # nothing expired: pure rotation
        assert estore.rotations == 1
        assert store.scpu.current_epoch == 2

    def test_repeated_rotations_keep_survivors_readable(self, estore, client):
        receipt = estore.write(b"long-lived", policy="ferpa")
        for _ in range(3):
            estore.shred_epoch()
        assert estore.read_verified(client,
                                    receipt.sn).plaintext == b"long-lived"

    def test_wrapped_table_persistence(self, estore, client):
        receipt = estore.write(b"persisted", policy="ferpa")
        table = estore.wrapped_table()
        estore._wrapped = {}
        estore.restore_wrapped_table(table)
        assert estore.read_verified(client,
                                    receipt.sn).plaintext == b"persisted"
