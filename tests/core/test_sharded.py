"""Tests for the sharded group-commit front-end (§4.3 + §5).

The two properties the front-end must not compromise:

* **equivalence** — a 1-shard :class:`ShardedWormStore` produces
  receipts, proofs and client-verifiable reads structurally identical to
  a bare :class:`StrongWormStore`; the front-end adds routing, never a
  new trust surface;
* **isolation** — tampering inside one shard is detected by that shard's
  ordinary proofs and leaves the siblings' verifications untouched.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import (
    ShardRoutingError,
    TamperedError,
    TransientFaultError,
    VerificationError,
    WormError,
)
from repro.core.sharded import RecordLocator, ShardedWormStore
from repro.core.worm import StrongWormStore
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.manual_clock import ManualClock


@pytest.fixture
def sharded(regulator_key) -> ShardedWormStore:
    """Three shards sharing one keyring and one manual clock."""
    return ShardedWormStore.build(
        shard_count=3, keyring=demo_keyring(),
        config=StoreConfig(regulator_public_key=regulator_key.public,
                           group_commit_size=4))


@pytest.fixture
def sharded_client(sharded, ca):
    return sharded.make_client(ca)


# ---------------------------------------------------------------------------
# Locators
# ---------------------------------------------------------------------------

class TestRecordLocator:
    def test_pack_unpack_roundtrip(self):
        locator = RecordLocator(shard_id=2, sn=41, record_index=3)
        assert locator.pack() == "2:41:3"
        assert RecordLocator.unpack("2:41:3") == locator

    def test_unpack_defaults_record_index(self):
        assert RecordLocator.unpack("1:7") == RecordLocator(1, 7, 0)

    def test_unpack_rejects_garbage(self):
        with pytest.raises(ShardRoutingError):
            RecordLocator.unpack("not-a-locator")


# ---------------------------------------------------------------------------
# 1-shard equivalence with a bare StrongWormStore
# ---------------------------------------------------------------------------

class TestSingleShardEquivalence:
    @pytest.fixture
    def pair(self, regulator_key):
        """A bare store and a 1-shard front-end on one shared clock."""
        clock = ManualClock()
        bare = StrongWormStore(
            scpu=SecureCoprocessor(keyring=demo_keyring(), clock=clock),
            regulator_public_key=regulator_key.public)
        one = ShardedWormStore.build(
            shard_count=1, keyring=demo_keyring(), clock=clock,
            config=StoreConfig(regulator_public_key=regulator_key.public))
        return bare, one

    def test_receipts_structurally_identical(self, pair):
        bare, one = pair
        plain = bare.write([b"ledger page 7"], policy="sox")
        routed = one.write([b"ledger page 7"], policy="sox")
        assert (routed.shard_id, routed.record_index) == (0, 0)
        assert routed.batch_size == 1
        assert routed.sn == plain.sn
        assert routed.strength == plain.strength
        assert set(routed.costs) == set(plain.costs)
        assert routed.vrd.record_count == plain.vrd.record_count
        assert routed.vrd.attr.to_dict() == plain.vrd.attr.to_dict()
        assert routed.vrd.metasig.scheme == plain.vrd.metasig.scheme
        assert routed.vrd.datasig.scheme == plain.vrd.datasig.scheme

    def test_proofs_structurally_identical(self, pair):
        bare, one = pair
        plain = bare.write([b"minutes"], policy="sox")
        routed = one.write([b"minutes"], policy="sox")
        bare_read = bare.read(plain.sn)
        routed_read = one.read(routed.locator)
        assert routed_read.status == bare_read.status == "active"
        assert type(routed_read.proof) is type(bare_read.proof)
        assert routed_read.records == bare_read.records

    def test_client_verified_reads_equivalent(self, pair, ca):
        bare, one = pair
        plain = bare.write([b"q3 audit trail"], policy="sox")
        routed = one.write([b"q3 audit trail"], policy="sox")
        bare_verified = bare.make_client(ca).verify_read(
            bare.read(plain.sn), plain.sn)
        routed_verified = one.make_client(ca).verify_read(
            one.read(routed.locator), routed.sn)
        assert routed_verified.status == bare_verified.status == "active"
        assert routed_verified.data == bare_verified.data
        assert routed_verified.proof_kind == bare_verified.proof_kind
        assert routed_verified.weakly_signed == bare_verified.weakly_signed


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

class TestRouting:
    def test_writes_round_robin_across_shards(self, sharded):
        receipts = [sharded.write([bytes([i])], policy="sox")
                    for i in range(6)]
        assert [r.shard_id for r in receipts] == [0, 1, 2, 0, 1, 2]
        # Each shard allocated its own serial numbers from 1.
        assert [r.sn for r in receipts] == [1, 1, 1, 2, 2, 2]

    def test_every_locator_form_routes(self, sharded):
        receipt = sharded.write([b"payload"], policy="sox")
        sharded.write([b"decoy"], policy="sox")  # another shard
        for form in (receipt, receipt.locator, receipt.locator.pack(),
                     (receipt.shard_id, receipt.sn)):
            assert sharded.read_record(form) == b"payload"

    def test_unknown_shard_refused(self, sharded):
        with pytest.raises(ShardRoutingError):
            sharded.read((7, 1))
        with pytest.raises(ShardRoutingError):
            sharded.shard(-1)

    def test_unroutable_object_refused(self, sharded):
        with pytest.raises(ShardRoutingError):
            sharded.read(3.14)


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------

class TestGroupCommit:
    def test_write_batch_preserves_input_order(self, sharded):
        payloads = [b"rec-%d" % i for i in range(7)]
        receipts = sharded.write_batch(payloads, policy="sox")
        assert [sharded.read_record(r) for r in receipts] == payloads

    def test_batch_shares_one_vr_per_shard(self, sharded):
        # group_commit_size=4: the first four records form one chunk on
        # shard 0 (a single four-record VR), the remainder the next chunk
        # on shard 1 — full-size groups, not batch/shard_count slivers.
        receipts = sharded.write_batch([b"a", b"b", b"c", b"d", b"e", b"f"],
                                       policy="sox")
        first, fourth = receipts[0], receipts[3]  # both landed on shard 0
        assert first.shard_id == fourth.shard_id
        assert first.sn == fourth.sn  # one SN — one metasig/datasig pair
        assert (first.record_index, fourth.record_index) == (0, 3)
        assert first.batch_size == fourth.batch_size == 4
        assert first.vrd.record_count == 4
        fifth = receipts[4]  # the overflow chunk went to the next shard
        assert fifth.shard_id != first.shard_id
        assert fifth.batch_size == 2

    def test_batched_costs_reconstruct_flush_cost(self, sharded):
        receipts = sharded.write_batch([b"x"] * 4, policy="sox")
        by_vr = {}
        for receipt in receipts:
            by_vr.setdefault((receipt.shard_id, receipt.sn), []).append(receipt)
        for group in by_vr.values():
            # Equal shares: batch cost divided evenly over its records.
            shares = [r.total_cost for r in group]
            assert shares == pytest.approx([shares[0]] * len(shares))
            assert all(r.batch_size == len(group) for r in group)

    def test_batched_record_client_verifiable(self, sharded, sharded_client):
        payloads = [b"alpha", b"beta", b"gamma", b"delta", b"echo", b"fox"]
        receipts = sharded.write_batch(payloads, policy="sox")
        target = receipts[5]  # second record of shard 1's two-record VR
        assert target.record_index == 1
        result = sharded.read(target.locator)
        verified = sharded_client.verify_read(result, target.sn)
        assert verified.status == "active"
        assert result.records[target.record_index] == b"fox"
        assert b"fox" in verified.data

    def test_submit_flushes_at_group_commit_size(self, regulator_key):
        one = ShardedWormStore.build(
            shard_count=1, keyring=demo_keyring(),
            config=StoreConfig(regulator_public_key=regulator_key.public,
                               group_commit_size=3))
        assert one.submit(b"first", policy="sox") is None
        assert one.submit(b"second", policy="sox") is None
        assert one.pending_count == 2
        receipts = one.submit(b"third", policy="sox")
        assert [r.record_index for r in receipts] == [0, 1, 2]
        assert receipts[0].sn == receipts[2].sn
        assert one.pending_count == 0

    def test_submit_separates_incompatible_parameters(self, sharded):
        # Different write kwargs must never share a VR (one attr per VR).
        assert sharded.submit(b"sox record", policy="sox") is None
        assert sharded.submit(b"short-lived", retention_seconds=10.0) is None
        receipts = sharded.flush()
        assert len(receipts) == 2
        assert sharded.pending_count == 0
        locators = {r.locator for r in receipts}
        assert len(locators) == 2  # two distinct VRs, not one shared attr
        retentions = {r.vrd.attr.to_dict()["retention_seconds"]
                      for r in receipts}
        assert len(retentions) == 2

    def test_flush_on_empty_pipeline_is_a_noop(self, sharded):
        assert sharded.flush() == []

    def test_record_index_past_vr_end_refused(self, sharded):
        receipt = sharded.write([b"only one"], policy="sox")
        stale = RecordLocator(receipt.shard_id, receipt.sn, record_index=5)
        with pytest.raises(ShardRoutingError):
            sharded.read_record(stale)


# ---------------------------------------------------------------------------
# Adversary: tamper isolation across shards
# ---------------------------------------------------------------------------

class TestTamperIsolation:
    def test_payload_tamper_detected_without_affecting_siblings(
            self, sharded, sharded_client):
        receipts = [sharded.write([b"shard %d evidence" % i], policy="sox")
                    for i in range(3)]
        victim = receipts[1]
        shard = sharded.shard(victim.shard_id)
        rd = shard.vrdt.get_active(victim.sn).rdl[0]
        shard.blocks.unchecked_overwrite(rd.key, b"shard 1 doctored")
        with pytest.raises(VerificationError):
            sharded_client.verify_read(sharded.read(victim.locator),
                                       victim.sn)
        for receipt in (receipts[0], receipts[2]):
            verified = sharded_client.verify_read(
                sharded.read(receipt.locator), receipt.sn)
            assert verified.status == "active"

    def test_tripped_scpu_confined_to_its_shard(self, sharded, sharded_client):
        receipts = [sharded.write([bytes([i]) * 8], policy="sox")
                    for i in range(3)]
        sharded.shard(1).scpu.tamper.trip()
        # Read proofs are *stored* artifacts (§4.2.2): the dead shard
        # keeps serving verifiable reads — degraded, not dark — while
        # the siblings are entirely unaffected.
        for receipt in receipts:
            verified = sharded_client.verify_read(
                sharded.read(receipt.locator), receipt.sn)
            assert verified.status == "active"
        # Writes are a different story: the dead card cannot witness.
        with pytest.raises(TamperedError):
            sharded.shard(1).write([b"no witness left"])

    def test_certificates_skip_a_card_that_died_quietly(self, sharded, ca):
        # Regression: a card can zeroize outside any commit path (e.g.
        # during maintenance), so the breaker never heard about it.
        # certificates() must route around the corpse, not crash.
        sharded.write([b"before the trip"], policy="sox")
        sharded.shard(1).scpu.tamper.trip()
        certs = sharded.certificates(ca)   # must not raise
        assert certs
        assert 1 in sharded.degraded_shards  # ...and the breaker learned
        client = sharded.make_client(ca)
        assert client is not None


# ---------------------------------------------------------------------------
# Lifecycle: expiry and maintenance through the front-end
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_expire_record_routes_and_proves(self, sharded, sharded_client):
        sharded.write([b"long-lived decoy"], policy="sox")
        receipt = sharded.write([b"short"], retention_seconds=10.0)
        sharded.advance_clocks(20.0)
        assert sharded.expire_record(receipt.locator, sharded.now) == "deleted"
        result = sharded.read(receipt.locator)
        assert result.status == "deleted"
        verified = sharded_client.verify_read(result, receipt.sn)
        assert verified.status == "deleted"

    def test_maintenance_merges_shard_summaries(self, sharded):
        for i in range(4):
            sharded.write([bytes([i]) * 4], retention_seconds=5.0)
        sharded.advance_clocks(10.0)
        summary = sharded.maintenance()
        assert summary["expired"] == 4

    def test_budget_split_conserves_total(self):
        shares = [ShardedWormStore._budget_share(7, offset, 3)
                  for offset in range(3)]
        assert sum(shares) == 7
        assert max(shares) - min(shares) <= 1

    def test_unbounded_budget_stays_unbounded(self):
        assert ShardedWormStore._budget_share(None, 0, 3) is None


# ---------------------------------------------------------------------------
# Construction and aggregation
# ---------------------------------------------------------------------------

class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedWormStore([])
        with pytest.raises(ValueError):
            ShardedWormStore.build(shard_count=0, keyring=demo_keyring())

    def test_build_from_pool_draws_cards(self, ca):
        pool = ScpuPool.build(3, keyring=demo_keyring())
        sharded = ShardedWormStore.build(pool=pool)
        assert sharded.shard_count == 3
        assert [s.scpu for s in sharded] == list(pool.cards)
        receipt = sharded.write([b"pooled"], policy="sox")
        client = sharded.make_client(ca)
        verified = client.verify_read(sharded.read(receipt.locator),
                                      receipt.sn)
        assert verified.status == "active"

    def test_shared_keyring_means_one_certificate_set(self, sharded, ca):
        union = sharded.certificates(ca)
        single = sharded.shard(0).certificates(ca)
        assert len(union) == len(single)

    def test_cost_summary_aggregates_shards(self, sharded):
        sharded.write_batch([b"x"] * 6, policy="sox")
        summary = sharded.cost_summary()
        per_shard = sharded.per_shard_cost_seconds()
        for device in ("scpu", "host", "disk"):
            assert summary[device] == pytest.approx(
                sum(shard[device] for shard in per_shard))
        assert summary["scpu"] > 0.0

    def test_iteration_and_length(self, sharded):
        assert len(sharded) == 3
        assert all(isinstance(s, StrongWormStore) for s in sharded)

    def test_inactive_record_read_refused(self, sharded):
        receipt = sharded.write([b"gone soon"], retention_seconds=1.0)
        sharded.advance_clocks(5.0)
        sharded.expire_record(receipt.locator, sharded.now)
        with pytest.raises(WormError):
            sharded.read_record(receipt.locator)


# ---------------------------------------------------------------------------
# Flush failure semantics
# ---------------------------------------------------------------------------

class TestFlushRestoresOnFailure:
    """Regression: a failing group commit must not drop the other groups.

    ``flush()`` used to batch all receipts behind a single commit loop:
    an exception mid-loop lost the already-popped pending groups *and*
    the receipts of the groups that had committed.  It now commits
    per-group, restores the failing group, continues, and re-raises the
    first error with ``partial_receipts`` attached.
    """

    def _store_with_poisoned_policy(self, bad_policy="sox"):
        store = ShardedWormStore.build(
            shard_count=2, keyring=demo_keyring(),
            config=StoreConfig(group_commit_size=100))
        original = store._commit_group

        def poisoned(shard_id, group):
            if group.kwargs.get("policy") == bad_policy:
                raise TransientFaultError("injected commit failure")
            return original(shard_id, group)

        store._commit_group = poisoned
        return store, original

    def test_failed_group_is_restored_not_lost(self):
        store, original = self._store_with_poisoned_policy()
        for i in range(4):
            store.submit(b"good-%d" % i)
        for i in range(2):
            store.submit(b"bad-%d" % i, policy="sox")
        assert store.pending_count == 6

        with pytest.raises(TransientFaultError) as excinfo:
            store.flush()
        # The healthy groups committed and their receipts survive the
        # exception; the failed group is back in the pending queue.
        partial = excinfo.value.partial_receipts
        assert len(partial) == 4
        assert store.pending_count == 2
        for receipt in partial:
            assert store.read_record(receipt.locator).startswith(b"good-")

        # Once the failure clears, a plain flush commits the stragglers.
        store._commit_group = original
        receipts = store.flush()
        assert len(receipts) == 2
        assert store.pending_count == 0
        payloads = {store.read_record(r.locator) for r in receipts}
        assert payloads == {b"bad-0", b"bad-1"}

    def test_flush_continues_past_first_failure(self):
        store, _ = self._store_with_poisoned_policy()
        # Interleave so a poisoned group sits *before* healthy ones in
        # the shard iteration order.
        store.submit(b"bad-0", policy="sox")
        store.submit(b"bad-1", policy="sox")
        for i in range(4):
            store.submit(b"good-%d" % i)
        with pytest.raises(TransientFaultError) as excinfo:
            store.flush()
        assert len(excinfo.value.partial_receipts) == 4
        assert store.pending_count == 2
