"""Round-trip and adversarial parsing for :mod:`repro.core.locator`.

Packed locators cross the trust boundary (clients hand them back to the
service), so every malformed form must fail with the taxonomy's
``ShardRoutingError`` — never a bare ``ValueError`` that a broad
``except`` upstream would misclassify.
"""

from __future__ import annotations

import pytest

from repro import StrongWormStore, demo_keyring
from repro.core.errors import ShardRoutingError
from repro.core.locator import RecordLocator, resolve_locator
from repro.hardware import SecureCoprocessor


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("locator", [
        RecordLocator(0, 1),
        RecordLocator(0, 1, 0),
        RecordLocator(7, 41, 3),
        RecordLocator(15, 10**9, 255),
    ])
    def test_round_trip(self, locator):
        assert RecordLocator.unpack(locator.pack()) == locator

    def test_two_part_form_defaults_index_zero(self):
        assert RecordLocator.unpack("2:41") == RecordLocator(2, 41, 0)

    def test_pack_is_stable(self):
        assert RecordLocator(2, 41, 0).pack() == "2:41:0"


class TestAdversarialUnpack:
    @pytest.mark.parametrize("text", [
        "",            # empty
        "1",           # truncated: one part
        "1:2:3:4",     # too many parts
        "1::0",        # empty middle component
        "2:",          # empty trailing component
        ":",           # nothing but separator
        "-1:2",        # signed shard
        "1:-2",        # signed sn
        "1:2:-3",      # signed index
        " 1:2",        # leading whitespace
        "1:2 ",        # trailing whitespace
        "1: 2",        # inner whitespace
        "a:b",         # non-numeric
        "0x1:2",       # hex prefix
        "1.0:2",       # float-ish
        "1:0",         # serial numbers start at 1
        "1:0:0",
        "١:٢",         # Unicode digits that int() would accept
    ])
    def test_malformed_strings_raise_shard_routing(self, text):
        with pytest.raises(ShardRoutingError):
            RecordLocator.unpack(text)

    @pytest.mark.parametrize("value", [None, 42, 3.5, b"1:2:0", ["1", "2"]])
    def test_non_strings_raise_shard_routing(self, value):
        with pytest.raises(ShardRoutingError):
            RecordLocator.unpack(value)

    def test_never_a_bare_value_error(self):
        # The satellite's point: a broad `except ValueError` must not
        # be able to swallow a routing failure.
        for text in ("", "1:2:3:4", "a:b", "-1:2"):
            try:
                RecordLocator.unpack(text)
            except ShardRoutingError:
                pass  # ShardRoutingError IS the contract


class TestResolveLocator:
    def test_accepts_every_locator_like_form(self):
        expected = RecordLocator(1, 7, 2)
        assert resolve_locator(expected) is expected
        assert resolve_locator("1:7:2") == expected
        assert resolve_locator((1, 7, 2)) == expected
        assert resolve_locator((1, 7)) == RecordLocator(1, 7, 0)

        class Receipt:
            locator = expected

        assert resolve_locator(Receipt()) == expected

    @pytest.mark.parametrize("value", [
        None, object(), (1,), (1, 2, 3, 4), {"shard": 1}, True,
    ])
    def test_unroutable_values_raise_shard_routing(self, value):
        with pytest.raises(ShardRoutingError):
            resolve_locator(value)


class TestSingleStoreAcceptsPackedLocators:
    @pytest.fixture
    def store(self):
        return StrongWormStore(
            scpu=SecureCoprocessor(keyring=demo_keyring()))

    def test_read_accepts_packed_shard_zero(self, store):
        receipt = store.write([b"filed"], retention_seconds=60.0)
        result = store.read(f"0:{receipt.sn}:0")
        assert result.records[0] == b"filed"
        assert store.read(f"0:{receipt.sn}").sn == receipt.sn

    def test_expire_accepts_packed_shard_zero(self, store):
        receipt = store.write([b"short"], retention_seconds=1.0)
        store.scpu.clock.advance(30.0)
        assert store.expire_record(f"0:{receipt.sn}",
                                   now=store.now) == "deleted"

    def test_foreign_shard_is_a_routing_error(self, store):
        receipt = store.write([b"x"], retention_seconds=60.0)
        with pytest.raises(ShardRoutingError):
            store.read(f"3:{receipt.sn}:0")
        with pytest.raises(ShardRoutingError):
            store.expire_record(f"3:{receipt.sn}", now=store.now)

    def test_garbage_is_a_routing_error_not_value_error(self, store):
        for garbage in ("", "a:b", "1:2:3:4", b"0:1:0", True, None):
            with pytest.raises(ShardRoutingError):
                store.read(garbage)

    def test_plain_serial_numbers_still_work(self, store):
        receipt = store.write([b"y"], retention_seconds=60.0)
        assert store.read(receipt.sn).sn == receipt.sn
        # Unallocated serials are answerable, not errors: the store
        # returns a signed never-allocated proof (Theorem 2).
        assert store.read(receipt.sn + 1000).status == "never-allocated"
