"""Tests for content-addressed deduplication."""

import pytest

from repro.core.dedup import DedupIndex


@pytest.fixture
def index(store):
    return DedupIndex(store)


class TestDeduplication:
    def test_first_deposit_is_a_miss(self, index):
        outcome = index.deposit([b"attachment-bytes"], policy="sec17a-4")
        assert outcome.new_payload_bytes == 16
        assert outcome.shared_payload_bytes == 0
        assert index.stats() == {"hits": 0, "misses": 1, "unique_payloads": 1}

    def test_duplicate_shared_not_copied(self, index, store):
        first = index.deposit([b"popular attachment"], policy="sec17a-4")
        keys_before = set(store.blocks.keys())
        second = index.deposit([b"popular attachment"], policy="sec17a-4")
        assert second.bytes_saved == 18
        assert set(store.blocks.keys()) == keys_before  # nothing new stored
        # Both VRs reference the same physical record.
        assert (first.receipt.vrd.rdl[0].key
                == second.receipt.vrd.rdl[0].key)

    def test_mixed_vr_shares_and_stores(self, index, client, store):
        index.deposit([b"shared blob"], policy="sec17a-4")
        outcome = index.deposit([b"unique body", b"shared blob"],
                                policy="sec17a-4")
        assert outcome.new_payload_bytes == len(b"unique body")
        assert outcome.shared_payload_bytes == len(b"shared blob")
        verified = client.verify_read(store.read(outcome.receipt.sn),
                                      outcome.receipt.sn)
        assert verified.data == b"unique bodyshared blob"

    def test_deduped_reads_verify(self, index, client, store):
        a = index.deposit([b"same"], policy="sox")
        b = index.deposit([b"same"], policy="sox")
        for receipt in (a.receipt, b.receipt):
            verified = client.verify_read(store.read(receipt.sn), receipt.sn)
            assert verified.data == b"same"

    def test_poisoned_index_entry_harmless(self, index, store, client):
        """An insider rewrites the canonical copy; dedup must not serve it."""
        index.deposit([b"target payload"], policy="ferpa")
        # Rewrite the canonical bytes under the indexed key.
        digest = DedupIndex._digest(b"target payload")
        rd = index._by_digest[digest]
        store.blocks.unchecked_overwrite(rd.key, b"poisoned bytes")
        # A new deposit of the original content must NOT reuse the entry.
        outcome = index.deposit([b"target payload"], policy="ferpa")
        assert outcome.new_payload_bytes == len(b"target payload")
        verified = client.verify_read(store.read(outcome.receipt.sn),
                                      outcome.receipt.sn)
        assert verified.data == b"target payload"

    def test_expired_entries_not_resurrected(self, index, store):
        index.deposit([b"short-lived"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        outcome = index.deposit([b"short-lived"], retention_seconds=5.0)
        assert outcome.new_payload_bytes == len(b"short-lived")

    def test_forget_expired_prunes(self, index, store):
        index.deposit([b"a"], retention_seconds=5.0)
        index.deposit([b"b"], policy="ferpa")
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        assert index.forget_expired() == 1
        assert index.unique_payloads == 1

    def test_shared_payload_survives_one_referents_expiry(self, index, store):
        keeper = index.deposit([b"shared"], policy="ferpa")
        brief = index.deposit([b"shared"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        key = keeper.receipt.vrd.rdl[0].key
        assert key in store.blocks
        assert store.blocks.get(key) == b"shared"
