"""Tests for the consolidated :class:`StoreConfig` value object."""

from __future__ import annotations

import dataclasses

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.policy import PolicyRegistry
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.storage.block_store import MemoryBlockStore


class TestValueObject:
    def test_frozen(self):
        config = StoreConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.vexp_capacity = 1

    def test_replace_returns_updated_copy(self):
        config = StoreConfig()
        bigger = config.replace(vexp_capacity=128)
        assert bigger.vexp_capacity == 128
        assert config.vexp_capacity == 65536  # original untouched

    def test_with_overrides_skips_none(self):
        config = StoreConfig(window_refresh_interval=60.0)
        merged = config.with_overrides(window_refresh_interval=None,
                                       vexp_capacity=32)
        assert merged.window_refresh_interval == 60.0
        assert merged.vexp_capacity == 32

    def test_with_overrides_without_changes_is_identity(self):
        config = StoreConfig()
        assert config.with_overrides(scpu=None) is config

    def test_per_shard_resets_devices(self):
        scpu = object()
        config = StoreConfig(scpu=scpu, block_store=object(),
                             host=object(), disk=object(),
                             shard_count=4, vexp_capacity=99)
        template = config.per_shard()
        assert template.scpu is None
        assert template.block_store is None
        assert template.host is None
        assert template.disk is None
        assert template.shard_count == 1
        assert template.vexp_capacity == 99  # tuning carries over


class TestStoreConstruction:
    def test_store_accepts_config(self, regulator_key):
        scpu = SecureCoprocessor(keyring=demo_keyring())
        blocks = MemoryBlockStore()
        store = StrongWormStore(config=StoreConfig(
            scpu=scpu, block_store=blocks,
            regulator_public_key=regulator_key.public,
            window_refresh_interval=45.0, vexp_capacity=16))
        assert store.scpu is scpu
        assert store.blocks is blocks
        assert store.config.window_refresh_interval == 45.0
        assert store.config.vexp_capacity == 16

    def test_legacy_kwargs_still_work(self):
        scpu = SecureCoprocessor(keyring=demo_keyring())
        store = StrongWormStore(scpu=scpu, window_refresh_interval=45.0)
        assert store.scpu is scpu
        assert store.config.window_refresh_interval == 45.0

    def test_explicit_kwarg_beats_config_field(self):
        fast = SecureCoprocessor(keyring=demo_keyring())
        slow = SecureCoprocessor(keyring=demo_keyring())
        store = StrongWormStore(
            scpu=fast,
            config=StoreConfig(scpu=slow, window_refresh_interval=90.0))
        assert store.scpu is fast                          # kwarg won
        assert store.config.window_refresh_interval == 90.0  # config kept

    def test_config_and_kwargs_build_equivalent_stores(self, regulator_key):
        policies = PolicyRegistry()
        keyring = demo_keyring()
        via_kwargs = StrongWormStore(
            scpu=SecureCoprocessor(keyring=keyring), policies=policies,
            regulator_public_key=regulator_key.public, vexp_capacity=8)
        via_config = StrongWormStore(config=StoreConfig(
            scpu=SecureCoprocessor(keyring=keyring), policies=policies,
            regulator_public_key=regulator_key.public, vexp_capacity=8))
        a = via_kwargs.write([b"same record"], policy="sox")
        b = via_config.write([b"same record"], policy="sox")
        assert a.sn == b.sn
        assert a.strength == b.strength
        assert set(a.costs) == set(b.costs)
