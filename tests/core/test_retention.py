"""Unit tests for VEXP and the Retention Monitor (§4.2.2)."""

import pytest

from repro.core.retention import Vexp


class TestVexp:
    def test_sorted_pop_due(self):
        vexp = Vexp()
        vexp.insert(30.0, 3)
        vexp.insert(10.0, 1)
        vexp.insert(20.0, 2)
        assert vexp.pop_due(15.0) == [(10.0, 1)]
        assert vexp.pop_due(100.0) == [(20.0, 2), (30.0, 3)]
        assert len(vexp) == 0

    def test_peek_is_nondestructive(self):
        vexp = Vexp()
        vexp.insert(5.0, 1)
        assert vexp.peek() == (5.0, 1)
        assert len(vexp) == 1

    def test_remove_by_sn(self):
        vexp = Vexp()
        vexp.insert(1.0, 1)
        vexp.insert(2.0, 2)
        vexp.remove(1)
        assert vexp.peek() == (2.0, 2)

    def test_capacity_evicts_latest_for_earlier(self):
        vexp = Vexp(capacity=2)
        vexp.insert(10.0, 1)
        vexp.insert(20.0, 2)
        assert vexp.insert(5.0, 3)        # earlier: admitted, evicts 20.0
        assert vexp.needs_rescan
        assert vexp.evictions == 1
        assert [sn for _, sn in vexp.pop_due(100.0)] == [3, 1]

    def test_capacity_drops_later_entries(self):
        vexp = Vexp(capacity=2)
        vexp.insert(10.0, 1)
        vexp.insert(20.0, 2)
        assert not vexp.insert(30.0, 3)   # later than everything: dropped
        assert vexp.needs_rescan
        assert len(vexp) == 2

    def test_rebuild_clears_rescan_when_fitting(self):
        vexp = Vexp(capacity=10)
        vexp.insert(1.0, 1)
        vexp._needs_rescan = True
        vexp.rebuild([(5.0, 5), (2.0, 2)])
        assert not vexp.needs_rescan
        assert vexp.peek() == (2.0, 2)

    def test_rebuild_truncates_to_capacity(self):
        vexp = Vexp(capacity=2)
        vexp.rebuild([(3.0, 3), (1.0, 1), (2.0, 2)])
        assert len(vexp) == 2
        assert vexp.needs_rescan
        assert vexp.peek() == (1.0, 1)  # earliest kept

    def test_memory_accounting(self):
        vexp = Vexp()
        vexp.insert(1.0, 1)
        vexp.insert(2.0, 2)
        assert vexp.secure_memory_bytes() == 32

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Vexp(capacity=0)


class TestRetentionMonitor:
    def test_tick_deletes_due_records(self, store):
        receipt = store.write([b"short-lived"], retention_seconds=10.0)
        store.scpu.clock.advance(11.0)
        deleted = store.retention.tick(store.now)
        assert deleted == [receipt.sn]
        assert store.retention.deletions == 1
        assert store.vrdt.get_deletion_proof(receipt.sn) is not None

    def test_tick_before_expiry_is_noop(self, store):
        store.write([b"fresh"], retention_seconds=100.0)
        store.scpu.clock.advance(50.0)
        assert store.retention.tick(store.now) == []

    def test_next_expiry_tracks_earliest(self, store):
        store.write([b"later"], retention_seconds=500.0)
        store.write([b"sooner"], retention_seconds=100.0)
        assert store.retention.next_expiry() == pytest.approx(store.now + 100.0)

    def test_hold_blocks_and_reschedules(self, store, regulator_key):
        from repro.crypto.envelope import Envelope, Purpose
        receipt = store.write([b"litigated"], retention_seconds=10.0)
        credential = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": receipt.sn}, timestamp=store.now))
        store.lit_hold(receipt.sn, credential, hold_timeout=store.now + 500.0)

        store.scpu.clock.advance(20.0)
        assert store.retention.tick(store.now) == []
        assert store.retention.holds_encountered in (0, 1)
        assert store.vrdt.is_active(receipt.sn)

        # After the hold lapses the record finally expires.
        store.scpu.clock.advance(600.0)
        assert store.retention.tick(store.now) == [receipt.sn]

    def test_night_scan_rebuilds_vexp(self, store):
        receipts = [store.write([b"x"], retention_seconds=1000.0 + i)
                    for i in range(5)]
        store.retention.vexp.rebuild([])  # simulate lost entries
        assert store.retention.next_expiry() is None
        verified = store.retention.night_scan(store.now)
        assert verified == 5
        assert store.retention.next_expiry() == pytest.approx(
            receipts[0].vrd.attr.expires_at)

    def test_night_scan_skips_tampered_entries(self, store):
        import dataclasses
        good = store.write([b"good"], retention_seconds=1000.0)
        bad = store.write([b"bad"], retention_seconds=1000.0)
        vrd = store.vrdt.get_active(bad.sn)
        forged_attr = dataclasses.replace(vrd.attr, retention_seconds=1.0)
        store.vrdt.replace_active(dataclasses.replace(vrd, attr=forged_attr))
        verified = store.retention.night_scan(store.now)
        assert verified == 1  # only the untampered entry
        entries = {sn for _, sn in store.retention.vexp.pop_due(1e12)}
        assert good.sn in entries
        assert bad.sn not in entries

    def test_capacity_pressure_triggers_rescan_flag(self, scpu, regulator_key):
        from repro.core.worm import StrongWormStore
        small = StrongWormStore(scpu=scpu, vexp_capacity=3,
                                regulator_public_key=regulator_key.public)
        for i in range(6):
            small.write([b"x"], retention_seconds=1000.0 + i)
        assert small.retention.vexp.needs_rescan
        # A maintenance slice repairs it via night scan.
        summary = small.maintenance()
        assert summary["night_scanned"] == 6

    def test_monitor_process_in_simulation(self):
        from repro import demo_keyring
        from repro.hardware.scpu import SecureCoprocessor
        from repro.core.worm import StrongWormStore
        from repro.sim.engine import Simulator

        sim = Simulator()
        scpu = SecureCoprocessor(keyring=demo_keyring(), clock=sim.clock)
        store = StrongWormStore(scpu=scpu)
        store.attach_retention_process(sim)
        receipt = store.write([b"auto-expired"], retention_seconds=50.0)
        sim.run(until=200.0)
        assert not store.vrdt.is_active(receipt.sn)
        assert store.vrdt.get_deletion_proof(receipt.sn) is not None

    def test_monitor_alarm_reset_for_earlier_expiry(self):
        from repro import demo_keyring
        from repro.hardware.scpu import SecureCoprocessor
        from repro.core.worm import StrongWormStore
        from repro.sim.engine import Simulator

        sim = Simulator()
        scpu = SecureCoprocessor(keyring=demo_keyring(), clock=sim.clock)
        store = StrongWormStore(scpu=scpu)
        store.attach_retention_process(sim)
        store.write([b"late"], retention_seconds=1000.0)
        early = store.write([b"early"], retention_seconds=20.0)
        sim.run(until=100.0)
        # The monitor re-armed for the earlier expiry (§4.2.2).
        assert not store.vrdt.is_active(early.sn)
