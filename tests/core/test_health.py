"""Tests for the failure-domain circuit breaker."""

from __future__ import annotations

import pytest

from repro.core.health import BreakerState, CircuitBreaker


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker = CircuitBreaker()
        assert breaker.state(0.0) == BreakerState.CLOSED
        assert breaker.allows_writes(0.0)

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=30.0)
        breaker.record_transient_failure(0.0)
        breaker.record_transient_failure(0.0)
        assert breaker.state(0.0) == BreakerState.CLOSED
        breaker.record_transient_failure(0.0)
        assert breaker.state(0.0) == BreakerState.OPEN
        assert not breaker.allows_writes(0.0)

    def test_half_open_after_cooldown_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10.0)
        breaker.record_transient_failure(0.0)
        breaker.record_transient_failure(0.0)
        assert breaker.state(5.0) == BreakerState.OPEN
        assert breaker.state(10.0) == BreakerState.HALF_OPEN
        assert breaker.allows_writes(10.0)  # the probe
        breaker.record_success()
        assert breaker.state(10.0) == BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10.0)
        breaker.record_transient_failure(0.0)
        breaker.record_transient_failure(0.0)
        assert breaker.state(10.0) == BreakerState.HALF_OPEN
        breaker.record_transient_failure(10.0)
        assert breaker.state(15.0) == BreakerState.OPEN
        assert breaker.state(20.0) == BreakerState.HALF_OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_transient_failure(0.0)
        breaker.record_transient_failure(0.0)
        breaker.record_success()
        breaker.record_transient_failure(0.0)
        breaker.record_transient_failure(0.0)
        assert breaker.state(0.0) == BreakerState.CLOSED

    def test_degraded_is_terminal(self):
        breaker = CircuitBreaker()
        breaker.record_permanent_failure()
        assert breaker.degraded
        assert breaker.state(0.0) == BreakerState.DEGRADED
        assert not breaker.allows_writes(1e9)
        breaker.record_success()  # nothing un-zeroizes a card
        assert breaker.state(0.0) == BreakerState.DEGRADED

    def test_snapshot_reports_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=30.0)
        breaker.record_transient_failure(0.0)
        snap = breaker.snapshot(10.0)
        assert snap.state == BreakerState.OPEN
        assert snap.cooldown_remaining == pytest.approx(20.0)
        assert snap.transient_failures == 1
        assert snap.as_dict()["state"] == BreakerState.OPEN

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)
