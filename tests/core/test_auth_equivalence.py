"""Cross-scheme equivalence: one trace, three authentication backends.

The scheme owns only the authenticated set-membership structure; the
catalog (VRDT), witnessing, retention, and deletion proofs are shared.
So the same write/read/hold/expire trace must leave the *identical*
catalog behind any scheme, and a verifying client must reach the
identical verdicts — only the proof objects differ.  Forged variants of
each scheme's proofs must be rejected by the client.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import demo_keyring
from repro.core.auth import (
    AccumulatorMembershipProof,
    MerkleMembershipProof,
    available_schemes,
)
from repro.core.config import StoreConfig
from repro.core.errors import (
    FreshnessError,
    UnknownAlgorithmError,
    VerificationError,
)
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import SecureCoprocessor

SCHEMES = ("windows", "merkle", "accumulator")


@pytest.fixture(scope="module")
def module_ca():
    return CertificateAuthority(bits=512)


def build(scheme: str, ca: CertificateAuthority):
    scpu = SecureCoprocessor(keyring=demo_keyring())
    store = StrongWormStore(scpu=scpu,
                            config=StoreConfig(auth_scheme=scheme))
    return store, store.make_client(ca)


def run_trace(store):
    """The shared trace: writes, a hold cycle, expiries, maintenance."""
    receipts = [
        store.write([b"alpha"], retention_seconds=10.0),
        store.write([b"beta", b"gamma"], retention_seconds=10.0),
        store.write([b"delta"], retention_seconds=3600.0),
        store.write([b"epsilon"], retention_seconds=3600.0),
    ]
    store.scpu.clock.advance(20.0)
    assert store.expire_record(receipts[0].sn, store.now) == "deleted"
    assert store.expire_record(receipts[1].sn, store.now) == "deleted"
    store.maintenance(compact=False)
    return receipts


def catalog_snapshot(store):
    return {
        "active": set(store.vrdt.active_sns),
        "expired": set(store.vrdt.expired_sns),
        "frontier": store.scpu.current_serial_number,
    }


def verdicts(store, client, upto=6):
    out = {}
    for sn in range(1, upto + 1):
        verified = client.verify_read(store.read(sn), sn)
        out[sn] = (verified.status, verified.data)
    return out


def test_registry_lists_all_three_schemes():
    assert set(SCHEMES) <= set(available_schemes())


def test_unknown_scheme_raises_at_construction():
    with pytest.raises(UnknownAlgorithmError):
        build("vector-commitment", CertificateAuthority(bits=512))


def test_store_reports_its_scheme(module_ca):
    for scheme in SCHEMES:
        store, _ = build(scheme, module_ca)
        assert store.auth_scheme == scheme
        assert store.auth.name == scheme


def test_same_trace_same_catalog_and_verdicts(module_ca):
    snapshots = {}
    all_verdicts = {}
    for scheme in SCHEMES:
        store, client = build(scheme, module_ca)
        run_trace(store)
        snapshots[scheme] = catalog_snapshot(store)
        all_verdicts[scheme] = verdicts(store, client)
    reference = snapshots["windows"]
    for scheme in SCHEMES[1:]:
        assert snapshots[scheme] == reference
    reference_verdicts = all_verdicts["windows"]
    for scheme in SCHEMES[1:]:
        assert all_verdicts[scheme] == reference_verdicts
    # Sanity on the reference itself: deletions deleted, actives served.
    assert reference_verdicts[1][0] == "deleted"
    assert reference_verdicts[2][0] == "deleted"
    assert reference_verdicts[3] == ("active", b"delta")
    assert reference_verdicts[5][0] == "never-allocated"


def test_hold_and_release_verify_under_every_scheme(module_ca):
    from repro.crypto.envelope import Envelope, Purpose
    from repro.crypto.keys import SigningKey

    regulator = SigningKey.generate(512, role="regulator")
    for scheme in SCHEMES:
        scpu = SecureCoprocessor(keyring=demo_keyring())
        store = StrongWormStore(
            scpu=scpu,
            config=StoreConfig(auth_scheme=scheme,
                               regulator_public_key=regulator.public))
        client = store.make_client(module_ca)
        receipt = store.write([b"held"], retention_seconds=5.0)

        def credential():
            return regulator.sign_envelope(Envelope(
                purpose=Purpose.LITIGATION_CREDENTIAL,
                fields={"sn": receipt.sn},
                timestamp=store.now))

        store.lit_hold(receipt.sn, credential(), hold_timeout=store.now + 100.0)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active" and verified.data == b"held"
        # Retention lapsed but the hold blocks deletion.
        store.scpu.clock.advance(10.0)
        assert store.expire_record(receipt.sn, store.now) == "held"
        store.lit_release(receipt.sn, credential())
        assert store.expire_record(receipt.sn, store.now) == "deleted"
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "deleted"


def test_sharded_front_end_selects_scheme_via_config(module_ca):
    from repro.core.sharded import ShardedWormStore

    store = ShardedWormStore.build(
        config=StoreConfig(auth_scheme="accumulator", shard_count=2,
                           group_commit_size=1))
    assert store.health_report()["auth_scheme"] == "accumulator"
    for shard in store:
        assert shard.auth_scheme == "accumulator"


# ----------------------------------------------------------- forged proofs


def test_merkle_forged_leaf_rejected(module_ca):
    store, client = build("merkle", module_ca)
    receipt = store.write([b"target"], retention_seconds=3600.0)
    result = store.read(receipt.sn)
    assert isinstance(result.proof, MerkleMembershipProof)
    forged = dataclasses.replace(
        result.proof, leaf=b"\x00" * len(result.proof.leaf))
    tampered = dataclasses.replace(result, proof=forged)
    with pytest.raises(VerificationError):
        client.verify_read(tampered, receipt.sn)


def test_merkle_spliced_path_rejected(module_ca):
    # A valid path for one record does not authenticate another.
    store, client = build("merkle", module_ca)
    r1 = store.write([b"one"], retention_seconds=3600.0)
    r2 = store.write([b"two"], retention_seconds=3600.0)
    res1 = store.read(r1.sn)
    res2 = store.read(r2.sn)
    spliced = dataclasses.replace(res2, proof=res1.proof)
    with pytest.raises(VerificationError):
        client.verify_read(spliced, r2.sn)


def test_accumulator_forged_witness_rejected(module_ca):
    store, client = build("accumulator", module_ca)
    receipt = store.write([b"target"], retention_seconds=3600.0)
    result = store.read(receipt.sn)
    assert isinstance(result.proof, AccumulatorMembershipProof)
    forged = dataclasses.replace(result.proof,
                                 witness=result.proof.witness + 1)
    tampered = dataclasses.replace(result, proof=forged)
    with pytest.raises(VerificationError):
        client.verify_read(tampered, receipt.sn)


def test_accumulator_spliced_witness_rejected(module_ca):
    # The client recomputes the prime from the requested SN, so a
    # witness minted for another record never transfers.
    store, client = build("accumulator", module_ca)
    r1 = store.write([b"one"], retention_seconds=3600.0)
    r2 = store.write([b"two"], retention_seconds=3600.0)
    res1 = store.read(r1.sn)
    res2 = store.read(r2.sn)
    spliced_proof = dataclasses.replace(res2.proof,
                                        witness=res1.proof.witness)
    spliced = dataclasses.replace(res2, proof=spliced_proof)
    with pytest.raises(VerificationError):
        client.verify_read(spliced, r2.sn)


def test_stale_statement_rejected_for_denials(module_ca):
    # Merkle and accumulator denials lean on the freshness window just
    # like S_s(SN_current): an idle store's stale statement is rejected.
    for scheme in ("merkle", "accumulator"):
        store, client = build(scheme, module_ca)
        store.write([b"x"], retention_seconds=3600.0)
        store.scpu.clock.advance(10_000.0)
        result = store.read(999)
        with pytest.raises(FreshnessError):
            client.verify_read(result, 999)
        # Maintenance re-signs the statement; the denial verifies again.
        store.maintenance()
        verified = client.verify_read(store.read(999), 999)
        assert verified.status == "never-allocated"


def test_proof_and_state_size_accounting(module_ca):
    for scheme in SCHEMES:
        store, _ = build(scheme, module_ca)
        receipt = store.write([b"x"], retention_seconds=3600.0)
        result = store.read(receipt.sn)
        assert store.auth.proof_size_bytes(result.proof) > 0
        assert store.auth.state_size_bytes() > 0
