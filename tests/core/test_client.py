"""Unit tests for client-side verification (the trust chain)."""

import dataclasses

import pytest

from repro.core.client import WormClient
from repro.core.errors import FreshnessError, VerificationError
from repro.core.proofs import (
    ActiveProof,
    BaseBoundProof,
    DeletionProofResponse,
    NeverAllocatedProof,
    ReadResult,
)
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import Strength


class TestTrustBootstrap:
    def test_bad_certificate_rejected_at_construction(self, store, ca):
        certs = store.certificates(ca)
        wrong_ca = CertificateAuthority(bits=512)
        with pytest.raises(VerificationError):
            WormClient(ca_public_key=wrong_ca.root_public_key,
                       certificates=certs, clock=store.scpu.clock)

    def test_add_rotated_burst_certificate(self, store, ca, client):
        receipt_old = store.write([b"old burst"], strength=Strength.WEAK)
        new_cert = store.rotate_burst_key(ca)
        client.add_certificate(new_cert)
        receipt_new = store.write([b"new burst"], strength=Strength.WEAK)
        assert client.verify_read(store.read(receipt_new.sn),
                                  receipt_new.sn).weakly_signed
        # Old-burst-key record still verifies (its cert was kept).
        assert client.verify_read(store.read(receipt_old.sn),
                                  receipt_old.sn).status == "active"


class TestActiveReads:
    def test_verify_active(self, store, client):
        receipt = store.write([b"hello"], policy="sox")
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        assert verified.data == b"hello"
        assert not verified.weakly_signed

    def test_weak_read_flagged(self, store, client):
        receipt = store.write([b"hello"], strength=Strength.WEAK)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.weakly_signed

    def test_multi_record_vr_verifies(self, store, client):
        receipt = store.write([b"part1", b"part2", b"part3"])
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.data == b"part1part2part3"

    def test_answer_for_wrong_sn_rejected(self, store, client):
        a = store.write([b"a"])
        store.write([b"b"])
        result = store.read(a.sn)
        with pytest.raises(VerificationError, match="different SN"):
            client.verify_read(result, a.sn + 1)

    def test_status_proof_mismatch_rejected(self, store, client):
        receipt = store.write([b"x"])
        result = store.read(receipt.sn)
        twisted = dataclasses.replace(result, status="deleted")
        with pytest.raises(VerificationError):
            client.verify_read(twisted, receipt.sn)

    def test_hmac_record_rejected_by_default(self, store, client):
        receipt = store.write([b"x"], strength=Strength.HMAC)
        with pytest.raises(VerificationError, match="HMAC"):
            client.verify_read(store.read(receipt.sn), receipt.sn)

    def test_hmac_record_accepted_when_opted_in(self, store, ca):
        trusting = store.make_client(ca, accept_unverifiable=True)
        receipt = store.write([b"x"], strength=Strength.HMAC)
        verified = trusting.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"

    def test_unknown_proof_object_rejected(self, store, client):
        receipt = store.write([b"x"])
        bogus = ReadResult(sn=receipt.sn, status="active", proof=object())
        with pytest.raises(VerificationError, match="unrecognized"):
            client.verify_read(bogus, receipt.sn)


class TestDeletionProofs:
    def _expired(self, store):
        receipt = store.write([b"brief"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        return receipt

    def test_deletion_proof_verifies(self, store, client):
        receipt = self._expired(store)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "deleted"

    def test_metasig_cannot_stand_in_for_deletion_proof(self, store, client):
        receipt = store.write([b"active"])
        vrd = store.vrdt.get_active(receipt.sn)
        fake = ReadResult(sn=receipt.sn, status="deleted",
                          proof=DeletionProofResponse(proof=vrd.metasig))
        with pytest.raises(VerificationError):
            client.verify_read(fake, receipt.sn)


class TestFreshness:
    def test_stale_never_allocated_rejected(self, store, client):
        envelope = store.vrdt.sn_current_envelope
        store.scpu.clock.advance(client.freshness_window + 10.0)
        result = ReadResult(sn=9999, status="never-allocated",
                            proof=NeverAllocatedProof(sn_current=envelope))
        with pytest.raises(FreshnessError):
            client.verify_read(result, 9999)

    def test_fresh_never_allocated_accepted(self, store, client):
        result = store.read(9999)
        verified = client.verify_read(result, 9999)
        assert verified.status == "never-allocated"

    def test_future_timestamp_rejected(self, store, ca):
        # A client whose clock lags far behind the SCPU sees "future"
        # constructs and refuses them (roughly synchronized clocks are a
        # §4.2.2 footnote requirement).
        from repro.sim.manual_clock import ManualClock
        lagging = store.make_client(ca, clock=ManualClock(0.0))
        store.scpu.clock.advance(3600.0)
        store.windows.refresh_current(force=True)
        result = store.read(9999)
        with pytest.raises(FreshnessError, match="future"):
            lagging.verify_read(result, 9999)

    def test_burst_signature_expires_without_strengthening(self, store, client):
        receipt = store.write([b"x"], strength=Strength.WEAK)
        store.scpu.clock.advance(61 * 60.0)  # past 512-bit lifetime
        with pytest.raises(FreshnessError, match="lifetime"):
            client.verify_read(store.read(receipt.sn), receipt.sn)

    def test_strengthened_record_immune_to_lifetime(self, store, client):
        receipt = store.write([b"x"], strength=Strength.WEAK)
        store.strengthening.drain(store.now)
        store.scpu.clock.advance(61 * 60.0)
        store.windows.refresh_current()
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        assert not verified.weakly_signed


class TestBaseProofs:
    def test_base_proof_below(self, store, client):
        for _ in range(3):
            store.write([b"t"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        store.write([b"anchor"])
        store.windows.try_advance_base()
        result = store.read(1)
        verified = client.verify_read(result, 1)
        assert verified.status == "deleted"
        assert verified.proof_kind == "below-base"

    def test_base_proof_not_applicable_above(self, store, client):
        receipt = store.write([b"active"])
        base_env = store.vrdt.sn_base_envelope
        fake = ReadResult(sn=receipt.sn, status="deleted",
                          proof=BaseBoundProof(sn_base=base_env))
        with pytest.raises(VerificationError):
            client.verify_read(fake, receipt.sn)
