"""Unit tests for deferred-strength queues (§4.3)."""

import pytest

from repro.core.deferred import StrengtheningQueue
from repro.core.errors import ScpuUnavailableError
from repro.hardware.scpu import Strength


class TestStrengtheningQueue:
    def test_enqueue_orders_by_deadline(self, store):
        a = store.write([b"a"], strength=Strength.WEAK)
        store.scpu.clock.advance(100.0)
        b = store.write([b"b"], strength=Strength.WEAK)
        # a was issued first → earlier deadline → strengthened first.
        assert store.strengthening.strengthen_next(store.now) == a.sn
        assert store.strengthening.strengthen_next(store.now) == b.sn

    def test_strengthen_upgrades_signatures(self, store, ca):
        receipt = store.write([b"weak"], strength=Strength.WEAK)
        assert receipt.vrd.metasig.key_bits == 512
        weak_fp = receipt.vrd.metasig.key_fingerprint
        store.strengthening.strengthen_next(store.now)
        upgraded = store.vrdt.get_active(receipt.sn)
        assert upgraded.metasig.key_fingerprint != weak_fp
        assert (upgraded.metasig.key_fingerprint
                == store.scpu.public_keys()["s"].fingerprint())

    def test_strong_writes_not_enqueued(self, store):
        store.write([b"strong"], strength=Strength.STRONG)
        assert len(store.strengthening) == 0

    def test_deleted_records_skipped(self, store):
        receipt = store.write([b"doomed"], strength=Strength.WEAK,
                              retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        assert store.strengthening.strengthen_next(store.now) is None
        assert store.strengthening.strengthened_count == 0

    def test_lifetime_violation_counted(self, store):
        store.write([b"forgotten"], strength=Strength.WEAK)
        lifetime = 60 * 60.0  # 512-bit
        store.scpu.clock.advance(lifetime + 100.0)
        store.strengthening.strengthen_next(store.now)
        assert store.strengthening.lifetime_violations == 1

    def test_no_violation_within_lifetime(self, store):
        store.write([b"timely"], strength=Strength.WEAK)
        store.scpu.clock.advance(60.0)
        store.strengthening.strengthen_next(store.now)
        assert store.strengthening.lifetime_violations == 0

    def test_overdue_count(self, store):
        store.write([b"a"], strength=Strength.WEAK)
        assert store.strengthening.overdue_count(store.now) == 0
        store.scpu.clock.advance(31 * 60.0)  # past deadline (half lifetime)
        assert store.strengthening.overdue_count(store.now) == 1

    def test_drain_with_budget(self, store):
        for _ in range(5):
            store.write([b"w"], strength=Strength.WEAK)
        assert store.strengthening.drain(store.now, max_items=2) == 2
        assert len(store.strengthening) == 3
        assert store.strengthening.drain(store.now) == 3

    def test_next_deadline_empty(self, store):
        assert store.strengthening.next_deadline() is None

    def test_invalid_safety_factor(self, store):
        with pytest.raises(ValueError):
            StrengtheningQueue(store, safety_factor=0.0)
        with pytest.raises(ValueError):
            StrengtheningQueue(store, safety_factor=1.5)

    def test_hold_during_queue_wait_does_not_break_strengthening(
            self, store, regulator_key):
        """Regression: lit_hold re-issues metasig with the strong key while
        the record still sits in the strengthening queue; the later
        strengthening pass must treat the already-strong metasig as done
        and still upgrade the weak datasig."""
        from repro.crypto.envelope import Envelope, Purpose
        receipt = store.write([b"held burst record"], strength=Strength.WEAK,
                              retention_seconds=1e6)
        cred = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": receipt.sn}, timestamp=store.now))
        store.lit_hold(receipt.sn, cred, hold_timeout=store.now + 1e6)
        assert store.strengthening.strengthen_next(store.now) == receipt.sn
        upgraded = store.vrdt.get_active(receipt.sn)
        strong_fp = store.scpu.public_keys()["s"].fingerprint()
        assert upgraded.metasig.key_fingerprint == strong_fp
        assert upgraded.datasig.key_fingerprint == strong_fp
        assert upgraded.attr.litigation_hold  # the hold survived

    def test_hmac_writes_enqueued(self, store):
        store.write([b"h"], strength=Strength.HMAC)
        assert len(store.strengthening) == 1
        sn = store.strengthening.strengthen_next(store.now)
        upgraded = store.vrdt.get_active(sn)
        assert upgraded.metasig.scheme == "rsa"


class TestAccountingRegressions:
    """PR 5 fixes: violation double-count and deleted-entry reporting."""

    def test_failed_then_retried_strengthen_counts_one_violation(
            self, store, monkeypatch):
        """Regression: a strengthen attempt past hard expiry that fails
        (entry restored for retry) must count the lapse exactly once —
        it is one record whose construct lapsed, not one lapse per
        attempt."""
        store.write([b"late"], strength=Strength.WEAK)
        lifetime = 60 * 60.0  # 512-bit security lifetime
        store.scpu.clock.advance(lifetime + 100.0)

        real = store.strengthen_vrd
        attempts = []

        def flaky(sn):
            attempts.append(sn)
            if len(attempts) == 1:
                raise ScpuUnavailableError("card dropped the request")
            return real(sn)

        monkeypatch.setattr(store, "strengthen_vrd", flaky)
        with pytest.raises(ScpuUnavailableError):
            store.strengthening.strengthen_next(store.now)
        # The entry was restored for retry; the lapse already counted.
        assert len(store.strengthening) == 1
        assert store.strengthening.lifetime_violations == 1
        # The retry completes without counting the same lapse again.
        assert store.strengthening.strengthen_next(store.now) is not None
        assert store.strengthening.lifetime_violations == 1
        assert (store.strengthening.report(store.now)["lifetime_violations"]
                == 1)

    def test_deleted_entries_vanish_from_report(self, store):
        """Regression: report() used to include silently-droppable
        deleted entries in backlog/pending_sns while strengthen_next
        skipped them without a trace."""
        store.write([b"doomed"], strength=Strength.WEAK,
                    retention_seconds=5.0)
        keeper = store.write([b"keeper"], strength=Strength.WEAK,
                             retention_seconds=1e6)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)

        report = store.strengthening.report(store.now)
        assert report["pending_sns"] == [keeper.sn]
        assert report["backlog"] == 1
        assert report["skipped_deleted"] == 1
        assert store.strengthening.skipped_deleted == 1

    def test_next_deadline_ignores_deleted_entries(self, store):
        store.write([b"doomed"], strength=Strength.WEAK,
                    retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.write([b"keeper"], strength=Strength.WEAK,
                    retention_seconds=1e6)
        store.retention.tick(store.now)
        # The deleted record has the earlier deadline but protects
        # nothing; the keeper's (issue + lifetime/2) is what's next.
        assert (store.strengthening.next_deadline()
                == pytest.approx(10.0 + 60 * 60.0 * 0.5))

    def test_overdue_count_ignores_deleted_entries(self, store):
        store.write([b"doomed"], strength=Strength.WEAK,
                    retention_seconds=5.0)
        store.write([b"keeper"], strength=Strength.WEAK,
                    retention_seconds=1e9)
        store.scpu.clock.advance(31 * 60.0)  # past both deadlines
        store.retention.tick(store.now)
        assert store.strengthening.overdue_count(store.now) == 1

    def test_len_is_raw_heap_active_backlog_is_live(self, store):
        store.write([b"doomed"], strength=Strength.WEAK,
                    retention_seconds=5.0)
        store.write([b"keeper"], strength=Strength.WEAK,
                    retention_seconds=1e6)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        # Drain budgets count pops still needed; debt counts live records.
        assert len(store.strengthening) == 2
        assert store.strengthening.active_backlog() == 1

    def test_hash_verify_skip_is_counted(self, store):
        store.write([b"gone soon"], defer_data_hash=True,
                    retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        assert store.hash_verification.verify_next() is None
        assert store.hash_verification.skipped_deleted == 1


class TestHashVerificationQueue:
    def test_honest_hash_verifies(self, store):
        store.write([b"honest data"], defer_data_hash=True)
        assert len(store.hash_verification) == 1
        assert store.hash_verification.verify_next() is True
        assert store.hash_verification.mismatches == []

    def test_host_lie_detected_at_idle_time(self, store):
        receipt = store.write([b"burst data"], defer_data_hash=True)
        # The insider swaps the payload during the burst, before the SCPU
        # gets around to verifying the host-provided hash.
        rd = receipt.vrd.rdl[0]
        store.blocks.unchecked_overwrite(rd.key, b"swapped!!!")
        assert store.hash_verification.verify_next() is False
        assert store.hash_verification.mismatches == [receipt.sn]

    def test_deleted_records_skipped(self, store):
        store.write([b"gone soon"], defer_data_hash=True, retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        assert store.hash_verification.verify_next() is None

    def test_exposure_window_age(self, store):
        store.write([b"pending"], defer_data_hash=True)
        store.scpu.clock.advance(42.0)
        assert store.hash_verification.oldest_pending_age(store.now) == 42.0
        store.hash_verification.drain()
        assert store.hash_verification.oldest_pending_age(store.now) == 0.0

    def test_drain_budget(self, store):
        for _ in range(4):
            store.write([b"d"], defer_data_hash=True)
        assert store.hash_verification.drain(max_items=3) == 3
        assert len(store.hash_verification) == 1

    def test_scpu_hash_mode_not_enqueued(self, store):
        store.write([b"direct"], defer_data_hash=False)
        assert len(store.hash_verification) == 0


class TestGaugeIndexRegressions:
    """Hot-path campaign: gauge pulls read a live-deadline index, not an
    O(n) sweep of the heap that asks the VRDT about every entry."""

    def test_gauge_pulls_do_not_touch_the_vrdt(self, store, monkeypatch):
        for _ in range(8):
            store.write([b"w"], strength=Strength.WEAK)
        store.scpu.clock.advance(31 * 60.0)  # half the entries overdue? no: all

        calls = []
        real = store.vrdt.is_active

        def spy(sn):
            calls.append(sn)
            return real(sn)

        monkeypatch.setattr(store.vrdt, "is_active", spy)
        assert store.strengthening.active_backlog() == 8
        assert store.strengthening.next_deadline() is not None
        assert store.strengthening.overdue_count(store.now) == 8
        assert calls == []

    def test_gauge_pulls_do_not_scan_the_heap(self, store, monkeypatch):
        """The obs wiring pulls these gauges on every snapshot; a pull
        must not iterate the pending heap."""
        import repro.core.deferred as deferred_module
        for _ in range(4):
            store.write([b"w"], strength=Strength.WEAK)
        queue = store.strengthening

        class NoIterHeap(list):
            def __iter__(self):
                raise AssertionError("gauge pull iterated the heap")

        monkeypatch.setattr(queue, "_heap", NoIterHeap(queue._heap))
        assert queue.active_backlog() == 4
        assert queue.next_deadline() is not None
        assert queue.overdue_count(store.now) == 0

    def test_deletion_updates_gauges_without_drain(self, store):
        doomed = store.write([b"doomed"], strength=Strength.WEAK,
                             retention_seconds=5.0)
        keeper = store.write([b"keeper"], strength=Strength.WEAK,
                             retention_seconds=1e6)
        assert store.strengthening.active_backlog() == 2
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)  # deletes doomed, no drain yet
        assert store.strengthening.active_backlog() == 1
        assert len(store.strengthening) == 2  # heap still holds the ghost
        # Draining reconciles: one live strengthen, one skipped ghost.
        assert store.strengthening.strengthen_next(store.now) == keeper.sn
        assert store.strengthening.active_backlog() == 0
        assert doomed.sn not in store.strengthening.report(
            store.now)["pending_sns"]
