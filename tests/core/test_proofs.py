"""Unit tests for read-proof objects (the case-analysis data model)."""

import pytest

from repro.core.proofs import (
    ActiveProof,
    BaseBoundProof,
    DeletionProofResponse,
    DeletionWindowProof,
    NeverAllocatedProof,
    ProofKind,
    ReadResult,
)


class TestProofKinds:
    def test_kinds_are_distinct(self):
        kinds = {ProofKind.ACTIVE, ProofKind.DELETION_PROOF,
                 ProofKind.BELOW_BASE, ProofKind.DELETION_WINDOW,
                 ProofKind.NEVER_ALLOCATED}
        assert len(kinds) == 5

    def test_every_proof_class_carries_its_kind(self, store):
        receipt = store.write([b"x"], retention_seconds=1e9)
        env = store.vrdt.sn_current_envelope
        assert ActiveProof(sn_current=env).kind == ProofKind.ACTIVE
        assert NeverAllocatedProof(sn_current=env).kind == \
            ProofKind.NEVER_ALLOCATED
        base = store.vrdt.sn_base_envelope
        assert BaseBoundProof(sn_base=base).kind == ProofKind.BELOW_BASE


class TestReadResult:
    def test_data_concatenates_records(self, store):
        receipt = store.write([b"ab", b"cd"], retention_seconds=1e9)
        result = store.read(receipt.sn)
        assert result.data == b"abcd"
        assert result.records == (b"ab", b"cd")

    def test_deleted_result_has_no_data(self, store):
        receipt = store.write([b"x"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        result = store.read(receipt.sn)
        assert result.status == "deleted"
        assert result.vrd is None
        assert result.data == b""

    def test_results_are_immutable(self, store):
        receipt = store.write([b"x"], retention_seconds=1e9)
        result = store.read(receipt.sn)
        with pytest.raises(AttributeError):
            result.status = "deleted"

    def test_every_store_answer_carries_a_known_proof_type(self, store):
        """The store never emits a proof object the client can't classify."""
        known = (ActiveProof, DeletionProofResponse, BaseBoundProof,
                 DeletionWindowProof, NeverAllocatedProof)
        store.write([b"keep"], retention_seconds=1e9)
        store.write([b"die"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.maintenance()
        for sn in range(1, store.scpu.current_serial_number + 2):
            result = store.read(sn)
            assert isinstance(result.proof, known), type(result.proof)
