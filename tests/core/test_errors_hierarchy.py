"""The public error taxonomy: one root, every name importable from repro.

Clients catch ``repro.WormError`` to handle any compliance-store failure;
the historical per-module exceptions (``SignatureError``,
``TamperedError``, ``MissingRecordError``) are re-rooted under it and
re-exported from their old homes for back-compat.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import errors

_PUBLIC_ERRORS = [
    "CrashError",
    "CredentialError",
    "DegradedError",
    "FreshnessError",
    "JournalError",
    "LitigationHoldError",
    "MigrationError",
    "MissingRecordError",
    "RecoveryError",
    "ReplicationError",
    "RetentionViolationError",
    "ScpuUnavailableError",
    "SecureMemoryError",
    "ShardRoutingError",
    "SignatureError",
    "StorageUnavailableError",
    "TamperedError",
    "TransientFaultError",
    "UnknownAlgorithmError",
    "UnknownPolicyError",
    "UnknownSerialNumberError",
    "VerificationError",
    "WormError",
]


def test_hierarchy_list_matches_errors_module():
    assert sorted(_PUBLIC_ERRORS) == sorted(errors.__all__)


@pytest.mark.parametrize("name", _PUBLIC_ERRORS)
def test_reachable_from_top_level(name):
    exc = getattr(repro, name)
    assert exc is getattr(errors, name)
    assert name in repro.__all__


@pytest.mark.parametrize("name", _PUBLIC_ERRORS)
def test_rooted_under_worm_error(name):
    assert issubclass(getattr(repro, name), repro.WormError)


def test_freshness_is_a_verification_failure():
    assert issubclass(repro.FreshnessError, repro.VerificationError)


def test_missing_record_keeps_key_error_compat():
    # Pre-consolidation callers catch KeyError around block-store lookups.
    assert issubclass(repro.MissingRecordError, KeyError)
    with pytest.raises(KeyError):
        raise repro.MissingRecordError("blk-0")
    with pytest.raises(repro.WormError):
        raise repro.MissingRecordError("blk-0")


def test_legacy_module_aliases_are_the_same_objects():
    from repro.crypto.rsa import SignatureError
    from repro.hardware.tamper import TamperedError
    from repro.storage.block_store import MissingRecordError

    assert SignatureError is repro.SignatureError
    assert TamperedError is repro.TamperedError
    assert MissingRecordError is repro.MissingRecordError


def test_catching_the_root_catches_everything():
    caught = []
    for name in _PUBLIC_ERRORS:
        try:
            raise getattr(repro, name)("boom")
        except repro.WormError:
            caught.append(name)
    assert caught == _PUBLIC_ERRORS
