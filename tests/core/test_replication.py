"""Tests for N-way mirrored WORM stores."""

import pytest

from repro import demo_keyring
from repro.core.errors import WormError
from repro.core.replication import MirroredWormStore
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import SecureCoprocessor
from repro.sim.manual_clock import ManualClock


@pytest.fixture
def mirrored(ca):
    clock = ManualClock()  # replicas share wall time
    stores = [StrongWormStore(scpu=SecureCoprocessor(
        keyring=demo_keyring(), clock=clock)) for _ in range(3)]
    clients = [s.make_client(ca) for s in stores]
    return MirroredWormStore(stores, clients)


class TestBasics:
    def test_needs_two_replicas(self, ca):
        store = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        with pytest.raises(ValueError):
            MirroredWormStore([store], [store.make_client(ca)])

    def test_write_hits_every_replica(self, mirrored):
        record = mirrored.write([b"replicated"], policy="sox")
        assert len(record.replica_sns) == 3
        for store, sn in zip(mirrored._stores, record.replica_sns):
            assert store.vrdt.is_active(sn)

    def test_read_verified_roundtrip(self, mirrored):
        record = mirrored.write([b"payload"], policy="sox")
        assert mirrored.read_verified(record.record_id) == b"payload"

    def test_unknown_record_id(self, mirrored):
        with pytest.raises(WormError):
            mirrored.read_verified(42)

    def test_independent_sns_per_replica(self, mirrored):
        mirrored._stores[0].write([b"extra, replica 0 only"], policy="sox")
        record = mirrored.write([b"next"], policy="sox")
        # Replica 0's SN is ahead of the others now.
        assert record.replica_sns[0] == record.replica_sns[1] + 1


class TestFailover:
    def test_survives_one_tampered_replica(self, mirrored):
        record = mirrored.write([b"critical"], policy="sox")
        victim_store = mirrored._stores[0]
        sn = record.replica_sns[0]
        rd = victim_store.vrdt.get_active(sn).rdl[0]
        victim_store.blocks.unchecked_overwrite(rd.key, b"doctored")
        assert mirrored.read_verified(record.record_id) == b"critical"

    def test_survives_all_but_one(self, mirrored):
        record = mirrored.write([b"last copy standing"], policy="sox")
        for index in (0, 1):
            store = mirrored._stores[index]
            sn = record.replica_sns[index]
            rd = store.vrdt.get_active(sn).rdl[0]
            store.blocks.unchecked_overwrite(rd.key, b"gone")
        assert mirrored.read_verified(record.record_id) == b"last copy standing"

    def test_all_replicas_dead_fails_loudly(self, mirrored):
        record = mirrored.write([b"doomed"], policy="sox")
        for index in range(3):
            store = mirrored._stores[index]
            sn = record.replica_sns[index]
            rd = store.vrdt.get_active(sn).rdl[0]
            store.blocks.unchecked_overwrite(rd.key, b"gone")
        with pytest.raises(WormError, match="all replicas"):
            mirrored.read_verified(record.record_id)

    def test_dead_scpu_replica_skipped(self, mirrored):
        record = mirrored.write([b"resilient"], policy="sox")
        mirrored._stores[0].scpu.tamper.trip()
        # Replica 0 cannot even be read through its (dead) proof path in
        # classify() — read still succeeds via the survivors.
        assert mirrored.read_verified(record.record_id) == b"resilient"


class TestDivergenceAudit:
    def test_clean_replicas(self, mirrored):
        for i in range(4):
            mirrored.write([bytes([i]) * 8], policy="sox")
        report = mirrored.audit_divergence()
        assert report.clean
        assert report.checked == 4
        assert report.unavailable == []

    def test_tampered_replica_localized(self, mirrored):
        good = mirrored.write([b"agree"], policy="sox")
        bad = mirrored.write([b"target"], policy="sox")
        store = mirrored._stores[1]
        sn = bad.replica_sns[1]
        rd = store.vrdt.get_active(sn).rdl[0]
        store.blocks.unchecked_overwrite(rd.key, b"forged")
        report = mirrored.audit_divergence()
        assert report.clean  # verified replicas still agree
        assert (bad.record_id, 1) in report.unavailable
        assert all(rid != good.record_id for rid, _ in report.unavailable)


class TestLifecycle:
    def test_expiry_consistent_across_replicas(self, mirrored):
        record = mirrored.write([b"short"], retention_seconds=10.0)
        mirrored.advance_clocks(20.0)
        mirrored.maintenance()
        with pytest.raises(WormError):
            mirrored.read_verified(record.record_id)
        # Each replica can still *prove* the deletion independently.
        for store, client, sn in zip(mirrored._stores, mirrored._clients,
                                     record.replica_sns):
            verified = client.verify_read(store.read(sn), sn)
            assert verified.status == "deleted"
