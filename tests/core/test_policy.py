"""Unit tests for regulation policies."""

import pytest

from repro.core.errors import RetentionViolationError
from repro.core.policy import (
    STANDARD_POLICIES,
    YEAR_SECONDS,
    PolicyRegistry,
    RegulationPolicy,
)


class TestRegulationPolicy:
    def test_standard_policies_present(self):
        for name in ("sec17a-4", "hipaa", "sox", "ferpa", "dod5015",
                     "fda-cfr11", "glba", "default"):
            assert name in STANDARD_POLICIES

    def test_sec17a4_six_years(self):
        assert STANDARD_POLICIES["sec17a-4"].retention_seconds == 6 * YEAR_SECONDS

    def test_default_retention_used_when_unspecified(self):
        policy = STANDARD_POLICIES["sox"]
        assert policy.effective_retention(None) == 7 * YEAR_SECONDS

    def test_longer_retention_allowed(self):
        policy = STANDARD_POLICIES["sox"]
        assert policy.effective_retention(10 * YEAR_SECONDS) == 10 * YEAR_SECONDS

    def test_shorter_retention_refused(self):
        policy = STANDARD_POLICIES["sox"]
        with pytest.raises(RetentionViolationError):
            policy.effective_retention(1 * YEAR_SECONDS)

    def test_unregulated_policy_accepts_anything(self):
        policy = STANDARD_POLICIES["default"]
        assert policy.effective_retention(5.0) == 5.0

    def test_negative_retention_rejected_at_construction(self):
        with pytest.raises(ValueError):
            RegulationPolicy(name="bad", citation="", retention_seconds=-1.0)

    def test_secure_deletion_policies_name_shredders(self):
        from repro.core.shredding import SHREDDING_ALGORITHMS
        for policy in STANDARD_POLICIES.values():
            assert policy.shredding_algorithm in SHREDDING_ALGORITHMS


class TestPolicyRegistry:
    def test_lookup(self):
        registry = PolicyRegistry()
        assert registry.get("hipaa").name == "hipaa"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            PolicyRegistry().get("gdpr")

    def test_register_custom(self):
        registry = PolicyRegistry()
        custom = RegulationPolicy(name="site-policy", citation="internal",
                                  retention_seconds=30.0)
        registry.register(custom)
        assert "site-policy" in registry
        assert registry.get("site-policy") is custom

    def test_iteration_and_names(self):
        registry = PolicyRegistry()
        assert set(registry.names()) == set(STANDARD_POLICIES)
        assert len(list(registry)) == len(STANDARD_POLICIES)
