"""Tests for the record catalog (attribute/time queries)."""

import pytest

from repro.core.catalog import RecordCatalog


@pytest.fixture
def catalog(store):
    return RecordCatalog(store)


def _seed(store):
    """A little archive spanning policies and times."""
    receipts = {}
    receipts["sox-early"] = store.write([b"a"], policy="sox")
    store.scpu.clock.advance(100.0)
    receipts["hipaa-mid"] = store.write([b"b"], policy="hipaa")
    store.scpu.clock.advance(100.0)
    receipts["sox-late"] = store.write([b"c"], policy="sox")
    receipts["short"] = store.write([b"d"], retention_seconds=50.0)
    return receipts


class TestIndexing:
    def test_index_all(self, store, catalog):
        _seed(store)
        assert catalog.index_all() == 4
        assert catalog.size == 4
        assert catalog.index_all() == 0  # idempotent

    def test_index_unknown_sn(self, catalog):
        assert not catalog.index_record(99)

    def test_prune_expired(self, store, catalog):
        receipts = _seed(store)
        catalog.index_all()
        store.scpu.clock.advance(100.0)
        store.retention.tick(store.now)  # "short" dies
        assert catalog.prune_expired() == 1
        assert receipts["short"].sn not in catalog.query()


class TestQueries:
    def test_by_policy(self, store, catalog):
        receipts = _seed(store)
        catalog.index_all()
        assert catalog.by_policy("sox") == (receipts["sox-early"].sn,
                                            receipts["sox-late"].sn)
        assert catalog.by_policy("hipaa") == (receipts["hipaa-mid"].sn,)
        assert catalog.by_policy("nonexistent") == ()

    def test_created_between(self, store, catalog):
        receipts = _seed(store)
        catalog.index_all()
        mid_window = catalog.created_between(50.0, 150.0)
        assert mid_window == (receipts["hipaa-mid"].sn,)
        everything = catalog.created_between(0.0, 1e9)
        assert len(everything) == 4

    def test_expiring_between(self, store, catalog):
        receipts = _seed(store)
        catalog.index_all()
        soon = catalog.expiring_between(0.0, store.now + 1000.0)
        assert soon == (receipts["short"].sn,)

    def test_conjunctive_query(self, store, catalog):
        receipts = _seed(store)
        catalog.index_all()
        hits = catalog.query(policy="sox", created_after=50.0)
        assert hits == (receipts["sox-late"].sn,)
        assert catalog.query() == tuple(
            sorted(r.sn for r in receipts.values()))

    def test_litigation_hold_query(self, store, catalog, regulator_key):
        from repro.crypto.envelope import Envelope, Purpose
        receipts = _seed(store)
        catalog.index_all()
        target = receipts["hipaa-mid"].sn
        cred = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": target}, timestamp=store.now))
        store.lit_hold(target, cred, hold_timeout=store.now + 1e6)
        assert catalog.under_litigation_hold() == (target,)


class TestVerifiedRebuild:
    def test_rebuild_counts_and_completeness(self, store, catalog, client):
        receipts = _seed(store)
        count, violations = catalog.rebuild_verified(client)
        assert count == 4
        assert violations == []
        assert catalog.query() == tuple(
            sorted(r.sn for r in receipts.values()))

    def test_rebuild_flags_tampered_records(self, store, catalog, client):
        receipts = _seed(store)
        victim = receipts["sox-late"]
        store.blocks.unchecked_overwrite(victim.vrd.rdl[0].key, b"forged")
        count, violations = catalog.rebuild_verified(client)
        assert violations == [victim.sn]
        assert count == 3
        assert victim.sn not in catalog.query()

    def test_rebuild_defeats_poisoned_index(self, store, catalog, client):
        """An insider empties the index to hide a record from queries; a
        verified rebuild restores completeness from the SN sweep."""
        receipts = _seed(store)
        catalog.index_all()
        catalog._by_policy["sox"].discard(receipts["sox-early"].sn)  # poison
        assert receipts["sox-early"].sn not in catalog.by_policy("sox")
        catalog.rebuild_verified(client)
        assert receipts["sox-early"].sn in catalog.by_policy("sox")


class TestIncrementalMaintenance:
    """Hot-path campaign regressions: prune touches only affected
    buckets (emptied policy keys vanish), indexing appends instead of
    insorting, and interleaved churn stays consistent with a brute
    sweep of the VRDT."""

    def test_prune_drops_empty_policy_buckets(self, store, catalog):
        # Only the "default" policy admits short retention, so it is the
        # bucket that empties out when its sole record expires.
        store.write([b"gone"], retention_seconds=5.0)
        keeper = store.write([b"kept"], policy="sox")
        catalog.index_all()
        assert "default" in catalog._by_policy
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        assert catalog.prune_expired() == 1
        # The bucket is gone, not left as an empty set that accretes
        # one dead key per policy over multi-year churn.
        assert "default" not in catalog._by_policy
        assert catalog.by_policy("default") == ()
        assert catalog.by_policy("sox") == (keeper.sn,)

    def test_index_all_makes_no_insorts(self, store, catalog, monkeypatch):
        """Regression: index_record used bisect.insort per record —
        O(n) list shifts turning bulk indexing into O(n^2)."""
        import repro.core.catalog as catalog_module
        _seed(store)

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "index_record must append + sort on flush, not insort")

        monkeypatch.setattr(catalog_module.bisect, "insort", forbidden)
        assert catalog.index_all() == 4
        # Queries still see a correctly sorted index (the deferred sort).
        all_sns = catalog.created_between(0.0, float("inf"))
        assert all_sns == tuple(sorted(catalog._indexed))

    def test_queries_filter_tombstones_before_compaction(self, store,
                                                         catalog):
        receipts = _seed(store)
        catalog.index_all()
        store.scpu.clock.advance(100.0)
        store.retention.tick(store.now)  # "short" dies
        assert catalog.prune_expired() == 1
        # One tombstone among four entries: compaction has not run yet,
        # but range queries must not resurrect the pruned record.
        assert catalog._tombstones == 1
        dead_sn = receipts["short"].sn
        assert dead_sn not in catalog.created_between(0.0, float("inf"))
        assert dead_sn not in catalog.expiring_between(0.0, float("inf"))

    def test_churn_matches_brute_force_sweep(self, store, catalog):
        """Interleaved write → index → expire → prune cycles against a
        brute-force recomputation from the VRDT."""
        policies = ("sox", "hipaa", "default")
        for cycle in range(4):
            for i in range(6):
                if i % 2:
                    # Short-lived default-policy records churn out...
                    store.write([b"x"], retention_seconds=50.0)
                else:
                    # ...among long-lived regulated ones that persist.
                    store.write([b"x"], policy=policies[(i // 2) % 2])
            catalog.index_all()
            store.scpu.clock.advance(60.0)
            store.retention.tick(store.now)
            catalog.prune_expired()

            active = set(store.vrdt.active_sns)
            assert set(catalog._indexed) == active
            for policy in policies:
                brute = tuple(sorted(
                    sn for sn in active
                    if store.vrdt.get_active(sn).attr.policy == policy))
                assert catalog.by_policy(policy) == brute
            assert (catalog.created_between(0.0, float("inf"))
                    == tuple(sorted(active)))
            horizon = store.now + 1e9
            brute_expiring = tuple(sorted(
                sn for sn in active
                if store.vrdt.get_active(sn).attr.expires_at < horizon))
            assert (catalog.expiring_between(0.0, horizon)
                    == brute_expiring)
