"""Tests for the store auditor."""

import pytest

from repro.core.audit import StoreAuditor
from repro.hardware.scpu import Strength


@pytest.fixture
def auditor(store, client):
    return StoreAuditor(store, client)


class TestCleanSweep:
    def test_empty_store_audits_clean(self, auditor):
        report = auditor.sweep()
        assert report.clean
        assert report.total == 1  # the beyond-frontier probe
        assert report.findings[0].verdict == "never-allocated"

    def test_mixed_store_audits_clean(self, store, auditor):
        store.write([b"active"], policy="sox")
        store.write([b"brief"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.maintenance()
        store.windows.refresh_current(force=True)
        report = auditor.sweep()
        assert report.clean
        assert report.active_count == 1
        assert report.deleted_count == 1
        assert report.frontier_sn == 2

    def test_weakly_signed_records_counted(self, store, auditor):
        store.write([b"w"], strength=Strength.WEAK, retention_seconds=1e6)
        store.write([b"s"], policy="sox")
        report = auditor.sweep()
        assert report.clean
        assert report.weakly_signed_count == 1

    def test_partial_range_sweep(self, store, auditor):
        for i in range(5):
            store.write([bytes([i])], policy="sox")
        report = auditor.sweep(start_sn=2, end_sn=3)
        # 2 requested + 1 frontier probe.
        assert report.total == 3
        assert {f.sn for f in report.findings} == {2, 3, 6}


class TestViolations:
    def test_tampered_payload_is_a_violation(self, store, auditor):
        receipt = store.write([b"original"], policy="sox")
        store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"doctored")
        report = auditor.sweep()
        assert not report.clean
        assert report.violations[0].sn == receipt.sn
        assert "datasig" in report.violations[0].detail

    def test_destroyed_vrdt_slot_is_a_violation(self, store, auditor):
        receipt = store.write([b"x"], policy="sox")
        del store.vrdt._active[receipt.sn]
        report = auditor.sweep()
        assert not report.clean
        assert "cannot answer" in report.violations[0].detail

    def test_one_violation_does_not_mask_others(self, store, auditor):
        good = store.write([b"good"], policy="sox")
        bad = store.write([b"bad"], policy="sox")
        store.blocks.unchecked_overwrite(bad.vrd.rdl[0].key, b"!!!")
        report = auditor.sweep()
        assert len(report.violations) == 1
        verdicts = {f.sn: f.verdict for f in report.findings}
        assert verdicts[good.sn] == "active"
        assert verdicts[bad.sn] == "violation"

    def test_summary_counts(self, store, auditor):
        store.write([b"a"], policy="sox")
        receipt = store.write([b"b"], policy="sox")
        store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, b"!")
        summary = auditor.sweep().summary()
        assert summary["active"] == 1
        assert summary["violations"] == 1
        assert summary["total"] == 3


class TestComplianceOverview:
    def test_overview_fields(self, store, auditor, regulator_key):
        from repro.crypto.envelope import Envelope, Purpose
        store.write([b"expiring"], retention_seconds=15 * 24 * 3600.0)
        store.write([b"stable"], policy="ferpa")
        held = store.write([b"held"], policy="sox")
        cred = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": held.sn}, timestamp=store.now))
        store.lit_hold(held.sn, cred, hold_timeout=store.now + 1e9)
        store.write([b"weak"], strength=Strength.WEAK, retention_seconds=1e9)

        overview = auditor.compliance_overview()
        assert overview["active_records"] == 4
        assert overview["expiring_within_horizon"] == [1]
        assert overview["litigation_holds"] == [held.sn]
        assert overview["strengthening_backlog"] == 1
        assert overview["hash_mismatches_found"] == []
