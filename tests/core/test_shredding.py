"""Unit tests for secure-deletion shredding."""

import pytest

from repro.core.shredding import SHREDDING_ALGORITHMS, Shredder, shred
from repro.storage.block_store import MemoryBlockStore, MissingRecordError


class RecordingStore(MemoryBlockStore):
    """Captures every overwrite so tests can inspect the pass patterns."""

    def __init__(self):
        super().__init__()
        self.overwrites = []

    def overwrite(self, key, data):
        self.overwrites.append(bytes(data))
        super().overwrite(key, data)


class TestShredders:
    def test_zero_fill_single_pass(self):
        store = RecordingStore()
        key = store.put(b"secret" * 10)
        result = shred(store, key, 60, "zero-fill")
        assert result.passes == 1
        assert store.overwrites == [b"\x00" * 60]
        assert key not in store

    def test_dod_three_pass_patterns(self):
        store = RecordingStore()
        key = store.put(b"x" * 32)
        result = shred(store, key, 32, "dod-5220-3pass")
        assert result.passes == 3
        assert store.overwrites[0] == b"\x55" * 32
        assert store.overwrites[1] == b"\xaa" * 32
        assert len(store.overwrites[2]) == 32  # random pass
        assert store.overwrites[2] not in (b"\x55" * 32, b"\xaa" * 32)

    def test_random_7pass(self):
        store = RecordingStore()
        key = store.put(b"y" * 16)
        result = shred(store, key, 16, "random-7pass")
        assert result.passes == 7
        assert len(set(store.overwrites)) == 7  # fresh randomness each pass
        assert result.bytes_overwritten == 7 * 16

    def test_unlink_only_no_overwrites(self):
        store = RecordingStore()
        key = store.put(b"encrypted blob")
        result = shred(store, key, 14, "unlink-only")
        assert result.passes == 0
        assert store.overwrites == []
        assert key not in store

    def test_unknown_algorithm_refused(self):
        store = MemoryBlockStore()
        key = store.put(b"data")
        with pytest.raises(KeyError):
            shred(store, key, 4, "definitely-not-real")
        assert key in store  # nothing happened

    def test_zero_length_record(self):
        store = RecordingStore()
        key = store.put(b"")
        result = shred(store, key, 0, "dod-5220-3pass")
        assert result.passes == 3
        assert key not in store

    def test_missing_key_raises(self):
        with pytest.raises(MissingRecordError):
            shred(MemoryBlockStore(), "rec-nope", 10, "zero-fill")

    def test_no_payload_traces_after_shred(self):
        store = MemoryBlockStore()
        secret = b"THE-SMOKING-GUN"
        key = store.put(secret)
        shred(store, key, len(secret), "zero-fill")
        # Nothing in the store contains the secret anymore.
        for remaining in store.keys():
            assert secret not in store.get(remaining)

    def test_pattern_pass_repeats_to_length(self):
        custom = Shredder(name="custom", passes=(b"\xde\xad",))
        store = RecordingStore()
        key = store.put(b"z" * 5)
        custom.run(store, key, 5)
        assert store.overwrites == [b"\xde\xad\xde\xad\xde"]
