"""Integration-level tests for the StrongWormStore operations."""

import pytest

from repro.core.errors import (
    CredentialError,
    LitigationHoldError,
    RetentionViolationError,
    UnknownSerialNumberError,
    WormError,
)
from repro.crypto.envelope import Envelope, Purpose
from repro.hardware.scpu import Strength
from repro.storage.record import RecordDescriptor


def _credential(regulator_key, sn, now):
    return regulator_key.sign_envelope(Envelope(
        purpose=Purpose.LITIGATION_CREDENTIAL,
        fields={"sn": sn}, timestamp=now))


class TestWrite:
    def test_sns_are_consecutive(self, store):
        sns = [store.write([b"r"]).sn for _ in range(5)]
        assert sns == [1, 2, 3, 4, 5]

    def test_raw_bytes_rejected(self, store):
        with pytest.raises(TypeError):
            store.write(b"not a list")

    def test_empty_vr_rejected(self, store):
        with pytest.raises(WormError):
            store.write([])

    def test_policy_floor_enforced(self, store):
        with pytest.raises(RetentionViolationError):
            store.write([b"x"], policy="sox", retention_seconds=60.0)

    def test_attr_fields_recorded(self, store):
        receipt = store.write([b"x"], policy="hipaa", mac_label="phi",
                              dac_owner="dr-alice", f_flag=3)
        attr = receipt.vrd.attr
        assert attr.policy == "hipaa"
        assert attr.shredding_algorithm == "dod-5220-3pass"
        assert attr.mac_label == "phi"
        assert attr.dac_owner == "dr-alice"
        assert attr.f_flag == 3

    def test_costs_reported_per_device(self, store):
        receipt = store.write([b"x" * 4096])
        assert set(receipt.costs) == {"scpu", "host", "disk"}
        assert receipt.costs["scpu"] > 0
        assert receipt.total_cost > 0

    def test_shared_records_between_vrs(self, store, client):
        attachment = store.write([b"big attachment"], policy="sec17a-4")
        shared_rd = attachment.vrd.rdl[0]
        email = store.write([b"mail body"], policy="sec17a-4",
                            shared_rds=[shared_rd])
        assert email.vrd.record_count == 2
        verified = client.verify_read(store.read(email.sn), email.sn)
        assert verified.data == b"big attachment" + b"mail body"

    def test_deferred_hash_matches_scpu_hash(self, store):
        a = store.write([b"same data"], defer_data_hash=False)
        b = store.write([b"same data"], defer_data_hash=True)
        assert a.vrd.data_hash == b.vrd.data_hash

    def test_scpu_hash_mode_charges_more_scpu_time(self, store):
        direct = store.write([b"x" * (256 * 1024)], defer_data_hash=False)
        deferred = store.write([b"x" * (256 * 1024)], defer_data_hash=True)
        assert direct.costs["scpu"] > 5 * deferred.costs["scpu"]
        assert deferred.costs["host"] > direct.costs["host"]


class TestRead:
    def test_read_active_returns_data_and_proof(self, store):
        receipt = store.write([b"payload"])
        result = store.read(receipt.sn)
        assert result.status == "active"
        assert result.data == b"payload"

    def test_read_charges_no_scpu_time(self, store):
        receipt = store.write([b"payload"])
        mark = store.scpu.meter.checkpoint()
        store.read(receipt.sn)
        assert store.scpu.meter.delta(mark) == 0.0

    def test_read_invalid_sn(self, store):
        with pytest.raises(UnknownSerialNumberError):
            store.read(0)

    def test_read_corrupted_vrdt_raises(self, store):
        receipt = store.write([b"x"])
        del store.vrdt._active[receipt.sn]
        with pytest.raises(UnknownSerialNumberError, match="corrupted"):
            store.read(receipt.sn)

    def test_read_future_sn_never_allocated(self, store):
        result = store.read(1000)
        assert result.status == "never-allocated"


class TestExpiry:
    def test_expired_record_shredded(self, store):
        receipt = store.write([b"SECRET" * 100], retention_seconds=10.0)
        key = receipt.vrd.rdl[0].key
        store.scpu.clock.advance(20.0)
        store.retention.tick(store.now)
        assert key not in store.blocks  # payload gone entirely

    def test_shared_record_survives_one_vr_expiry(self, store):
        keeper = store.write([b"shared blob"], retention_seconds=1e9)
        shared_rd = keeper.vrd.rdl[0]
        brief = store.write([b"own record"], retention_seconds=5.0,
                            shared_rds=[shared_rd])
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        # The brief VR is gone but the shared payload must survive.
        assert shared_rd.key in store.blocks
        assert store.blocks.get(shared_rd.key) == b"shared blob"

    def test_expire_record_states(self, store):
        receipt = store.write([b"x"], retention_seconds=100.0)
        assert store.expire_record(receipt.sn, store.now) == "premature"
        assert store.expire_record(9999, store.now) == "already"
        store.scpu.clock.advance(200.0)
        assert store.expire_record(receipt.sn, store.now) == "deleted"
        assert store.expire_record(receipt.sn, store.now) == "already"


class TestLitigation:
    def test_hold_blocks_expiry(self, store, regulator_key, client):
        receipt = store.write([b"evidence"], retention_seconds=10.0)
        cred = _credential(regulator_key, receipt.sn, store.now)
        store.lit_hold(receipt.sn, cred, hold_timeout=store.now + 1000.0)
        store.scpu.clock.advance(20.0)
        assert store.expire_record(receipt.sn, store.now) == "held"
        # And the held record still verifies for clients.
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"

    def test_release_allows_expiry(self, store, regulator_key):
        receipt = store.write([b"evidence"], retention_seconds=10.0)
        hold_cred = _credential(regulator_key, receipt.sn, store.now)
        store.lit_hold(receipt.sn, hold_cred, hold_timeout=store.now + 1000.0)
        store.scpu.clock.advance(20.0)
        release_cred = _credential(regulator_key, receipt.sn, store.now)
        store.lit_release(receipt.sn, release_cred)
        assert store.expire_record(receipt.sn, store.now) == "deleted"

    def test_hold_without_credential_authority(self, scpu):
        from repro.core.worm import StrongWormStore
        bare = StrongWormStore(scpu=scpu)  # no regulator provisioned
        receipt = bare.write([b"x"])
        from repro.crypto.keys import SigningKey
        rogue = SigningKey.generate(512, role="regulator")
        cred = _credential(rogue, receipt.sn, bare.now)
        with pytest.raises(CredentialError):
            bare.lit_hold(receipt.sn, cred, hold_timeout=1e9)

    def test_forged_credential_rejected(self, store):
        from repro.crypto.keys import SigningKey
        receipt = store.write([b"x"])
        rogue = SigningKey.generate(512, role="regulator")
        cred = _credential(rogue, receipt.sn, store.now)
        with pytest.raises(CredentialError):
            store.lit_hold(receipt.sn, cred, hold_timeout=1e9)

    def test_release_without_hold_rejected(self, store, regulator_key):
        receipt = store.write([b"x"])
        cred = _credential(regulator_key, receipt.sn, store.now)
        with pytest.raises(LitigationHoldError):
            store.lit_release(receipt.sn, cred)

    def test_hold_resigns_metasig(self, store, regulator_key, client):
        receipt = store.write([b"x"])
        old_sig = receipt.vrd.metasig.signature
        cred = _credential(regulator_key, receipt.sn, store.now)
        updated = store.lit_hold(receipt.sn, cred, hold_timeout=store.now + 10.0)
        assert updated.metasig.signature != old_sig
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"

    def test_hold_on_expired_record_fails(self, store, regulator_key):
        receipt = store.write([b"x"], retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        store.retention.tick(store.now)
        cred = _credential(regulator_key, receipt.sn, store.now)
        with pytest.raises(UnknownSerialNumberError):
            store.lit_hold(receipt.sn, cred, hold_timeout=1e9)


class TestMaintenance:
    def test_summary_shape(self, store):
        store.write([b"w"], strength=Strength.WEAK, defer_data_hash=True,
                    retention_seconds=5.0)
        store.scpu.clock.advance(10.0)
        summary = store.maintenance()
        assert summary["expired"] == 1
        assert summary["hashes_verified"] in (0, 1)
        assert set(summary) == {"expired", "strengthened", "hashes_verified",
                                "windows_compacted", "base_advanced",
                                "night_scanned"}

    def test_full_cycle_compacts_and_advances(self, store):
        for _ in range(5):
            store.write([b"t"], retention_seconds=5.0)
        survivor = store.write([b"keep"], retention_seconds=1e9)
        store.scpu.clock.advance(10.0)
        summary = store.maintenance()
        assert summary["expired"] == 5
        assert summary["base_advanced"] == 1
        assert store.scpu.sn_base == survivor.sn

    def test_budgets_respected(self, store):
        for _ in range(6):
            store.write([b"w"], strength=Strength.WEAK,
                        retention_seconds=1e6)
        summary = store.maintenance(strengthen_budget=2)
        assert summary["strengthened"] == 2
        assert len(store.strengthening) == 4


class TestWriteEdgeCases:
    def test_zero_byte_record(self, store, client):
        receipt = store.write([b""], retention_seconds=1e9)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        assert verified.data == b""

    def test_many_records_in_one_vr(self, store, client):
        payloads = [bytes([i]) * (i + 1) for i in range(50)]
        receipt = store.write(payloads, retention_seconds=1e9)
        assert receipt.vrd.record_count == 50
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.data == b"".join(payloads)

    def test_inline_shared_descriptor_ordering(self, store, client):
        """RecordDescriptors inline in `records` preserve position."""
        base = store.write([b"MIDDLE"], retention_seconds=1e9)
        shared = base.vrd.rdl[0]
        receipt = store.write([b"HEAD-", shared, b"-TAIL"],
                              retention_seconds=1e9)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.data == b"HEAD-MIDDLE-TAIL"

    def test_unknown_shared_descriptor_rejected(self, store):
        from repro.storage.record import RecordDescriptor
        ghost = RecordDescriptor(key="rec-does-not-exist", length=4)
        with pytest.raises(WormError, match="not in the store"):
            store.write([b"x"], shared_rds=[ghost])

    def test_foreign_store_descriptor_rejected(self, store):
        """An RD naming a record in a *different* store's blocks fails."""
        from repro import demo_keyring
        from repro.core.worm import StrongWormStore
        from repro.hardware.scpu import SecureCoprocessor
        other = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        foreign = other.write([b"elsewhere"], retention_seconds=1e9)
        with pytest.raises(WormError):
            store.write([b"x"], shared_rds=[foreign.vrd.rdl[0]])

    def test_hmac_plus_deferred_hash_combo(self, store, client):
        """The fastest §4.3 combination still converges to fully strong."""
        receipt = store.write([b"extreme burst"], strength=Strength.HMAC,
                              defer_data_hash=True, retention_seconds=1e9)
        store.maintenance()
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        assert not verified.weakly_signed
        assert store.hash_verification.mismatches == []

    def test_write_costs_monotone_in_size(self, store):
        small = store.write([b"x" * 1024], retention_seconds=1e9)
        large = store.write([b"x" * (512 * 1024)], retention_seconds=1e9)
        assert large.costs["scpu"] > small.costs["scpu"]
        assert large.costs["host"] > small.costs["host"]


class TestImportRecord:
    def test_preserves_creation_time(self, store):
        from repro.storage.record import RecordAttributes
        attr = RecordAttributes(created_at=123.0, retention_seconds=1e6,
                                policy="sox")
        store.scpu.clock.advance(5000.0)
        receipt = store.import_record(attr, [b"migrated payload"])
        assert receipt.vrd.attr.created_at == 123.0
        assert receipt.vrd.attr.policy == "sox"
        result = store.read(receipt.sn)
        assert result.data == b"migrated payload"
