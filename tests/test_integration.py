"""End-to-end lifecycle and property-based integration tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StrongWormStore, demo_keyring
from repro.core.errors import FreshnessError, VerificationError
from repro.crypto.envelope import Envelope, Purpose
from repro.hardware.scpu import SecureCoprocessor, Strength


class TestFullLifecycle:
    def test_archive_story(self, store, client, regulator_key):
        """Write → verify → hold → release → expire → prove deletion."""
        # 1. A broker archives a trade blotter under SEC 17a-4.
        receipt = store.write([b"2026-07-02 trade blotter"],
                              policy="sec17a-4")
        assert client.verify_read(store.read(receipt.sn),
                                  receipt.sn).status == "active"

        # 2. Litigation: a court places a hold.
        cred = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": receipt.sn}, timestamp=store.now))
        store.lit_hold(receipt.sn, cred,
                       hold_timeout=store.now + 10 * 365 * 24 * 3600.0)

        # 3. Retention passes, but the hold keeps the record alive.
        store.scpu.clock.advance(7 * 365 * 24 * 3600.0)
        store.maintenance()
        assert store.vrdt.is_active(receipt.sn)

        # 4. Litigation ends; the release credential arrives.
        release = regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": receipt.sn}, timestamp=store.now))
        store.lit_release(receipt.sn, release)
        store.maintenance()

        # 5. Now the record is shredded, and its deletion is provable.
        assert not store.vrdt.is_active(receipt.sn)
        verified = client.verify_read(store.read(receipt.sn), receipt.sn)
        assert verified.status == "deleted"

    def test_burst_then_idle_story(self, store, client):
        """A write burst absorbed weakly, then strengthened in idle time."""
        receipts = [store.write([f"burst-{i}".encode()], policy="sox",
                                strength=Strength.WEAK, defer_data_hash=True)
                    for i in range(20)]
        # During the burst: records are readable, flagged weakly signed.
        early = client.verify_read(store.read(receipts[0].sn), receipts[0].sn)
        assert early.weakly_signed

        # Idle period: maintenance strengthens everything in deadline order.
        store.scpu.clock.advance(120.0)
        summary = store.maintenance()
        assert summary["strengthened"] == 20
        assert summary["hashes_verified"] == 20
        assert store.strengthening.lifetime_violations == 0
        assert store.hash_verification.mismatches == []

        # Past the weak lifetime, everything still verifies (strongly).
        store.scpu.clock.advance(2 * 3600.0)
        store.maintenance()
        late = client.verify_read(store.read(receipts[7].sn), receipts[7].sn)
        assert not late.weakly_signed


class TestCrossStoreIsolation:
    def test_signatures_do_not_transfer_between_stores(self, ca):
        """Records from store A cannot be passed off as store B's."""
        a = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        b = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        receipt = a.write([b"from store A"])
        b_client = b.make_client(ca)
        result_from_a = a.read(receipt.sn)
        with pytest.raises(VerificationError):
            b_client.verify_read(result_from_a, receipt.sn)


class TestPropertyBased:
    @given(ops=st.lists(
        st.tuples(
            st.sampled_from(["strong", "weak", "hmac"]),
            st.integers(min_value=0, max_value=4096),      # payload size
            st.floats(min_value=1.0, max_value=1e6),       # retention
        ),
        min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_committed_record_accounted_for(self, ops):
        """Invariant: after any write/expiry/maintenance mix, every SN in
        [1, SN_current] yields exactly one verifiable proof case."""
        store = StrongWormStore(scpu=SecureCoprocessor(keyring=_keyring()))
        from repro.crypto.keys import CertificateAuthority
        ca = _shared_ca()
        client = store.make_client(ca, accept_unverifiable=True)
        for strength, size, retention in ops:
            store.write([b"\x5a" * size], retention_seconds=retention,
                        strength=strength)
        store.scpu.clock.advance(50.0)
        store.maintenance()
        store.windows.refresh_current(force=True)
        for sn in range(1, store.scpu.current_serial_number + 1):
            verified = client.verify_read(store.read(sn), sn)
            assert verified.status in ("active", "deleted")

    @given(sizes=st.lists(st.integers(min_value=0, max_value=2048),
                          min_size=1, max_size=10))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reads_always_return_written_bytes(self, sizes):
        store = StrongWormStore(scpu=SecureCoprocessor(keyring=_keyring()))
        payloads = {}
        for i, size in enumerate(sizes):
            payload = bytes([i % 256]) * size
            receipt = store.write([payload], retention_seconds=1e9)
            payloads[receipt.sn] = payload
        for sn, payload in payloads.items():
            assert store.read(sn).data == payload


_CACHE: dict = {}


def _keyring():
    """One keyring per test session for hypothesis speed (never mutated)."""
    if "keyring" not in _CACHE:
        _CACHE["keyring"] = demo_keyring()
    import dataclasses
    return dataclasses.replace(_CACHE["keyring"])


def _shared_ca():
    from repro.crypto.keys import CertificateAuthority
    if "ca" not in _CACHE:
        _CACHE["ca"] = CertificateAuthority(bits=512)
    return _CACHE["ca"]
