"""System-level property tests: stateful simulation and fault injection.

Two heavy-duty properties of the whole system:

* **Lifecycle invariants** (stateful machine): under any interleaving of
  writes (all strengths), clock advances, maintenance slices, litigation
  holds/releases and reads, the store never loses accountability — every
  SN ever issued verifies as exactly one of active / deleted /
  never-allocated, retention is never violated, and strengthening never
  misses a lifetime when maintenance runs on schedule.
* **No silent corruption** (fault injection): flip any byte anywhere in
  the untrusted state; a subsequent full audit either still passes
  (corruption hit redundant/expired state) or flags a violation — but a
  verified read NEVER returns wrong data.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import StrongWormStore, demo_keyring
from repro.core.audit import StoreAuditor
from repro.core.errors import VerificationError, WormError
from repro.crypto.envelope import Envelope, Purpose
from repro.crypto.keys import CertificateAuthority, SigningKey
from repro.hardware.scpu import SecureCoprocessor, Strength

_SHARED: dict = {}


def _shared_fixtures():
    """Session-cached CA/regulator so hypothesis examples start fast."""
    if not _SHARED:
        _SHARED["ca"] = CertificateAuthority(bits=512)
        _SHARED["regulator"] = SigningKey.generate(512, role="regulator")
        _SHARED["keyring"] = demo_keyring()
    return _SHARED


class WormLifecycle(RuleBasedStateMachine):
    """Random walks through the store's public operation space."""

    def __init__(self):
        super().__init__()
        shared = _shared_fixtures()
        keyring = dataclasses.replace(shared["keyring"])
        self.store = StrongWormStore(
            scpu=SecureCoprocessor(keyring=keyring),
            regulator_public_key=shared["regulator"].public)
        self.client = self.store.make_client(shared["ca"],
                                             accept_unverifiable=True)
        self.regulator = shared["regulator"]
        self.payloads: dict = {}     # sn -> payload (never forgotten)
        self.expiries: dict = {}     # sn -> original expires_at
        self.held: set = set()

    @rule(size=st.integers(min_value=0, max_value=512),
          retention=st.floats(min_value=30.0, max_value=5000.0),
          strength=st.sampled_from([Strength.STRONG, Strength.WEAK,
                                    Strength.HMAC]),
          defer=st.booleans())
    def write(self, size, retention, strength, defer):
        payload = bytes([self.store.scpu.current_serial_number % 251]) * size
        receipt = self.store.write([payload], retention_seconds=retention,
                                   strength=strength, defer_data_hash=defer)
        self.payloads[receipt.sn] = payload
        self.expiries[receipt.sn] = receipt.vrd.attr.expires_at

    @rule(delta=st.floats(min_value=1.0, max_value=600.0))
    def advance_clock(self, delta):
        # Bounded steps keep weak constructs inside their lifetime as
        # long as maintenance runs — which the maintain rule and the
        # invariant below exercise.
        self.store.scpu.clock.advance(delta)
        self.store.maintenance(compact=True)

    @rule()
    def maintain(self):
        self.store.maintenance()

    @precondition(lambda self: any(
        sn for sn in self.store.vrdt.active_sns if sn not in self.held))
    @rule(data=st.data())
    def place_hold(self, data):
        candidates = [sn for sn in self.store.vrdt.active_sns
                      if sn not in self.held]
        sn = data.draw(st.sampled_from(candidates))
        credential = self.regulator.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": sn}, timestamp=self.store.now))
        self.store.lit_hold(sn, credential,
                            hold_timeout=self.store.now + 2000.0)
        self.held.add(sn)

    @precondition(lambda self: any(
        sn in self.store.vrdt.active_sns for sn in self.held))
    @rule(data=st.data())
    def release_hold(self, data):
        candidates = [sn for sn in self.held
                      if self.store.vrdt.is_active(sn)]
        sn = data.draw(st.sampled_from(candidates))
        credential = self.regulator.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": sn}, timestamp=self.store.now))
        self.store.lit_release(sn, credential)
        self.held.discard(sn)

    @invariant()
    def every_sn_accounted_for(self):
        self.store.windows.refresh_current(force=True)
        for sn in range(1, self.store.scpu.current_serial_number + 1):
            verified = self.client.verify_read(self.store.read(sn), sn)
            assert verified.status in ("active", "deleted")
            if verified.status == "active" and sn in self.payloads:
                assert verified.data == self.payloads[sn]

    @invariant()
    def no_premature_deletions(self):
        for sn, original_expiry in self.expiries.items():
            if self.store.vrdt.get_deletion_proof(sn) is not None:
                # Deleted: its retention must genuinely have passed, and
                # it must not be under an active hold.
                assert self.store.now >= original_expiry

    @invariant()
    def holds_always_block(self):
        for sn in self.held:
            vrd = self.store.vrdt.get_active(sn)
            if vrd is not None and self.store.now < vrd.attr.litigation_timeout:
                continue
            # A held record may only be gone if its hold timed out.
            if vrd is None:
                proof = self.store.vrdt.get_deletion_proof(sn)
                window = self.store.vrdt.window_covering(sn)
                below = sn < self.store.scpu.sn_base
                assert proof is not None or window is not None or below

    @invariant()
    def no_lifetime_violations(self):
        assert self.store.strengthening.lifetime_violations == 0

    @invariant()
    def no_hash_mismatches(self):
        assert self.store.hash_verification.mismatches == []


WormLifecycle.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
TestWormLifecycle = WormLifecycle.TestCase


class TestFaultInjection:
    """Flip untrusted bytes; demand detection or harmlessness, never lies."""

    def _populated(self):
        shared = _shared_fixtures()
        store = StrongWormStore(
            scpu=SecureCoprocessor(keyring=dataclasses.replace(
                shared["keyring"])))
        client = store.make_client(shared["ca"])
        payloads = {}
        for i in range(6):
            payload = f"record number {i}".encode() * 4
            receipt = store.write([payload], retention_seconds=1e9)
            payloads[receipt.sn] = payload
        store.windows.refresh_current(force=True)
        return store, client, payloads

    @pytest.mark.parametrize("flip_byte", [0, 7, 31, -1])
    def test_block_corruption_never_silent(self, flip_byte):
        store, client, payloads = self._populated()
        for key in list(store.blocks.keys()):
            original = store.blocks.get(key)
            corrupted = bytearray(original)
            corrupted[flip_byte] ^= 0x40
            store.blocks.unchecked_overwrite(key, bytes(corrupted))
            break
        outcomes = []
        for sn, expected in payloads.items():
            try:
                verified = client.verify_read(store.read(sn), sn)
                # If it verified, the data MUST be the original bytes.
                assert verified.data == expected
                outcomes.append("clean")
            except VerificationError:
                outcomes.append("detected")
        assert "detected" in outcomes

    def test_every_single_block_corruption_detected_by_audit(self):
        store, client, payloads = self._populated()
        for key in list(store.blocks.keys()):
            original = store.blocks.get(key)
            if not original:
                continue
            corrupted = bytearray(original)
            corrupted[len(corrupted) // 2] ^= 0x01
            store.blocks.unchecked_overwrite(key, bytes(corrupted))
            report = StoreAuditor(store, client).sweep()
            assert not report.clean
            store.blocks.unchecked_overwrite(key, original)  # heal
        # Healed store audits clean again.
        assert StoreAuditor(store, client).sweep().clean

    def test_signature_bitflips_always_detected(self):
        store, client, payloads = self._populated()
        sn = next(iter(payloads))
        vrd = store.vrdt.get_active(sn)
        flipped = bytearray(vrd.datasig.signature)
        flipped[5] ^= 0x10
        forged = dataclasses.replace(vrd, datasig=dataclasses.replace(
            vrd.datasig, signature=bytes(flipped)))
        store.vrdt.replace_active(forged)
        with pytest.raises(VerificationError):
            client.verify_read(store.read(sn), sn)

    def test_artifact_swap_detected(self):
        """Swap the stored sn_current and sn_base artifacts for each other."""
        store, client, payloads = self._populated()
        store.vrdt.sn_current_envelope, store.vrdt.sn_base_envelope = (
            store.vrdt.sn_base_envelope, store.vrdt.sn_current_envelope)
        with pytest.raises(VerificationError):
            client.verify_read(store.read(999), 999)
