"""The attack suite as tests: Theorems 1 and 2, attack by attack."""

import pytest

from repro.adversary.attacks import ATTACKS
from repro.adversary.games import run_suite


@pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.__name__)
def test_attack_outcome_matches_paper_claim(attack, env):
    outcome = attack(env)
    assert outcome.as_expected, (
        f"{outcome.name}: detected={outcome.detected}, "
        f"expected={outcome.expected_detected} — {outcome.detail}")


class TestSuiteAggregates:
    @pytest.fixture(scope="class")
    def suite(self):
        return run_suite()

    def test_theorems_hold(self, suite):
        assert suite.theorems_hold

    def test_every_theorem1_attack_detected(self, suite):
        for outcome in suite.by_theorem(1):
            assert outcome.detected, outcome.name

    def test_only_designed_exposure_survives(self, suite):
        undetected = [o.name for o in suite.outcomes if not o.detected]
        assert undetected == ["hide-within-freshness-window"]

    def test_suite_covers_both_theorems(self, suite):
        assert len(suite.by_theorem(1)) >= 7
        assert len(suite.by_theorem(2)) >= 7
