"""Tests for the soft-WORM baseline — including its designed failure."""

import pytest

from repro.baselines.soft_worm import SoftWormStore
from repro.core.errors import RetentionViolationError, WormError
from repro.sim.manual_clock import ManualClock


@pytest.fixture
def soft():
    return SoftWormStore(clock=ManualClock())


class TestHonestApi:
    def test_write_read(self, soft):
        rid = soft.write(b"record", retention_seconds=100.0)
        result = soft.read(rid)
        assert result.data == b"record"
        assert result.checksum_ok

    def test_overwrite_refused(self, soft):
        rid = soft.write(b"record", retention_seconds=100.0)
        with pytest.raises(WormError):
            soft.overwrite(rid, b"new")

    def test_early_delete_refused(self, soft):
        rid = soft.write(b"record", retention_seconds=100.0)
        with pytest.raises(RetentionViolationError):
            soft.delete(rid)

    def test_delete_after_retention_allowed(self, soft):
        rid = soft.write(b"record", retention_seconds=100.0)
        soft._clock.advance(101.0)
        soft.delete(rid)
        assert rid not in soft

    def test_unknown_record(self, soft):
        with pytest.raises(KeyError):
            soft.read(99)


class TestInsiderReality:
    """§3: the attacks soft-WORM cannot detect — by construction."""

    def test_insider_rewrite_goes_undetected(self, soft):
        rid = soft.write(b"incriminating", retention_seconds=1e6)
        soft.insider_rewrite(rid, b"exculpatory!!")
        result = soft.read(rid)
        # The product's own verification says everything is fine.
        assert result.checksum_ok
        assert result.data == b"exculpatory!!"

    def test_sloppy_insider_caught_by_checksum(self, soft):
        # Only an insider who forgets the checksum area is detected —
        # the threat model's point is that competent ones never are.
        rid = soft.write(b"incriminating", retention_seconds=1e6)
        soft.insider_rewrite(rid, b"exculpatory!!", fix_checksum=False)
        assert not soft.read(rid).checksum_ok

    def test_insider_purge_leaves_no_trace(self, soft):
        rid = soft.write(b"evidence", retention_seconds=1e6)
        soft.insider_purge(rid)
        # No record, no checksum, no retention entry — and crucially, no
        # way for an auditor to prove the record ever existed.
        assert rid not in soft
        with pytest.raises(KeyError):
            soft.read(rid)
