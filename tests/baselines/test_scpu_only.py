"""Tests for the all-in-SCPU baseline."""

import pytest

from repro import demo_keyring
from repro.baselines.scpu_only import ScpuOnlyStore
from repro.hardware.scpu import SecureCoprocessor


@pytest.fixture
def naive():
    return ScpuOnlyStore(SecureCoprocessor(keyring=demo_keyring()))


class TestScpuOnly:
    def test_write_read_roundtrip(self, naive):
        sn = naive.write(b"payload", retention_seconds=100.0)
        assert naive.read(sn) == b"payload"

    def test_reads_burn_scpu_time(self, naive):
        sn = naive.write(b"x" * 65536, retention_seconds=100.0)
        mark = naive.scpu.meter.checkpoint()
        naive.read(sn)
        read_cost = naive.scpu.meter.delta(mark)
        # A 64 KB read pays DMA in + SHA + verify + DMA out — milliseconds
        # of card time where the Strong WORM read pays zero.
        assert read_cost > 0.003

    def test_tamper_detected_in_enclosure(self, naive):
        sn = naive.write(b"original", retention_seconds=100.0)
        key = naive._entries[sn].key
        naive.blocks.unchecked_overwrite(key, b"tampered")
        with pytest.raises(ValueError, match="hash mismatch"):
            naive.read(sn)

    def test_unknown_sn(self, naive):
        with pytest.raises(KeyError):
            naive.read(7)
