"""The Merkle-WORM baseline behaviours, on the first-class backend.

Historically these tests drove ``repro.baselines.merkle_worm``, a
standalone teaching store.  PR 8 promoted that design to the pluggable
``StoreConfig(auth_scheme="merkle")`` backend, and this file now pins
the same observable properties — end-to-end verification, tamper and
forged-key rejection, and the O(log n) update cost the paper's window
scheme exists to eliminate — against the real store, so the module
could be retired (ROADMAP item).
"""

import math

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import VerificationError, WormError
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import SecureCoprocessor


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(bits=512)


def build_merkle_store():
    return StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()),
                           config=StoreConfig(auth_scheme="merkle"))


@pytest.fixture
def mstore():
    return build_merkle_store()


@pytest.fixture
def mclient(mstore, ca):
    return mstore.make_client(ca)


class TestMerkleWorm:
    def test_write_read_verify(self, mstore, mclient):
        receipt = mstore.write([b"compliance record"],
                               retention_seconds=100.0)
        verified = mclient.verify_read(mstore.read(receipt.sn), receipt.sn)
        assert verified.status == "active"
        assert verified.data == b"compliance record"

    def test_tampered_payload_detected(self, mstore, mclient):
        receipt = mstore.write([b"original"], retention_seconds=100.0)
        mstore.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key,
                                          b"tampered")
        result = mstore.read(receipt.sn)
        with pytest.raises(VerificationError):
            mclient.verify_read(result, receipt.sn)

    def test_forged_key_detected(self, mstore, mclient, ca):
        # A result signed by a *different* store's SCPU must be rejected:
        # its key fingerprints are not certified for this client.
        imposter = build_merkle_store()
        receipt = imposter.write([b"data"], retention_seconds=100.0)
        with pytest.raises(WormError):
            mclient.verify_read(imposter.read(receipt.sn), receipt.sn)

    def test_all_records_verifiable_after_many_writes(self, mstore, mclient):
        receipts = [mstore.write([f"r{i}".encode()],
                                   retention_seconds=100.0)
                    for i in range(20)]
        for receipt in receipts:
            verified = mclient.verify_read(mstore.read(receipt.sn),
                                           receipt.sn)
            assert verified.status == "active"

    def test_unknown_sn_is_a_signed_denial(self, mstore, mclient):
        # The baseline store raised a bare KeyError; the real backend is
        # stronger — never-allocated SNs come back with a verifiable
        # frontier proof instead of an unauthenticated error.
        verified = mclient.verify_read(mstore.read(42), 42)
        assert verified.status == "never-allocated"

    def test_update_hashing_grows_logarithmically(self, mstore):
        """The O(log n) cost the paper's window scheme eliminates."""
        tree = mstore.auth.tree
        costs = {}
        for i in range(1, 257):
            before = tree.hash_evaluations
            mstore.write([b"x"], retention_seconds=100.0)
            if i in (16, 256):
                costs[i] = tree.hash_evaluations - before
        # Path length grows with log2 of the store size.
        assert costs[256] > costs[16]
        assert costs[256] <= math.ceil(math.log2(256)) + 2

    def test_scpu_time_grows_with_store_size(self):
        """Average per-update SCPU seconds grow as the store grows.

        Measured over a window of appends (individual appends vary from
        O(1) — odd-node promotion — to O(log n) path recomputation).
        """
        def average_append_cost(prefill):
            mstore = build_merkle_store()
            for _ in range(prefill):
                mstore.write([b"x"], retention_seconds=100.0)
            mark = mstore.scpu.meter.checkpoint()
            for _ in range(16):
                mstore.write([b"x"], retention_seconds=100.0)
            return mstore.scpu.meter.delta(mark) / 16

        assert average_append_cost(512) > average_append_cost(8)
