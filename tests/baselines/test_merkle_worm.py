"""Tests for the Merkle-authenticated WORM baseline."""

import math

import pytest

from repro import demo_keyring
from repro.baselines.merkle_worm import MerkleWormStore
from repro.hardware.scpu import SecureCoprocessor


@pytest.fixture
def mstore():
    return MerkleWormStore(SecureCoprocessor(keyring=demo_keyring()))


class TestMerkleWorm:
    def test_write_read_verify(self, mstore):
        sn = mstore.write(b"compliance record", retention_seconds=100.0)
        result = mstore.read(sn)
        s_pub = mstore.scpu.public_keys()["s"]
        assert result.data == b"compliance record"
        assert mstore.verify_read(result, s_pub)

    def test_tampered_payload_detected(self, mstore):
        sn = mstore.write(b"original", retention_seconds=100.0)
        key, _, _ = mstore._records[sn]
        mstore.blocks.unchecked_overwrite(key, b"tampered")
        result = mstore.read(sn)
        assert not mstore.verify_read(result, mstore.scpu.public_keys()["s"])

    def test_forged_key_detected(self, mstore):
        from repro.crypto.keys import SigningKey
        sn = mstore.write(b"data", retention_seconds=100.0)
        result = mstore.read(sn)
        mallory = SigningKey.generate(512, role="s")
        assert not mstore.verify_read(result, mallory.public)

    def test_all_records_verifiable_after_many_writes(self, mstore):
        sns = [mstore.write(f"r{i}".encode(), 100.0) for i in range(20)]
        s_pub = mstore.scpu.public_keys()["s"]
        for sn in sns:
            assert mstore.verify_read(mstore.read(sn), s_pub)

    def test_unknown_sn_raises(self, mstore):
        with pytest.raises(KeyError):
            mstore.read(42)

    def test_update_hashing_grows_logarithmically(self, mstore):
        """The O(log n) cost the paper's window scheme eliminates."""
        costs = {}
        for i in range(1, 257):
            before = mstore.tree.hash_evaluations
            mstore.write(b"x", retention_seconds=100.0)
            if i in (16, 256):
                costs[i] = mstore.tree.hash_evaluations - before
        # Path length grows with log2 of the store size.
        assert costs[256] > costs[16]
        assert costs[256] <= math.ceil(math.log2(256)) + 2

    def test_scpu_time_grows_with_store_size(self):
        """Average per-update SCPU seconds grow as the store grows.

        Measured over a window of appends (individual appends vary from
        O(1) — odd-node promotion — to O(log n) path recomputation).
        """
        def average_append_cost(prefill):
            mstore = MerkleWormStore(SecureCoprocessor(keyring=demo_keyring()))
            for _ in range(prefill):
                mstore.write(b"x", 100.0)
            mark = mstore.scpu.meter.checkpoint()
            for _ in range(16):
                mstore.write(b"x", 100.0)
            return mstore.scpu.meter.delta(mark) / 16

        assert average_append_cost(1024) > average_append_cost(8)
