"""Cross-layer integration: the extensions compose, not just coexist.

Each test stacks two or more layers (pool + fs, encryption + replication,
blockdev + migration, dedup + fs, catalog + audit) and drives a real
scenario through the combined stack — the configurations a deployment
would actually run.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.worm import StrongWormStore
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.sim.manual_clock import ManualClock


class TestPoolBackedFileSystem:
    def test_fs_over_scpu_pool(self, ca):
        from repro.fs import WormFileSystem
        pool = ScpuPool.build(2, keyring=demo_keyring(), clock=ManualClock())
        store = StrongWormStore(scpu=pool)
        client = store.make_client(ca)
        fs = WormFileSystem(store)
        fs.set_directory_policy("/ledger", "sox")
        fs.write("/ledger/q1.csv", b"row1\n")
        fs.append("/ledger/q1.csv", b"row2\n")
        verified = fs.verified_read(client, "/ledger/q1.csv")
        assert verified.content == b"row1\nrow2\n"
        # Both cards shared the signing work.
        assert all(cost > 0 for cost in pool.per_card_cost_seconds())


class TestEncryptedReplication:
    def test_mirrored_encrypted_stores(self, ca):
        from repro.core.encryption import EncryptedWormStore
        clock = ManualClock()
        stores = [StrongWormStore(scpu=SecureCoprocessor(
            keyring=demo_keyring(), clock=clock)) for _ in range(2)]
        encrypted = [EncryptedWormStore(s) for s in stores]
        clients = [s.make_client(ca) for s in stores]

        # Write the same plaintext to both replicas (independent DEKs).
        receipts = [e.write(b"mirrored secret", policy="sox")
                    for e in encrypted]
        ct0 = stores[0].blocks.get(receipts[0].vrd.rdl[0].key)
        ct1 = stores[1].blocks.get(receipts[1].vrd.rdl[0].key)
        assert ct0 != ct1  # different DEKs per replica

        # Replica 0's media is imaged + tampered; replica 1 still serves.
        stores[0].blocks.unchecked_overwrite(receipts[0].vrd.rdl[0].key,
                                             b"x" * len(ct0))
        from repro.core.errors import VerificationError
        with pytest.raises(VerificationError):
            encrypted[0].read_verified(clients[0], receipts[0].sn)
        read = encrypted[1].read_verified(clients[1], receipts[1].sn)
        assert read.plaintext == b"mirrored secret"

        # Epoch rotations are per-replica and independent.
        assert encrypted[1].shred_epoch() == 0
        read = encrypted[1].read_verified(clients[1], receipts[1].sn)
        assert read.plaintext == b"mirrored secret"


class TestBlockDeviceMigration:
    def test_block_device_contents_survive_migration(self, ca):
        from repro.blockdev import WormBlockDevice
        from repro.core.migration import export_package, import_package

        old = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        dev = WormBlockDevice(old, block_size=128, capacity_blocks=32,
                              retention_seconds=1e9)
        dev.write_range(0, b"telemetry " * 30)  # several blocks

        package = export_package(old, ca)
        new = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
        report = import_package(new, package, ca)
        assert report.clean

        # Remount the device on the new store via the SN mapping.
        new_dev = WormBlockDevice(new, block_size=128, capacity_blocks=32,
                                  retention_seconds=1e9)
        from repro.blockdev.device import _BlockEntry
        for lba in dev.written_lbas():
            new_dev._lba_map[lba] = _BlockEntry(
                sn=report.sn_mapping[dev.sn_of(lba)], written_at=0.0)
        nblocks = len(list(dev.written_lbas()))
        assert new_dev.read_range(0, nblocks) == dev.read_range(0, nblocks)
        # LBA binding survived re-witnessing (payload framing intact).
        client = new.make_client(ca)
        assert new_dev.read_block_verified(client, 0).startswith(b"telemetry")


class TestDedupedFileSystem:
    def test_fs_attachments_deduped_via_shared_rds(self, store, client):
        """fs.append + dedup compose through the shared-record machinery."""
        from repro.core.dedup import DedupIndex
        from repro.fs import WormFileSystem
        fs = WormFileSystem(store)
        index = DedupIndex(store)

        attachment = b"A" * 4096
        first = index.deposit([b"mail-1 body", attachment], policy="sec17a-4")
        second = index.deposit([b"mail-2 body", attachment], policy="sec17a-4")
        assert second.bytes_saved == 4096

        fs.write("/inbox/mail-1", b"see attachment")
        verified = fs.verified_read(client, "/inbox/mail-1")
        assert verified.content == b"see attachment"


class TestCatalogDrivenAudit:
    def test_targeted_sweep_from_catalog_query(self, store, client):
        """The examiner's flow: query the catalog, audit just those SNs."""
        from repro.core.audit import StoreAuditor
        from repro.core.catalog import RecordCatalog

        sox = [store.write([bytes([i])], policy="sox") for i in range(3)]
        store.write([b"other"], policy="ferpa")
        catalog = RecordCatalog(store)
        catalog.index_all()
        targets = catalog.by_policy("sox")
        assert len(targets) == 3

        # Tamper with one SOX record; the targeted sweep finds exactly it.
        victim = sox[1]
        store.blocks.unchecked_overwrite(victim.vrd.rdl[0].key, b"!")
        auditor = StoreAuditor(store, client)
        verdicts = {sn: auditor._audit_one(sn).verdict for sn in targets}
        assert verdicts[victim.sn] == "violation"
        assert [v for v in verdicts.values()].count("active") == 2


class TestEncryptedFileSystemStack:
    def test_wormfs_on_encrypted_payloads(self, store, client):
        """FS content encrypted at the application edge still verifies:
        the WORM layers are oblivious to what the bytes mean."""
        from repro.crypto.chacha import chacha20_xor
        from repro.fs import WormFileSystem
        fs = WormFileSystem(store)
        key, nonce = b"\x11" * 32, b"\x07" * 12
        secret = b"patient notes: confidential"
        fs.write("/phi/notes", chacha20_xor(key, nonce, secret))
        verified = fs.verified_read(client, "/phi/notes")
        assert chacha20_xor(key, nonce, verified.content) == secret
