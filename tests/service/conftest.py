"""Fixtures for the service-layer suite: an observed two-shard store
behind a :class:`WormService` with two small, easily-exhausted tenants.

Tiny buckets (burst 4, rate 2/s) are deliberate: most tests want to
cross the admission boundary within a handful of requests.  The shared
:class:`~repro.sim.manual_clock.ManualClock` means refills only happen
when a test advances time explicitly.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.sharded import ShardedWormStore
from repro.obs import TelemetryBus
from repro.service import TenantConfig, WormService


@pytest.fixture
def bus() -> TelemetryBus:
    return TelemetryBus()


@pytest.fixture
def sharded(bus, regulator_key) -> ShardedWormStore:
    return ShardedWormStore.build(
        shard_count=2, keyring=demo_keyring(),
        config=StoreConfig(group_commit_size=4, observe=bus,
                           regulator_public_key=regulator_key.public))


@pytest.fixture
def service(sharded, ca) -> WormService:
    return WormService(
        sharded, ca=ca,
        tenants=[
            TenantConfig("acme", rate=2.0, burst=4, max_deferred=8),
            TenantConfig("globex", rate=2.0, burst=4, max_deferred=8),
        ])
