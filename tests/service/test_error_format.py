"""RC-2 — the RFC 9457 error-format gate.

Locks the stable ``code`` slugs of the whole WormError taxonomy (core
and service level), their uniqueness, and the problem-payload shape.
Codes are wire API: a rename here breaks deployed clients, so the
expected table is spelled out rather than derived.
"""

from __future__ import annotations

import re

import pytest

from repro.core import errors
from repro.service import (
    PROBLEM_TYPE_PREFIX,
    STATUS_BY_CODE,
    ServiceRequest,
    all_error_codes,
    problem_from_error,
    status_for,
)
from repro.service import problems as problems_module

#: Core taxonomy codes, locked class-by-class.
LOCKED_CORE_CODES = {
    "WormError": "worm-error",
    "RetentionViolationError": "retention-violation",
    "LitigationHoldError": "litigation-hold",
    "UnknownSerialNumberError": "unknown-serial-number",
    "VerificationError": "verification-failed",
    "FreshnessError": "stale-construct",
    "CredentialError": "bad-credential",
    "MigrationError": "migration-failed",
    "SecureMemoryError": "secure-memory-exhausted",
    "SignatureError": "signature-error",
    "TamperedError": "tampered",
    "MissingRecordError": "missing-record",
    "UnknownPolicyError": "unknown-policy",
    "UnknownAlgorithmError": "unknown-algorithm",
    "ShardRoutingError": "shard-routing",
    "TransientFaultError": "transient-fault",
    "ScpuUnavailableError": "scpu-unavailable",
    "StorageUnavailableError": "storage-unavailable",
    "DegradedError": "degraded",
    "CrashError": "crash-injected",
    "JournalError": "journal-error",
}

#: Service-level codes, equally locked.
LOCKED_SERVICE_CODES = {
    "RateLimitedError": "rate-limited",
    "BacklogFullError": "backlog-full",
    "UnknownTenantError": "unknown-tenant",
    "TenantIsolationError": "tenant-isolation",
    "PolicyForbiddenError": "policy-forbidden",
    "QuotaExceededError": "quota-exceeded",
    "UnknownOperationError": "unknown-operation",
    "UnsupportedVersionError": "unsupported-version",
    "UnknownTicketError": "unknown-ticket",
    "BadRequestError": "bad-request",
}

_KEBAB = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


class TestCodeTaxonomy:
    @pytest.mark.parametrize("name,code", sorted(LOCKED_CORE_CODES.items()))
    def test_core_codes_are_locked(self, name, code):
        assert getattr(errors, name).code == code

    @pytest.mark.parametrize("name,code",
                             sorted(LOCKED_SERVICE_CODES.items()))
    def test_service_codes_are_locked(self, name, code):
        assert getattr(problems_module, name).code == code

    def test_every_taxonomy_class_declares_its_own_code(self):
        # all_error_codes() raises on duplicates; its keys must cover
        # at least every locked class (subclassing without a fresh code
        # is allowed — the subclass then shares its parent's identity).
        codes = all_error_codes()
        expected = set(LOCKED_CORE_CODES.values())
        expected |= set(LOCKED_SERVICE_CODES.values())
        assert expected <= set(codes)

    def test_codes_are_unique_across_the_taxonomy(self):
        codes = all_error_codes()  # raises ValueError on a duplicate
        assert len(codes) == len(set(codes))

    def test_codes_are_kebab_case(self):
        for code in all_error_codes():
            assert _KEBAB.match(code), f"{code!r} is not kebab-case"

    def test_codes_are_literal_class_attributes(self):
        # Codes must be spelled out in each class body (wire constants),
        # never computed from __name__ at lookup time.
        for cls in all_error_codes().values():
            assert "code" in cls.__dict__
            assert isinstance(cls.__dict__["code"], str)


class TestStatusMapping:
    def test_every_mapped_code_exists(self):
        assert set(STATUS_BY_CODE) <= set(all_error_codes())

    @pytest.mark.parametrize("code,status", [
        ("retention-violation", 403),
        ("litigation-hold", 409),
        ("unknown-serial-number", 404),
        ("tenant-isolation", 404),
        ("unknown-policy", 422),
        ("rate-limited", 429),
        ("backlog-full", 429),
        ("scpu-unavailable", 503),
        ("degraded", 503),
        ("bad-request", 400),
    ])
    def test_key_statuses(self, code, status):
        assert status_for(code) == status

    def test_unmapped_codes_are_500(self):
        assert status_for("tampered") == 500
        assert status_for("verification-failed") == 500
        assert status_for("no-such-code") == 500


class TestProblemPayload:
    def test_shape_and_type_uri(self):
        problem = problem_from_error(
            errors.RetentionViolationError("still retained"), instance="r1")
        payload = problem.to_dict()
        assert payload == {
            "type": PROBLEM_TYPE_PREFIX + "retention-violation",
            "title": ("An operation would delete or alter a record "
                      "inside its retention period."),
            "status": 403,
            "detail": "still retained",
            "code": "retention-violation",
            "instance": "r1",
        }

    def test_instance_omitted_when_absent(self):
        payload = problem_from_error(errors.DegradedError("down")).to_dict()
        assert "instance" not in payload

    def test_subclass_without_code_inherits_parent_identity(self):
        class LocalError(errors.DegradedError):
            pass

        problem = problem_from_error(LocalError("shard 3 down"))
        assert problem.code == "degraded"
        assert problem.status == 503


class TestServiceProblemsEndToEnd:
    def test_store_error_surfaces_with_core_code(self, service):
        response = service.handle(ServiceRequest(
            operation="write", tenant="acme",
            params={"payload": b"x", "policy": "no-such-regulation"}))
        assert response.status == 422
        assert response.problem.code == "unknown-policy"
        assert response.problem.type == (PROBLEM_TYPE_PREFIX
                                         + "unknown-policy")

    def test_malformed_params_become_bad_request(self, service):
        response = service.handle(ServiceRequest(
            operation="write", tenant="acme",
            params={"payload": "not-bytes"}))
        assert response.status == 400
        assert response.problem.code == "bad-request"
