"""RC-1 — the API contract gate.

Locks the protocol version, the operation-name set, the request/response
wire shapes, and the dispatch completeness of the service.  A failing
test here means a client-visible protocol break: bump
``PROTOCOL_VERSION`` instead of editing the expectations.
"""

from __future__ import annotations

import pytest

from repro.service import (
    OPERATIONS,
    PROTOCOL_VERSION,
    Problem,
    ServiceRequest,
    ServiceResponse,
)

#: The contract, spelled out: renames and removals are breaking changes.
LOCKED_OPERATIONS = (
    "write",
    "write_batch",
    "read",
    "read_verified",
    "expire",
    "hold",
    "audit",
    "health",
    "redeem",
)


class TestProtocolSurface:
    def test_version_is_one(self):
        assert PROTOCOL_VERSION == 1

    def test_operation_names_are_locked(self):
        assert OPERATIONS == LOCKED_OPERATIONS

    def test_every_operation_dispatches(self, service):
        # No operation may be declared but unserved (or vice versa).
        assert set(service._handlers) == set(OPERATIONS)


class TestRequestCodec:
    def test_round_trip_with_bytes_payload(self):
        request = ServiceRequest(
            operation="write", tenant="acme",
            params={"payload": b"\x00binary\xff", "policy": "sox",
                    "tags": ["a", "b"]},
            request_id="r-17")
        wire = request.to_dict()
        assert wire["version"] == PROTOCOL_VERSION
        assert wire["params"]["payload"] == {"$bytes": "AGJpbmFyef8="}
        restored = ServiceRequest.from_dict(wire)
        assert restored == request

    def test_defaults(self):
        request = ServiceRequest(operation="health", tenant="t")
        assert request.version == PROTOCOL_VERSION
        assert request.request_id is None
        assert dict(request.params) == {}

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(TypeError):
            ServiceRequest.from_dict("write")
        with pytest.raises(TypeError):
            ServiceRequest.from_dict({"operation": "write", "tenant": "t",
                                      "params": ["not", "a", "mapping"]})


class TestResponseCodec:
    def test_success_round_trip(self):
        response = ServiceResponse(
            status=201, headers={"RateLimit-Limit": "4"},
            body={"locator": "acme/0:1:0", "payload": b"data"},
            request_id="r-1")
        restored = ServiceResponse.from_dict(response.to_dict())
        assert restored == response
        assert restored.ok and not restored.deferred

    def test_problem_round_trip(self):
        problem = Problem(
            type="urn:problem-type:strong-worm:rate-limited",
            title="over the limit", status=429, detail="slow down",
            code="rate-limited", instance="r-9")
        response = ServiceResponse(status=429,
                                   headers={"Retry-After": "1"},
                                   problem=problem)
        restored = ServiceResponse.from_dict(response.to_dict())
        assert restored.problem == problem
        assert not restored.ok

    def test_202_is_deferred(self):
        assert ServiceResponse(status=202, body={"ticket": "t"}).deferred


class TestContractEnforcement:
    def test_unknown_operation_is_a_coded_problem(self, service):
        response = service.handle(
            ServiceRequest(operation="drop_table", tenant="acme"))
        assert response.status == 400
        assert response.problem.code == "unknown-operation"

    def test_unsupported_version_is_a_coded_problem(self, service):
        response = service.handle(
            ServiceRequest(operation="health", tenant="acme",
                           version=PROTOCOL_VERSION + 1))
        assert response.status == 400
        assert response.problem.code == "unsupported-version"

    def test_unknown_tenant_is_a_coded_problem(self, service):
        response = service.handle(
            ServiceRequest(operation="health", tenant="initech"))
        assert response.status == 403
        assert response.problem.code == "unknown-tenant"

    def test_every_response_carries_request_id(self, service):
        ok = service.handle(ServiceRequest(
            operation="health", tenant="acme", request_id="rid-1"))
        bad = service.handle(ServiceRequest(
            operation="nope", tenant="acme", request_id="rid-2"))
        assert ok.request_id == "rid-1"
        assert bad.request_id == "rid-2"
        assert bad.problem.instance == "rid-2"
