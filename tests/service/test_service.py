"""End-to-end behaviour of :class:`repro.service.WormService`.

The contract gates (RC-1..RC-3) lock wire shapes; this file exercises
the semantics behind them: the write/defer/redeem lifecycle, tenant
isolation, quotas, policy allow-lists, the regulator surface, and the
``reconcile`` accounting cross-check.
"""

from __future__ import annotations

import pytest

from repro import demo_keyring
from repro.core.config import StoreConfig
from repro.core.errors import TamperedError
from repro.core.sharded import ShardedWormStore
from repro.crypto.envelope import Envelope, Purpose
from repro.service import ServiceRequest, TenantConfig, WormService


def _request(operation, tenant="acme", **params):
    return ServiceRequest(operation=operation, tenant=tenant, params=params)


def _write(service, tenant="acme", payload=b"ledger", **params):
    params.setdefault("retention_seconds", 60.0)
    return service.handle(_request("write", tenant=tenant,
                                   payload=payload, **params))


class TestWriteReadLifecycle:
    def test_accepted_write_is_immediately_readable(self, service):
        written = _write(service, payload=b"board minutes")
        assert written.status == 201
        assert written.body["locator"].startswith("acme/")
        read = service.handle(_request(
            "read", locator=written.body["locator"]))
        assert read.status == 200
        assert read.body["payload"] == b"board minutes"
        assert read.body["status"] == "active"

    def test_read_verified_returns_proof_metadata(self, service, sharded):
        written = _write(service, payload=b"attested")
        sharded.advance_clocks(5.0)  # refill for the read token
        verified = service.handle(_request(
            "read_verified", locator=written.body["locator"]))
        assert verified.status == 200
        assert verified.body["payload"] == b"attested"
        assert verified.body["proof_kind"] == "active"

    def test_deferred_write_redeems_after_flush(self, service, sharded):
        for _ in range(4):
            _write(service)  # drain the burst
        deferred = _write(service, payload=b"deferred-record")
        assert deferred.status == 202
        ticket = deferred.body["ticket"]

        sharded.advance_clocks(2.0)  # a token for the redeem poll
        pending = service.handle(_request("redeem", ticket=ticket))
        assert pending.status == 202
        assert pending.body["state"] == "pending"

        service.flush()
        sharded.advance_clocks(2.0)
        durable = service.handle(_request("redeem", ticket=ticket))
        assert durable.status == 200
        assert durable.body["state"] == "durable"

        sharded.advance_clocks(2.0)
        read = service.handle(_request(
            "read", locator=durable.body["locator"]))
        assert read.body["payload"] == b"deferred-record"

    def test_unknown_ticket_is_a_404(self, service):
        response = service.handle(_request("redeem", ticket="acme-t999"))
        assert response.status == 404
        assert response.problem.code == "unknown-ticket"

    def test_batch_write_returns_locators_in_order(self, service, sharded):
        payloads = [b"a", b"b", b"c"]
        response = service.handle(_request(
            "write_batch", payloads=payloads, retention_seconds=60.0))
        assert response.status == 201
        sharded.advance_clocks(10.0)
        for locator, expected in zip(response.body["locators"], payloads):
            read = service.handle(_request("read", locator=locator))
            assert read.body["payload"] == expected


class TestTenantIsolation:
    def test_cross_tenant_read_is_a_404(self, service):
        written = _write(service, tenant="acme")
        probe = service.handle(_request(
            "read", tenant="globex", locator=written.body["locator"]))
        # Deliberately 404, not 403: whether the record exists is
        # itself confidential across the tenant boundary.
        assert probe.status == 404
        assert probe.problem.code == "tenant-isolation"

    def test_unscoped_probe_of_raw_locator_is_refused(self, service):
        _write(service, tenant="acme")
        probe = service.handle(_request(
            "read", tenant="globex", locator="globex/0:1:0"))
        assert probe.status == 404
        assert probe.problem.code == "tenant-isolation"

    def test_cross_tenant_expire_is_refused(self, service, sharded):
        written = _write(service, tenant="acme")
        sharded.advance_clocks(120.0)
        probe = service.handle(_request(
            "expire", tenant="globex", locator=written.body["locator"]))
        assert probe.status == 404
        assert probe.problem.code == "tenant-isolation"


class TestQuotasAndPolicies:
    @pytest.fixture
    def strict_service(self, sharded, ca):
        return WormService(sharded, ca=ca, tenants=[
            TenantConfig("acme", rate=100.0, burst=200, quota_records=2,
                         allowed_policies=frozenset({"default", "sox"})),
        ])

    def test_quota_counts_durable_plus_inflight(self, strict_service):
        assert _write(strict_service).status == 201
        assert _write(strict_service).status == 201
        refused = _write(strict_service)
        assert refused.status == 403
        assert refused.problem.code == "quota-exceeded"

    def test_policy_allow_list(self, strict_service):
        seven_years = 7 * 365.25 * 86400.0
        assert _write(strict_service, policy="sox",
                      retention_seconds=seven_years).status == 201
        refused = _write(strict_service, policy="hipaa")
        assert refused.status == 403
        assert refused.problem.code == "policy-forbidden"

    def test_expired_records_free_quota(self, strict_service, sharded):
        first = _write(strict_service, retention_seconds=10.0)
        _write(strict_service)
        sharded.advance_clocks(30.0)
        expired = strict_service.handle(_request(
            "expire", locator=first.body["locator"]))
        assert expired.body["outcome"] == "deleted"
        # The slot is NOT reclaimed: WORM quota is write-once too —
        # deletion proofs still occupy the tenant's allocation.
        refused = _write(strict_service)
        assert refused.problem.code == "quota-exceeded"


class TestRegulatorSurface:
    @staticmethod
    def _credential(regulator_key, sn, now):
        return regulator_key.sign_envelope(Envelope(
            purpose=Purpose.LITIGATION_CREDENTIAL,
            fields={"sn": sn}, timestamp=now))

    def test_hold_blocks_expiry_until_release(self, service, sharded,
                                              regulator_key):
        written = _write(service, retention_seconds=10.0)
        sn = written.body["sn"]
        sharded.advance_clocks(30.0)

        held = service.handle(_request(
            "hold", locator=written.body["locator"],
            credential=self._credential(regulator_key, sn, service.now),
            hold_until=service.now + 1000.0))
        assert held.status == 200 and held.body["held"]

        blocked = service.handle(_request(
            "expire", locator=written.body["locator"]))
        assert blocked.body["outcome"] == "held"

        released = service.handle(_request(
            "hold", locator=written.body["locator"], release=True,
            credential=self._credential(regulator_key, sn, service.now)))
        assert released.body["released"]

        expired = service.handle(_request(
            "expire", locator=written.body["locator"]))
        assert expired.body["outcome"] == "deleted"

    def test_hold_without_credential_is_bad_request(self, service):
        written = _write(service)
        response = service.handle(_request(
            "hold", locator=written.body["locator"],
            hold_until=service.now + 100.0))
        assert response.status == 400
        assert response.problem.code == "bad-request"

    def test_audit_sweep_reports_clean(self, service, sharded):
        _write(service)
        service.handle(_request(
            "write_batch", tenant="globex", payloads=[b"g1", b"g2"],
            retention_seconds=60.0))
        sharded.advance_clocks(10.0)
        report = service.handle(_request("audit"))
        assert report.status == 200
        assert report.body["clean"] is True
        assert len(report.body["shards"]) == 2


class TestAccounting:
    def test_reconcile_is_clean_after_mixed_traffic(self, service, sharded):
        for i in range(10):
            _write(service, payload=b"r%d" % i)
            sharded.advance_clocks(0.2)
        service.flush()
        assert service.reconcile() == []

    def test_stats_and_bus_agree(self, service, bus, sharded):
        for _ in range(6):
            _write(service)
        service.flush()
        stats = service.stats()["acme"]
        counters = bus.snapshot()["counters"]
        assert counters["service.tenant.acme.requests"] == stats["requests"]
        assert counters["service.tenant.acme.accepted"] == stats["accepted"]
        assert counters["service.tenant.acme.deferred"] == stats["deferred"]
        assert (stats["accepted"] + stats["redeemed"]
                == stats["durable_records"])

    def test_tampering_is_never_a_problem_payload(self, service, sharded,
                                                  monkeypatch):
        # TamperedError is the one alarm that must not be swallowed
        # into a tidy 500 for the caller — it propagates raw so the
        # transport layer can page, not respond.
        written = _write(service)
        sharded.advance_clocks(5.0)
        monkeypatch.setattr(
            sharded, "read",
            lambda *a, **k: (_ for _ in ()).throw(
                TamperedError("witness mismatch")))
        with pytest.raises(TamperedError):
            service.handle(_request(
                "read", locator=written.body["locator"]))


class TestTenantConfigValidation:
    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            TenantConfig("")
        with pytest.raises(ValueError):
            TenantConfig("a/b")

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            TenantConfig("t", rate=0.0)
        with pytest.raises(ValueError):
            TenantConfig("t", burst=0)
        with pytest.raises(ValueError):
            TenantConfig("t", max_deferred=-1)

    def test_duplicate_tenants_rejected(self, sharded, ca):
        with pytest.raises(ValueError):
            WormService(sharded, ca=ca, tenants=[
                TenantConfig("dup"), TenantConfig("dup")])
