"""RC-3 — the IETF ``RateLimit-*`` header gate.

Every service response — success or problem — must carry the three
draft-ietf-httpapi-ratelimit-headers fields as integer strings, and
every 429 must additionally carry a ``Retry-After`` of at least one
second.  All timing is virtual: buckets refill only when the store's
ManualClock advances.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceRequest, TokenBucket, ratelimit_headers

RATELIMIT_HEADERS = ("RateLimit-Limit", "RateLimit-Remaining",
                     "RateLimit-Reset")


def _health(service, tenant="acme"):
    return service.handle(ServiceRequest(operation="health", tenant=tenant))


def _write(service, tenant="acme", payload=b"x"):
    return service.handle(ServiceRequest(
        operation="write", tenant=tenant,
        params={"payload": payload, "retention_seconds": 60.0}))


class TestHeadersOnEveryResponse:
    def test_success_carries_integer_ratelimit_headers(self, service):
        response = _health(service)
        assert response.status == 200
        for name in RATELIMIT_HEADERS:
            assert name in response.headers
            int(response.headers[name])  # must parse as an integer

    def test_problem_carries_integer_ratelimit_headers(self, service):
        response = service.handle(
            ServiceRequest(operation="nope", tenant="acme"))
        assert response.status == 400
        for name in RATELIMIT_HEADERS:
            int(response.headers[name])

    def test_unknown_tenant_still_gets_headers(self, service):
        # No tenant bucket exists; the service must still emit the
        # trio (from its anonymous bucket) so clients can back off.
        response = _health(service, tenant="hooli")
        assert response.status == 403
        for name in RATELIMIT_HEADERS:
            assert name in response.headers

    def test_limit_reflects_tenant_burst(self, service):
        assert _health(service).headers["RateLimit-Limit"] == "4"


class TestRemainingAndReset:
    def test_remaining_decreases_with_spend(self, service):
        before = int(_write(service).headers["RateLimit-Remaining"])
        after = int(_write(service).headers["RateLimit-Remaining"])
        assert after == before - 1

    def test_reset_zero_when_full(self, service, sharded):
        sharded.advance_clocks(60.0)  # refill to burst
        assert _health(service).headers["RateLimit-Reset"] == "0"

    def test_reset_positive_after_spend(self, service):
        _write(service)
        assert int(_health(service).headers["RateLimit-Reset"]) >= 1


class TestRetryAfterOn429:
    def test_starved_read_is_rate_limited_with_retry_after(self, service):
        # Reads shed immediately when the bucket is dry (no deferral
        # path for reads) — drain the burst with writes, then read.
        written = _write(service)
        for _ in range(4):
            _write(service)
        response = service.handle(ServiceRequest(
            operation="read", tenant="acme",
            params={"locator": written.body["locator"]}))
        assert response.status == 429
        assert response.problem.code == "rate-limited"
        assert int(response.headers["Retry-After"]) >= 1

    def test_backlog_full_write_carries_retry_after(self, service):
        # Distinct retention values land in distinct group-commit
        # queues, so nothing auto-flushes and the deferred backlog
        # (max_deferred=8) genuinely fills.
        for _ in range(4):
            _write(service)  # drain the token burst
        for i in range(8):
            deferred = service.handle(ServiceRequest(
                operation="write", tenant="acme",
                params={"payload": b"d", "retention_seconds": 100.0 + i}))
            assert deferred.status == 202
        shed = service.handle(ServiceRequest(
            operation="write", tenant="acme",
            params={"payload": b"d", "retention_seconds": 999.0}))
        assert shed.status == 429
        assert shed.problem.code == "backlog-full"
        assert int(shed.headers["Retry-After"]) >= 1

    def test_health_is_exempt_from_rate_limiting(self, service):
        # Monitoring must never be shed: drain the bucket, then poll.
        for _ in range(8):
            _write(service)
        assert _health(service).status == 200

    def test_bucket_recovers_in_virtual_time(self, service, sharded):
        written = _write(service)
        locator = written.body["locator"]
        for _ in range(4):
            _write(service)

        def read():
            return service.handle(ServiceRequest(
                operation="read", tenant="acme",
                params={"locator": locator}))

        blocked = read()
        assert blocked.status == 429
        sharded.advance_clocks(float(int(blocked.headers["Retry-After"])))
        recovered = read()
        assert recovered.status == 200


class TestTokenBucketUnit:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False]

    def test_refill_is_linear_and_capped(self):
        bucket = TokenBucket(rate=2.0, burst=4)
        for _ in range(4):
            bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.4)   # only 0.8 tokens back
        assert bucket.try_acquire(0.5)       # exactly 1.0
        assert bucket.remaining(1000.0) == 4  # capped at burst

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.try_acquire(10.0)
        assert bucket.remaining(5.0) == 1  # stale clock: no refund

    def test_retry_after_covers_the_deficit(self):
        bucket = TokenBucket(rate=0.5, burst=1)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    def test_header_rendering(self):
        bucket = TokenBucket(rate=1.0, burst=5)
        bucket.try_acquire(0.0, 2)
        headers = ratelimit_headers(bucket, 0.0, retry_after=0.2)
        assert headers["RateLimit-Limit"] == "5"
        assert headers["RateLimit-Remaining"] == "3"
        assert headers["RateLimit-Reset"] == "2"
        assert headers["Retry-After"] == "1"  # floor of one second
