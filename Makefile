.PHONY: check test lint bench chaos

# Lint (if ruff is installed) + tier-1 tests. The pre-merge gate.
check:
	sh scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Fault-injection / degraded-mode suite (deterministic chaos tests).
chaos:
	PYTHONPATH=src python -m pytest -x -q -m chaos

lint:
	python -m ruff check src tests benchmarks examples

# Full virtual-time evaluation suite (slow: paper-sized 1024-bit keys).
bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q
