.PHONY: check test lint wormlint bench chaos obs

# wormlint + ruff (if installed) + tier-1 tests. The pre-merge gate.
check:
	sh scripts/check.sh

# Compliance-invariant checks (trust domain, virtual time, no laundering).
wormlint:
	PYTHONPATH=src python -m repro.lint src tests

test:
	PYTHONPATH=src python -m pytest -x -q

# Fault-injection / degraded-mode suite (deterministic chaos tests).
chaos:
	PYTHONPATH=src python -m pytest -x -q -m chaos

lint:
	python -m ruff check src tests benchmarks examples

# Short sharded workload -> telemetry snapshot, reconciled against the
# legacy health/cost reports and validated against the committed schema
# (counter names are an API: renames must fail here, not drift silently).
obs:
	PYTHONPATH=src python -m repro.cli obs --shards 2 --records 48 \
	    --check scripts/obs_schema.json

# Full virtual-time evaluation suite (slow: paper-sized 1024-bit keys).
bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q
