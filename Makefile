.PHONY: check test lint bench

# Lint (if ruff is installed) + tier-1 tests. The pre-merge gate.
check:
	sh scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	python -m ruff check src tests benchmarks examples

# Full virtual-time evaluation suite (slow: paper-sized 1024-bit keys).
bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q
