.PHONY: check test lint wormlint lint-sarif bench chaos obs service recover auth-ablation perf

# wormlint + ruff (if installed) + tier-1 tests. The pre-merge gate.
check:
	sh scripts/check.sh

# Compliance-invariant checks (trust domain, virtual time, no laundering).
# Project mode adds the interprocedural rules (W007-W009) on top of the
# per-file set.
wormlint:
	PYTHONPATH=src python -m repro.lint --project src tests

# Full project lint as a SARIF 2.1.0 log for code-scanning upload.
lint-sarif:
	PYTHONPATH=src python -m repro.lint --project --format sarif \
	    --output wormlint.sarif src tests
	@echo "wrote wormlint.sarif"

test:
	PYTHONPATH=src python -m pytest -x -q

# Fault-injection / degraded-mode suite (deterministic chaos tests).
chaos:
	PYTHONPATH=src python -m pytest -x -q -m chaos

lint:
	python -m ruff check src tests benchmarks examples

# Short sharded workload -> telemetry snapshot, reconciled against the
# legacy health/cost reports and validated against the committed schema
# (counter names are an API: renames must fail here, not drift silently).
obs:
	PYTHONPATH=src python -m repro.cli obs --shards 2 --records 48 \
	    --check scripts/obs_schema.json

# Service contract gates (RC-1..RC-3 + lifecycle) and the multi-tenant
# overload bench: Zipf-skewed open-loop traffic with a burst above the
# admission limit; fails unless every admitted-or-deferred write lands
# durable and every rejection is a well-formed coded problem.
service:
	PYTHONPATH=src python -m pytest -x -q tests/service
	PYTHONPATH=src python -m repro.cli tenant-bench

# Site-loss recovery drill: replicate to a standby over a flaky WAN,
# kill the primary mid-stream, rebuild with staged verified recovery.
# Fails on any acknowledged-write loss, a laundered corrupt replica,
# or an RTO over the virtual-time bound.
recover:
	PYTHONPATH=src python -m repro.cli recover --records 400
	PYTHONPATH=src python -m repro.cli recover --records 200 --corrupt

# Three-way authentication-scheme ablation (windows / Merkle / RSA
# accumulator): regenerates benchmarks/BENCH_ablation_auth_<scheme>.json.
# The sweep is deterministic, so `--check` in scripts/check.sh gates on
# these committed artifacts matching the cost model.
auth-ablation:
	PYTHONPATH=src python -m repro.cli auth-ablation

# Hot-path perf baselines (shard scaling, figure-1 subset, read path):
# regenerates benchmarks/BENCH_shard/figure1/read.json.  Deterministic
# virtual-time numbers; scripts/check.sh band-checks the committed
# files (±10%: throughput may not drop, SCPU crossings may not grow).
# Run this to re-baseline after an intentional perf change.
perf:
	PYTHONPATH=src python -m repro.cli perf

# Full virtual-time evaluation suite (slow: paper-sized 1024-bit keys).
bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q
