#!/bin/sh
# wormlint + lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh          (or: make check)
#
# wormlint needs only the repo itself and always runs: it enforces the
# paper's compliance invariants (trust domain, virtual time, tamper
# escalation, no signature laundering) against the committed baseline.
# ruff ships in the `dev` extra (pip install -e '.[dev]'); environments
# without it skip the style lint with a notice rather than failing, so
# `make check` works in the minimal container too.

set -eu

cd "$(dirname "$0")/.."

echo "==> wormlint (compliance invariants, project mode)"
PYTHONPATH=src python -m repro.lint --project src tests

# Diff-aware gates run when a merge base with the main branch exists:
# the baseline may only shrink relative to it, and the incremental pass
# re-lints just the changed lines (a fast signal; the full run above
# stays authoritative).
BASE_REF="${WORMLINT_BASE_REF:-main}"
if MERGE_BASE=$(git merge-base HEAD "$BASE_REF" 2>/dev/null); then
    echo "==> wormlint baseline gate (vs $BASE_REF)"
    PYTHONPATH=src python -m repro.lint --baseline-gate "$MERGE_BASE" \
        src tests
    echo "==> wormlint diff gate (changed lines vs merge base)"
    PYTHONPATH=src python -m repro.lint --project --diff "$BASE_REF" \
        src tests
else
    echo "==> no merge base with $BASE_REF; skipping diff-aware gates"
fi

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1
then
    echo "==> ruff check"
    python -m ruff check src tests benchmarks examples
else
    echo "==> ruff not installed; skipping lint (pip install -e '.[dev]')"
fi

echo "==> tier-1 tests"
PYTHONPATH=src python -m pytest -x -q

echo "==> chaos suite"
PYTHONPATH=src python -m pytest -x -q -m chaos

echo "==> obs (telemetry reconciliation + snapshot schema)"
PYTHONPATH=src python -m repro.cli obs --shards 2 --records 48 \
    --check scripts/obs_schema.json >/dev/null

echo "==> auth-ablation artifacts (committed BENCH files vs cost model)"
PYTHONPATH=src python -m repro.cli auth-ablation --check >/dev/null

echo "==> perf gate (hot-path baselines, ±10% band: throughput may not"
echo "    drop, SCPU crossings may not grow; re-baseline with make perf)"
PYTHONPATH=src python -m repro.cli perf --check

echo "==> contract gate (service RC suites + multi-tenant overload bench)"
PYTHONPATH=src python -m pytest -x -q tests/service
PYTHONPATH=src python -m repro.cli tenant-bench >/dev/null

echo "==> recovery drill (site kill -> verified rebuild, + corrupt replica)"
PYTHONPATH=src python -m repro.cli recover --records 400 >/dev/null
PYTHONPATH=src python -m repro.cli recover --records 200 --corrupt >/dev/null
