"""WORM file system layer — the paper's §6 future work, implemented."""

from repro.fs.wormfs import FileVersion, VerifiedFile, WormFileSystem

__all__ = ["FileVersion", "VerifiedFile", "WormFileSystem"]
