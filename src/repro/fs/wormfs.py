"""WORM file system: the paper's future work, implemented (§6).

"In future research it is important to explore traditional file system
primitives layered on top of block-level WORM."  This module layers a
versioned, compliance-aware file namespace on the record-level WORM
store, following the paper's design vision that the record layer "can be
layered at arbitrary points in a storage stack ... inside a file system
(records being files, VRDs acting effectively as file descriptors)".

Semantics
---------
* **Files are write-once**: writing an existing path creates a new
  *version*; prior versions remain committed records until their
  retention expires.  There is no in-place mutation, ever.
* **Append without copy**: appending reuses the previous version's data
  records through VR record sharing (§4.2's overlapping VRs) and adds
  one new record — O(appended bytes), not O(file size).
* **Tamper-evident name binding**: the namespace index lives on the
  untrusted host, so an insider could remap names to other records.
  Every file version therefore embeds a signed *header record* carrying
  (path, version, length); ``datasig`` covers it, so a client reading
  ``/a/b`` detects any record served under the wrong name or version.
* **unlink is namespace-only**: WORM forbids early destruction; unlink
  hides the path from listings while the records live out their
  retention (and remain reachable — and auditable — by SN).
* **Per-directory policies**: subtrees inherit a regulation policy
  (e.g., everything under ``/patients`` is HIPAA).
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.client import WormClient
from repro.core.errors import VerificationError, WormError
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import Strength

__all__ = ["WormFileSystem", "FileVersion", "VerifiedFile"]

_HEADER_MAGIC = "WORMFS1"


class _PathError(WormError):
    """Raised for malformed or missing paths."""


def _normalize(path: str) -> str:
    """Canonicalize an absolute path; rejects escapes and relatives."""
    if not path.startswith("/"):
        raise _PathError(f"paths must be absolute: {path!r}")
    if ".." in path.split("/"):
        # In an audit-grade namespace, paths are identifiers: games with
        # parent references are refused outright rather than normalized.
        raise _PathError(f"parent references are not allowed: {path!r}")
    return posixpath.normpath(path)


@dataclass(frozen=True)
class FileVersion:
    """One committed version of a file: its SN and metadata."""

    path: str
    version: int
    sn: int
    size: int
    created_at: float
    policy: str


@dataclass(frozen=True)
class VerifiedFile:
    """A fully verified read: content plus its provenance."""

    path: str
    version: int
    sn: int
    content: bytes
    weakly_signed: bool


class WormFileSystem:
    """A versioned compliance file system over one Strong WORM store."""

    def __init__(self, store: StrongWormStore,
                 default_policy: str = "default") -> None:
        self._store = store
        self._default_policy = default_policy
        # path -> list of FileVersion (version i at index i-1)
        self._versions: Dict[str, List[FileVersion]] = {}
        self._unlinked: Dict[str, float] = {}
        # directory path -> policy name for its subtree
        self._dir_policies: Dict[str, str] = {}

    # -- policies --------------------------------------------------------

    def set_directory_policy(self, directory: str, policy: str) -> None:
        """Bind a regulation policy to a directory subtree."""
        directory = _normalize(directory)
        self._store.policies.get(policy)  # validate it exists
        self._dir_policies[directory] = policy

    def policy_for(self, path: str) -> str:
        """Resolve the policy governing *path*: nearest ancestor wins."""
        current = _normalize(path)
        while True:
            parent = posixpath.dirname(current)
            if parent in self._dir_policies:
                return self._dir_policies[parent]
            if parent == current:  # reached the root
                return self._dir_policies.get("/", self._default_policy)
            current = parent

    # -- header records -----------------------------------------------------

    @staticmethod
    def _header_bytes(path: str, version: int, size: int) -> bytes:
        return json.dumps({
            "magic": _HEADER_MAGIC,
            "path": path,
            "version": version,
            "size": size,
        }, sort_keys=True).encode("utf-8")

    @staticmethod
    def _parse_header(raw: bytes) -> dict:
        try:
            header = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise VerificationError("file header record is not parseable")
        if header.get("magic") != _HEADER_MAGIC:
            raise VerificationError("file header magic mismatch")
        return header

    # -- writes -----------------------------------------------------------------

    def write(self, path: str, content: bytes,
              retention_seconds: Optional[float] = None,
              strength: str = Strength.STRONG) -> FileVersion:
        """Create the file (or its next version) with *content*.

        The version's VR is ``[header, content]`` so the name binding is
        covered by datasig.
        """
        path = _normalize(path)
        policy = self.policy_for(path)
        version = len(self._versions.get(path, ())) + 1
        header = self._header_bytes(path, version, len(content))
        receipt = self._store.write(
            [header, content], policy=policy,
            retention_seconds=retention_seconds, strength=strength)
        entry = FileVersion(path=path, version=version, sn=receipt.sn,
                            size=len(content), created_at=self._store.now,
                            policy=policy)
        self._versions.setdefault(path, []).append(entry)
        self._unlinked.pop(path, None)
        return entry

    def append(self, path: str, content: bytes,
               retention_seconds: Optional[float] = None,
               strength: str = Strength.STRONG) -> FileVersion:
        """Append to a file by sharing its previous records (§4.2 VRs).

        The new version's VR references the previous version's *content*
        records in place and adds one record for the appended bytes, so
        the store holds the old bytes exactly once.  Appending to a
        missing or *unlinked* path starts a fresh file (matching
        :meth:`write`'s relink semantics) — unlinked history never bleeds
        into new content.
        """
        path = _normalize(path)
        history = self._versions.get(path)
        if not history or path in self._unlinked:
            return self.write(path, content,
                              retention_seconds=retention_seconds,
                              strength=strength)
        previous = history[-1]
        prev_vrd = self._store.vrdt.get_active(previous.sn)
        if prev_vrd is None:
            raise _PathError(f"previous version of {path} has expired")
        shared = prev_vrd.rdl[1:]  # skip the old header record
        version = previous.version + 1
        new_size = previous.size + len(content)
        header = self._header_bytes(path, version, new_size)
        policy = self.policy_for(path)
        # Ordered VR: fresh header, the previous content records shared
        # in place, then one new record with the appended bytes.  The
        # chained data hash covers the logical byte order.
        receipt = self._store.write(
            [header, *shared, content], policy=policy,
            retention_seconds=retention_seconds, strength=strength)
        entry = FileVersion(path=path, version=version, sn=receipt.sn,
                            size=new_size, created_at=self._store.now,
                            policy=policy)
        history.append(entry)
        self._unlinked.pop(path, None)
        return entry

    def rename(self, old_path: str, new_path: str,
               retention_seconds: Optional[float] = None,
               strength: str = Strength.STRONG) -> FileVersion:
        """Move a file: a new name binding sharing the same content records.

        WORM renames cannot relabel history: the old path's versions stay
        where they are (auditable forever); the new path gets version 1
        with a fresh signed header binding the *new* name to the shared
        content records — one small header write and one witness pair,
        not a copy.  The old path is then unlinked from the namespace.
        """
        old_path = _normalize(old_path)
        new_path = _normalize(new_path)
        if new_path in self._versions and new_path not in self._unlinked:
            raise _PathError(f"target exists: {new_path}")
        current = self._resolve(old_path, None)
        vrd = self._store.vrdt.get_active(current.sn)
        if vrd is None:
            raise _PathError(f"{old_path} has expired")
        content_rds = vrd.rdl[1:]
        version = len(self._versions.get(new_path, ())) + 1
        header = self._header_bytes(new_path, version, current.size)
        policy = self.policy_for(new_path)
        receipt = self._store.write(
            [header, *content_rds], policy=policy,
            retention_seconds=retention_seconds, strength=strength)
        entry = FileVersion(path=new_path, version=version, sn=receipt.sn,
                            size=current.size, created_at=self._store.now,
                            policy=policy)
        self._versions.setdefault(new_path, []).append(entry)
        self._unlinked.pop(new_path, None)
        self.unlink(old_path)
        return entry

    # -- reads ---------------------------------------------------------------------

    def read(self, path: str, version: Optional[int] = None) -> bytes:
        """Read a file version's content (unverified fast path)."""
        entry = self._resolve(path, version)
        result = self._store.read(entry.sn)
        if result.status != "active":
            raise _PathError(f"{path} v{entry.version} is {result.status}")
        return b"".join(result.records[1:])

    def verified_read(self, client: WormClient, path: str,
                      version: Optional[int] = None) -> VerifiedFile:
        """Read and verify: signatures, and the signed name binding."""
        path = _normalize(path)
        entry = self._resolve(path, version)
        result = self._store.read(entry.sn)
        verified = client.verify_read(result, entry.sn)
        if verified.status != "active":
            raise _PathError(f"{path} v{entry.version} is {verified.status}")
        header = self._parse_header(result.records[0])
        content = b"".join(result.records[1:])
        if header["path"] != path:
            raise VerificationError(
                f"record served for {path!r} is signed as {header['path']!r} "
                "(namespace remap detected)")
        if header["version"] != entry.version:
            raise VerificationError(
                f"{path}: version {entry.version} requested but record is "
                f"signed as version {header['version']} (rollback detected)")
        if header["size"] != len(content):
            raise VerificationError(f"{path}: content length mismatch")
        return VerifiedFile(path=path, version=entry.version, sn=entry.sn,
                            content=content,
                            weakly_signed=verified.weakly_signed)

    def _resolve(self, path: str, version: Optional[int]) -> FileVersion:
        path = _normalize(path)
        history = self._versions.get(path)
        if not history:
            raise _PathError(f"no such file: {path}")
        if path in self._unlinked and version is None:
            raise _PathError(f"file is unlinked: {path}")
        if version is None:
            return history[-1]
        if not 1 <= version <= len(history):
            raise _PathError(f"{path} has no version {version}")
        return history[version - 1]

    # -- namespace --------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = _normalize(path)
        return path in self._versions and path not in self._unlinked

    def versions(self, path: str) -> Tuple[FileVersion, ...]:
        """Full version history (available even after unlink — WORM)."""
        return tuple(self._versions.get(_normalize(path), ()))

    def stat(self, path: str) -> FileVersion:
        """Metadata of the current version."""
        return self._resolve(path, None)

    def listdir(self, directory: str) -> List[str]:
        """Immediate children (files and sub-directories) of *directory*."""
        directory = _normalize(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        if directory == "/":
            prefix = "/"
        children = set()
        for path in self._versions:
            if path in self._unlinked:
                continue
            if not path.startswith(prefix):
                continue
            rest = path[len(prefix):]
            children.add(rest.split("/", 1)[0])
        return sorted(children)

    def unlink(self, path: str) -> None:
        """Hide *path* from the namespace (records remain until expiry)."""
        path = _normalize(path)
        if path not in self._versions:
            raise _PathError(f"no such file: {path}")
        if path in self._unlinked:
            raise _PathError(f"already unlinked: {path}")
        self._unlinked[path] = self._store.now

    def walk(self) -> List[str]:
        """Every linked path, sorted."""
        return sorted(p for p in self._versions if p not in self._unlinked)

    # -- persistence (the namespace index is ordinary untrusted state) -------

    def to_dict(self) -> dict:
        """Serialize the namespace index (for the CLI's state file)."""
        return {
            "default_policy": self._default_policy,
            "versions": {
                path: [
                    {"version": v.version, "sn": v.sn, "size": v.size,
                     "created_at": v.created_at, "policy": v.policy}
                    for v in history
                ]
                for path, history in self._versions.items()
            },
            "unlinked": dict(self._unlinked),
            "dir_policies": dict(self._dir_policies),
        }

    @classmethod
    def from_dict(cls, store: StrongWormStore, data: dict) -> "WormFileSystem":
        """Rebuild a namespace index over *store* from :meth:`to_dict`."""
        fs = cls(store, default_policy=data.get("default_policy", "default"))
        for path, history in data.get("versions", {}).items():
            fs._versions[path] = [
                FileVersion(path=path, version=int(v["version"]),
                            sn=int(v["sn"]), size=int(v["size"]),
                            created_at=float(v["created_at"]),
                            policy=v["policy"])
                for v in history
            ]
        fs._unlinked = {p: float(t) for p, t in data.get("unlinked", {}).items()}
        fs._dir_policies = dict(data.get("dir_policies", {}))
        return fs
