"""Strong WORM — a reproduction of Radu Sion, "Strong WORM" (ICDCS 2008).

A Write-Once Read-Many compliance-storage system with strong,
insider-resistant assurances, built around a (simulated) secure
coprocessor (SCPU) in close data proximity:

* guaranteed retention — committed records cannot be altered or removed
  undetected (Theorem 1);
* no hiding — insiders cannot claim active records expired or never
  existed (Theorem 2);
* secure deletion — expired records are shredded and leave only signed
  deletion proofs;
* compliant migration — stores move to new media with assurances intact;
* O(1)-per-update window authentication instead of Merkle trees;
* deferred-strength witnessing for burst absorption (§4.3);
* pluggable catalog authentication (``StoreConfig(auth_scheme=...)``):
  sealed windows, Merkle tree, or trapdoor-assisted RSA accumulator.

Quickstart
----------
>>> from repro import StrongWormStore, CertificateAuthority, demo_keyring
>>> from repro.hardware import SecureCoprocessor
>>> ca = CertificateAuthority(bits=512)
>>> store = StrongWormStore(scpu=SecureCoprocessor(keyring=demo_keyring()))
>>> receipt = store.write([b"board minutes, Q3"], policy="sox")
>>> client = store.make_client(ca)
>>> verified = client.verify_read(store.read(receipt.sn), receipt.sn)
>>> verified.status
'active'
"""

from repro.core import (
    AuditReport,
    AuthenticationScheme,
    PolicyRegistry,
    ReadResult,
    RecordLocator,
    RegulationPolicy,
    ShardedWormStore,
    ShardedWriteReceipt,
    StoreAuditor,
    StoreConfig,
    StrongWormStore,
    VerifiedRead,
    WormClient,
    WriteReceipt,
    available_schemes,
    export_package,
    import_package,
)
from repro.fs import WormFileSystem
from repro.core.errors import (
    CrashError,
    CredentialError,
    DegradedError,
    FreshnessError,
    JournalError,
    LitigationHoldError,
    MigrationError,
    MissingRecordError,
    UnknownAlgorithmError,
    UnknownPolicyError,
    RetentionViolationError,
    ScpuUnavailableError,
    SecureMemoryError,
    ShardRoutingError,
    SignatureError,
    StorageUnavailableError,
    TamperedError,
    TransientFaultError,
    RecoveryError,
    ReplicationError,
    UnknownSerialNumberError,
    VerificationError,
    WormError,
)
from repro.core.retry import RetryPolicy
from repro.recovery import (
    RecoveryReport,
    RecoveryStage,
    ReplicaSite,
    ReplicatedIntentJournal,
    ReplicationPump,
    ReplicationTransport,
    SiteRecovery,
)
from repro.storage.journal import FileIntentJournal, MemoryIntentJournal
from repro.crypto import CertificateAuthority, SigningKey
from repro.hardware import ScpuKeyring, SecureCoprocessor, Strength
from repro.service import (
    OPERATIONS,
    PROTOCOL_VERSION,
    Problem,
    ServiceRequest,
    ServiceResponse,
    TenantConfig,
    WormService,
)

__version__ = "1.0.0"

__all__ = [
    "AuditReport",
    "AuthenticationScheme",
    "available_schemes",
    "StoreAuditor",
    "WormFileSystem",
    "PolicyRegistry",
    "ReadResult",
    "RecordLocator",
    "RegulationPolicy",
    "ShardedWormStore",
    "ShardedWriteReceipt",
    "StoreConfig",
    "StrongWormStore",
    "VerifiedRead",
    "WormClient",
    "WriteReceipt",
    "export_package",
    "import_package",
    "CrashError",
    "CredentialError",
    "DegradedError",
    "FreshnessError",
    "JournalError",
    "LitigationHoldError",
    "MigrationError",
    "MissingRecordError",
    "UnknownAlgorithmError",
    "UnknownPolicyError",
    "RetentionViolationError",
    "ScpuUnavailableError",
    "SecureMemoryError",
    "ShardRoutingError",
    "SignatureError",
    "StorageUnavailableError",
    "TamperedError",
    "TransientFaultError",
    "RecoveryError",
    "ReplicationError",
    "UnknownSerialNumberError",
    "VerificationError",
    "WormError",
    "ReplicationPump",
    "ReplicationTransport",
    "ReplicaSite",
    "ReplicatedIntentJournal",
    "SiteRecovery",
    "RecoveryStage",
    "RecoveryReport",
    "WormService",
    "TenantConfig",
    "ServiceRequest",
    "ServiceResponse",
    "Problem",
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "RetryPolicy",
    "FileIntentJournal",
    "MemoryIntentJournal",
    "CertificateAuthority",
    "SigningKey",
    "ScpuKeyring",
    "SecureCoprocessor",
    "Strength",
    "demo_keyring",
    "__version__",
]


def demo_keyring(strong_bits: int = 512, weak_bits: int = 512) -> ScpuKeyring:
    """A fast-to-generate SCPU keyring for examples and tests.

    Production deployments use the default 1024-bit strong keys; the
    512-bit strong keys here keep example start-up instant while
    exercising identical code paths.
    """
    from repro.crypto.hmac_scheme import HmacScheme

    return ScpuKeyring(
        s_key=SigningKey.generate(strong_bits, role="s"),
        d_key=SigningKey.generate(strong_bits, role="d"),
        burst_key=SigningKey.generate(weak_bits, role="burst"),
        hmac=HmacScheme(),
    )
