"""Workload generation for the WORM evaluation.

The paper's evaluation (§5) drives the store with record-write streams of
varying record sizes, at burst rates (absorbed via deferred signatures for
at most the short-lived constructs' security lifetime) and sustained rates
(full-strength signing).  Realistic compliance workloads are read-mostly
with write bursts (e.g., end-of-day trade archiving under SEC 17a-4).

This module provides composable generators of :class:`WorkRequest` streams:

* :class:`PoissonArrivals` — memoryless arrivals at a target rate;
* :class:`BurstArrivals` — alternating burst/idle phases (on-off process);
* :class:`ClosedLoopArrivals` — back-to-back offered load (what Figure 1's
  peak-throughput measurement needs: the store is never idle);
* record-size distributions (fixed, uniform, lognormal-ish mixture built
  on ``random.Random`` so runs are seed-reproducible);
* :class:`MixedWorkload` — read/write mixes over previously written SNs.

All generators are deterministic given their seed, so benchmark tables
reproduce exactly across runs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "WorkRequest",
    "FixedSize",
    "UniformSize",
    "LognormalSize",
    "EmailMixSize",
    "PoissonArrivals",
    "BurstArrivals",
    "ClosedLoopArrivals",
    "DiurnalArrivals",
    "MixedWorkload",
    "RetentionSampler",
    "ZipfChoice",
    "TenantRequest",
    "MultiTenantArrivals",
]


@dataclass(frozen=True)
class WorkRequest:
    """One operation offered to the store.

    ``kind`` is ``"write"`` or ``"read"``; ``arrival`` is the virtual time
    at which the request is offered (ignored by closed-loop drivers);
    ``size`` is the record payload size in bytes (writes only);
    ``retention`` the mandated retention period in seconds (writes only);
    ``target_sn`` the serial number to read (reads only).
    """

    kind: str
    arrival: float
    size: int = 0
    retention: float = 0.0
    target_sn: Optional[int] = None


# ---------------------------------------------------------------------------
# Record-size distributions
# ---------------------------------------------------------------------------

class FixedSize:
    """Every record has the same size — used for Figure 1's size sweep."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("record size must be non-negative")
        self.size = size

    def sample(self, rng: random.Random) -> int:
        return self.size


class UniformSize:
    """Record sizes uniform in ``[low, high]``."""

    def __init__(self, low: int, high: int) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)


class LognormalSize:
    """Heavy-tailed sizes: most records small, occasional large ones.

    Matches observed document/email size distributions; parameters are the
    underlying normal's mu/sigma in log-bytes.  Samples are clamped to
    ``[1, cap]`` so one extreme draw cannot dominate a benchmark run.
    """

    def __init__(self, mu: float = 8.5, sigma: float = 1.5,
                 cap: int = 16 * 1024 * 1024) -> None:
        self.mu = mu
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random) -> int:
        value = int(math.exp(rng.gauss(self.mu, self.sigma)))
        return max(1, min(value, self.cap))


class EmailMixSize:
    """The email-archive mixture motivating VR record sharing (§4.2).

    80% small bodies (~2-16 KB), 18% medium attachments (~64-512 KB),
    2% large attachments (~1-8 MB) — a plausible compliance-archive blend.
    """

    _BANDS: Sequence[Tuple[float, int, int]] = (
        (0.80, 2 * 1024, 16 * 1024),
        (0.98, 64 * 1024, 512 * 1024),
        (1.00, 1024 * 1024, 8 * 1024 * 1024),
    )

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        for ceiling, low, high in self._BANDS:
            if roll <= ceiling:
                return rng.randint(low, high)
        return rng.randint(*self._BANDS[-1][1:])  # pragma: no cover


# ---------------------------------------------------------------------------
# Retention-period sampling
# ---------------------------------------------------------------------------

class RetentionSampler:
    """Samples retention periods from a set of regulation profiles.

    ``profiles`` maps a retention period (seconds) to a probability
    weight.  Mixing several regulations on one store is exactly what
    makes records expire out of insertion order, which is what the
    multi-window compaction of §4.2.1 exists to handle.
    """

    def __init__(self, profiles: Optional[Sequence[Tuple[float, float]]] = None) -> None:
        if profiles is None:
            year = 365.0 * 24 * 3600
            profiles = ((3 * year, 0.3), (6 * year, 0.5), (20 * year, 0.2))
        total = sum(weight for _, weight in profiles)
        if total <= 0:
            raise ValueError("retention profile weights must sum to > 0")
        self._profiles = [(period, weight / total) for period, weight in profiles]

    def sample(self, rng: random.Random) -> float:
        roll = rng.random()
        acc = 0.0
        for period, weight in self._profiles:
            acc += weight
            if roll <= acc:
                return period
        return self._profiles[-1][0]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

class PoissonArrivals:
    """Memoryless write arrivals at *rate* requests/second."""

    def __init__(self, rate: float, size_dist, count: int,
                 retention: Optional[RetentionSampler] = None, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = rate
        self.size_dist = size_dist
        self.count = count
        self.retention = retention or RetentionSampler()
        self.seed = seed

    def __iter__(self) -> Iterator[WorkRequest]:
        rng = random.Random(self.seed)
        t = 0.0
        for _ in range(self.count):
            t += rng.expovariate(self.rate)
            yield WorkRequest(
                kind="write",
                arrival=t,
                size=self.size_dist.sample(rng),
                retention=self.retention.sample(rng),
            )


class BurstArrivals:
    """On-off arrivals: bursts at *burst_rate* separated by idle gaps.

    This is the workload that motivates §4.3: during a burst the offered
    rate exceeds what full-strength SCPU signing sustains, and the idle
    gaps are when deferred constructs get strengthened.
    """

    def __init__(self, burst_rate: float, burst_seconds: float,
                 idle_seconds: float, size_dist, total_count: int,
                 retention: Optional[RetentionSampler] = None, seed: int = 0) -> None:
        if burst_rate <= 0 or burst_seconds <= 0 or idle_seconds < 0:
            raise ValueError("burst parameters must be positive")
        self.burst_rate = burst_rate
        self.burst_seconds = burst_seconds
        self.idle_seconds = idle_seconds
        self.size_dist = size_dist
        self.total_count = total_count
        self.retention = retention or RetentionSampler()
        self.seed = seed

    def __iter__(self) -> Iterator[WorkRequest]:
        rng = random.Random(self.seed)
        t = 0.0
        burst_end = self.burst_seconds
        emitted = 0
        while emitted < self.total_count:
            t += rng.expovariate(self.burst_rate)
            if t > burst_end:
                t = burst_end + self.idle_seconds
                burst_end = t + self.burst_seconds
                continue
            yield WorkRequest(
                kind="write",
                arrival=t,
                size=self.size_dist.sample(rng),
                retention=self.retention.sample(rng),
            )
            emitted += 1


class ClosedLoopArrivals:
    """Back-to-back offered load: every request arrives at t=0.

    With a FIFO device model this measures peak service throughput — the
    quantity Figure 1 plots (records/second the WORM layer can absorb).
    """

    def __init__(self, size_dist, count: int,
                 retention: Optional[RetentionSampler] = None, seed: int = 0) -> None:
        self.size_dist = size_dist
        self.count = count
        self.retention = retention or RetentionSampler()
        self.seed = seed

    def __iter__(self) -> Iterator[WorkRequest]:
        rng = random.Random(self.seed)
        for _ in range(self.count):
            yield WorkRequest(
                kind="write",
                arrival=0.0,
                size=self.size_dist.sample(rng),
                retention=self.retention.sample(rng),
            )


class DiurnalArrivals:
    """A business-day arrival pattern: quiet nights, busy days, EOD burst.

    Models the compliance-archive reality behind §4.3: most of the day
    the store idles well below strong-signing capacity, then the
    end-of-day archival job slams it.  Rates (requests/second):

    * 00:00-08:00  ``night_rate``
    * 08:00-16:00  ``day_rate``
    * 16:00-16:00+burst  ``burst_rate`` (the EOD archive job)
    * rest of the evening  ``night_rate``
    """

    def __init__(self, size_dist, days: int = 1,
                 night_rate: float = 0.5, day_rate: float = 5.0,
                 burst_rate: float = 800.0, burst_seconds: float = 60.0,
                 retention: Optional[RetentionSampler] = None,
                 seed: int = 0) -> None:
        if min(night_rate, day_rate, burst_rate) <= 0:
            raise ValueError("rates must be positive")
        if days < 1:
            raise ValueError("need at least one day")
        self.size_dist = size_dist
        self.days = days
        self.night_rate = night_rate
        self.day_rate = day_rate
        self.burst_rate = burst_rate
        self.burst_seconds = burst_seconds
        self.retention = retention or RetentionSampler()
        self.seed = seed

    def _phases(self, day_start: float):
        hour = 3600.0
        yield (day_start, day_start + 8 * hour, self.night_rate)
        yield (day_start + 8 * hour, day_start + 16 * hour, self.day_rate)
        yield (day_start + 16 * hour,
               day_start + 16 * hour + self.burst_seconds, self.burst_rate)
        yield (day_start + 16 * hour + self.burst_seconds,
               day_start + 24 * hour, self.night_rate)

    def __iter__(self) -> Iterator[WorkRequest]:
        rng = random.Random(self.seed)
        for day in range(self.days):
            for start, end, rate in self._phases(day * 24 * 3600.0):
                t = start
                while True:
                    t += rng.expovariate(rate)
                    if t >= end:
                        break
                    yield WorkRequest(
                        kind="write",
                        arrival=t,
                        size=self.size_dist.sample(rng),
                        retention=self.retention.sample(rng),
                    )


class MixedWorkload:
    """A read/write mix: reads target uniformly random previously written SNs.

    ``read_fraction`` of requests are reads (the paper expects query loads
    to be "often mostly read-only", which is why reads bypass the SCPU).
    Reads arriving before any write has completed are re-rolled as writes.
    """

    def __init__(self, rate: float, read_fraction: float, size_dist,
                 count: int, retention: Optional[RetentionSampler] = None,
                 seed: int = 0) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.rate = rate
        self.read_fraction = read_fraction
        self.size_dist = size_dist
        self.count = count
        self.retention = retention or RetentionSampler()
        self.seed = seed

    def __iter__(self) -> Iterator[WorkRequest]:
        rng = random.Random(self.seed)
        t = 0.0
        writes_so_far = 0
        for _ in range(self.count):
            t += rng.expovariate(self.rate)
            if writes_so_far > 0 and rng.random() < self.read_fraction:
                # Reads address SNs by index-of-write; the driver maps the
                # index to the actual SN the store assigned.
                yield WorkRequest(
                    kind="read",
                    arrival=t,
                    target_sn=rng.randrange(writes_so_far),
                )
            else:
                writes_so_far += 1
                yield WorkRequest(
                    kind="write",
                    arrival=t,
                    size=self.size_dist.sample(rng),
                    retention=self.retention.sample(rng),
                )


# ---------------------------------------------------------------------------
# Multi-tenant arrivals (the service layer's open-loop workload)
# ---------------------------------------------------------------------------

class ZipfChoice:
    """Zipf-skewed choice over *n* items: rank ``k`` has weight ``1/k^s``.

    The classic tenant-popularity shape: with the default ``skew=1.1``
    and three tenants the head tenant draws roughly half the traffic.
    Sampling is O(log n) via a precomputed CDF; deterministic given the
    caller's ``random.Random``.
    """

    def __init__(self, n: int, skew: float = 1.1) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        if skew < 0:
            raise ValueError("skew cannot be negative")
        self.n = n
        self.skew = skew
        weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """A 0-based item index, rank 0 most popular."""
        u = rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class TenantRequest:
    """One tenant-attributed operation offered to the service layer.

    ``user`` is the originating end-user's id within the tenant's
    (possibly millions-strong) simulated population — the service does
    not key on it, but telemetry and traces can.
    """

    tenant: str
    user: int
    request: WorkRequest


class MultiTenantArrivals:
    """Open-loop multi-tenant arrivals: Poisson × Zipf × diurnal.

    The aggregate arrival process is Poisson with a piecewise-constant
    diurnal rate (quiet nights, busy days, an end-of-day burst that is
    *meant* to exceed the service's admission rate — that is what the
    deferred-write machinery absorbs).  Each arrival is attributed to a
    tenant by Zipf-skewed popularity and to one of that tenant's
    ``users_per_tenant`` simulated end users uniformly.

    ``hour_seconds`` compresses the day for bounded benchmark runs: the
    diurnal *shape* is preserved while a full day costs
    ``24 * hour_seconds`` virtual seconds of events.  Rates are always
    in requests per (virtual) second, whatever the compression.
    """

    def __init__(self, tenants: Sequence[str], size_dist,
                 days: int = 1,
                 night_rate: float = 0.5, day_rate: float = 5.0,
                 burst_rate: float = 800.0, burst_seconds: float = 60.0,
                 skew: float = 1.1,
                 users_per_tenant: int = 1_000_000,
                 hour_seconds: float = 3600.0,
                 retention: Optional[RetentionSampler] = None,
                 seed: int = 0) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if min(night_rate, day_rate, burst_rate) <= 0:
            raise ValueError("rates must be positive")
        if days < 1:
            raise ValueError("need at least one day")
        if users_per_tenant < 1:
            raise ValueError("each tenant needs at least one user")
        if hour_seconds <= 0:
            raise ValueError("hour_seconds must be positive")
        self.tenants = tuple(tenants)
        self.size_dist = size_dist
        self.days = days
        self.night_rate = night_rate
        self.day_rate = day_rate
        self.burst_rate = burst_rate
        self.burst_seconds = burst_seconds
        self.users_per_tenant = users_per_tenant
        self.hour_seconds = hour_seconds
        self.retention = retention or RetentionSampler()
        self.seed = seed
        self._zipf = ZipfChoice(len(self.tenants), skew)

    def _phases(self, day_start: float):
        hour = self.hour_seconds
        burst = min(self.burst_seconds, 8 * hour)
        yield (day_start, day_start + 8 * hour, self.night_rate)
        yield (day_start + 8 * hour, day_start + 16 * hour, self.day_rate)
        yield (day_start + 16 * hour,
               day_start + 16 * hour + burst, self.burst_rate)
        yield (day_start + 16 * hour + burst,
               day_start + 24 * hour, self.night_rate)

    def __iter__(self) -> Iterator[TenantRequest]:
        rng = random.Random(self.seed)
        for day in range(self.days):
            for start, end, rate in self._phases(day * 24 * self.hour_seconds):
                t = start
                while True:
                    t += rng.expovariate(rate)
                    if t >= end:
                        break
                    tenant = self.tenants[self._zipf.sample(rng)]
                    yield TenantRequest(
                        tenant=tenant,
                        user=rng.randrange(self.users_per_tenant),
                        request=WorkRequest(
                            kind="write",
                            arrival=t,
                            size=self.size_dist.sample(rng),
                            retention=self.retention.sample(rng),
                        ),
                    )
