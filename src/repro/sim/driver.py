"""Simulation driver: turns metered costs into virtual-time throughput.

The evaluation's throughput numbers (Figure 1, the multi-SCPU scaling
claim, the burst-absorption experiments) are queueing results: writers
contend for the SCPU — a slow, serial device — while the host CPU and
disks run an order of magnitude faster.  This driver executes WORM
operations *functionally* (instantaneously, producing correct state and
signatures) and replays their metered per-device costs through FIFO
:class:`~repro.hardware.device.TimedDevice` resources in a
:class:`~repro.sim.engine.Simulator`, so contention and pipelining fall
out of the model rather than being assumed.

A request flows host → disk → SCPU (when its SCPU cost is non-zero),
matching the write path: the main CPU stages and lands the data, then the
SCPU witnesses it.  Reads never enter the SCPU queue — the paper's
central design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import StoreConfig
from repro.core.errors import TamperedError, WormError
from repro.core.sharded import ShardedWormStore, ShardedWriteReceipt
from repro.core.worm import StrongWormStore
from repro.faults import FaultPlan, FaultyScpu
from repro.hardware.device import TimedDevice
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor
from repro.sim.engine import Simulator, all_of
from repro.sim.metrics import MetricsCollector, RequestSample
from repro.sim.workload import WorkRequest
from repro.storage.journal import IntentJournal

__all__ = ["SimulatedStore", "SimulationConfig", "ShardedSimStore",
           "ChaosResult", "make_sim_store", "make_sharded_sim_store",
           "run_closed_loop", "run_open_loop", "run_sharded_closed_loop",
           "run_sharded_chaos_loop"]


@dataclass
class SimulationConfig:
    """Device pool sizes and driver concurrency for one simulation run."""

    scpu_count: int = 1
    host_count: int = 2
    disk_count: int = 8
    workers: int = 32                       # closed-loop concurrency
    strengthen_when_idle: bool = False      # drain the §4.3 queue in gaps
    maintenance_interval: float = 60.0      # idle-loop poll period


@dataclass
class SimulatedStore:
    """A store wired into a simulator with timed device pools."""

    sim: Simulator
    store: StrongWormStore
    scpu_dev: TimedDevice
    host_dev: TimedDevice
    disk_dev: TimedDevice
    trace: Optional[object] = None  # TraceRecorder, when tracing is on

    def replay(self, costs: Dict[str, float], label: str = "op"):
        """Process-generator: replay a cost breakdown through the pools."""
        for device in (self.host_dev, self.disk_dev, self.scpu_dev):
            cost = costs.get(device.name, 0.0)
            if cost == 0.0:
                continue
            start = self.sim.now
            yield from device.use(cost)
            if self.trace is not None:
                self.trace.record(label, device.name, start, self.sim.now,
                                  service=cost)

    def utilization(self, elapsed: float) -> Dict[str, float]:
        return {
            "scpu": self.scpu_dev.utilization(elapsed),
            "host": self.host_dev.utilization(elapsed),
            "disk": self.disk_dev.utilization(elapsed),
        }


def make_sim_store(config: Optional[SimulationConfig] = None,
                   keyring: Optional[ScpuKeyring] = None,
                   trace: Optional[object] = None,
                   **store_kwargs) -> SimulatedStore:
    """Build a simulator + store sharing one virtual clock.

    The SCPU's internal clock *is* the simulation clock, so signature
    timestamps, retention expirations and freshness windows all live in
    the same virtual timeline the queueing model advances.
    """
    config = config if config is not None else SimulationConfig()
    sim = Simulator()
    if keyring is None:
        from repro import demo_keyring
        keyring = demo_keyring()
    scpu = SecureCoprocessor(keyring=keyring, clock=sim.clock)
    store = StrongWormStore(scpu=scpu, **store_kwargs)
    return SimulatedStore(
        sim=sim,
        store=store,
        scpu_dev=TimedDevice(sim, "scpu", capacity=config.scpu_count),
        host_dev=TimedDevice(sim, "host", capacity=config.host_count),
        disk_dev=TimedDevice(sim, "disk", capacity=config.disk_count),
        trace=trace,
    )


@dataclass
class ShardedSimStore:
    """A sharded front-end wired into one simulator.

    Every shard owns a full device triple (its SCPU card plus its own
    host/disk lanes — shards are independent stores, §2.2's deployment
    replicated N times), all advancing on one virtual clock.  Costs from
    a shard's operations replay on *that shard's* devices, so cross-shard
    parallelism falls out of the queueing model instead of being assumed.
    """

    sim: Simulator
    store: ShardedWormStore
    devices: List[Dict[str, TimedDevice]]  # per shard: scpu/host/disk
    fault_plans: List[Optional[FaultPlan]] = field(default_factory=list)

    def replay(self, shard_id: int, costs: Dict[str, float],
               label: str = "op"):
        """Process-generator: replay one cost breakdown on one shard."""
        triple = self.devices[shard_id]
        for name in ("host", "disk", "scpu"):
            cost = costs.get(name, 0.0)
            if cost:
                yield from triple[name].use(cost)

    def utilization(self, elapsed: float) -> List[Dict[str, float]]:
        return [{name: dev.utilization(elapsed)
                 for name, dev in triple.items()}
                for triple in self.devices]


def make_sharded_sim_store(shard_count: int,
                           config: Optional[SimulationConfig] = None,
                           keyring: Optional[ScpuKeyring] = None,
                           store_config: Optional[StoreConfig] = None,
                           fault_plans: Optional[
                               Sequence[Optional[FaultPlan]]] = None,
                           journal: Optional[IntentJournal] = None
                           ) -> ShardedSimStore:
    """Build a simulator + sharded store sharing one virtual clock.

    ``config.scpu_count`` is the per-shard card count (usually 1 — the
    point of sharding is one card per shard); host/disk pool sizes are
    per shard as well.

    *fault_plans*, when given, holds one optional
    :class:`~repro.faults.FaultPlan` per shard: that shard's SCPU is
    wrapped in a :class:`~repro.faults.FaultyScpu` driven by the plan,
    so chaos runs inject deterministic faults into specific failure
    domains.  A *journal* makes the group-commit pending queue
    crash-durable, exactly as on the real store.
    """
    config = config if config is not None else SimulationConfig()
    store_config = (store_config if store_config is not None
                    else StoreConfig())
    sim = Simulator()
    if keyring is None:
        from repro import demo_keyring
        keyring = demo_keyring()
    plans: List[Optional[FaultPlan]] = (
        list(fault_plans) if fault_plans is not None else [])
    if plans and len(plans) != shard_count:
        raise ValueError(
            f"fault_plans has {len(plans)} entries for {shard_count} shards")
    if plans:
        # Wrap each shard's card before its store ever sees it, so every
        # trust-boundary call of that shard runs under its plan.
        template = store_config.per_shard()
        stores = []
        for plan in plans:
            scpu: object = SecureCoprocessor(keyring=keyring,
                                             clock=sim.clock)
            if plan is not None:
                scpu = FaultyScpu(scpu, plan)
            stores.append(StrongWormStore(
                config=template.replace(scpu=scpu)))
        store = ShardedWormStore(
            stores, config=store_config.replace(shard_count=shard_count),
            journal=journal)
    else:
        store = ShardedWormStore.build(
            shard_count=shard_count, config=store_config,
            keyring=keyring, clock=sim.clock, journal=journal)
    devices = [{
        "scpu": TimedDevice(sim, f"scpu{i}", capacity=config.scpu_count),
        "host": TimedDevice(sim, f"host{i}", capacity=config.host_count),
        "disk": TimedDevice(sim, f"disk{i}", capacity=config.disk_count),
    } for i in range(shard_count)]
    return ShardedSimStore(sim=sim, store=store, devices=devices,
                           fault_plans=plans)


def run_sharded_closed_loop(shardstore: ShardedSimStore,
                            requests: Iterable[WorkRequest],
                            config: Optional[SimulationConfig] = None,
                            write_kwargs: Optional[Dict] = None,
                            batch_size: int = 1) -> MetricsCollector:
    """Peak throughput of a sharded store, with optional group commit.

    Each worker claims *batch_size* pending write requests, commits them
    through :meth:`ShardedWormStore.write_batch` (one multi-record write
    per shard touched), and replays every touched shard's costs on that
    shard's devices *concurrently* — the flush really is parallel
    hardware work.  ``batch_size=1`` degenerates to per-record writes
    routed round-robin, the baseline the group-commit benchmark beats.
    """
    config = config if config is not None else SimulationConfig()
    write_kwargs = write_kwargs if write_kwargs is not None else {}
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    metrics = MetricsCollector()
    sim = shardstore.sim
    queue = list(requests)
    queue.reverse()  # pop() from the end in original order

    def worker():
        while queue:
            batch = [queue.pop()
                     for _ in range(min(batch_size, len(queue)))]
            arrival = sim.now
            receipts = shardstore.store.write_batch(
                [b"\xa5" * request.size for request in batch],
                retention_seconds=max(
                    max(r.retention for r in batch), 1.0),
                **write_kwargs)
            # One flush per shard touched: replay them in parallel.
            flush_costs: Dict[int, Dict[str, float]] = {}
            for receipt in receipts:
                shard_costs = flush_costs.setdefault(receipt.shard_id, {})
                for device, cost in receipt.costs.items():
                    shard_costs[device] = shard_costs.get(device, 0.0) + cost
            replays = [sim.process(shardstore.replay(shard_id, costs,
                                                     label="write"))
                       for shard_id, costs in flush_costs.items()]
            if replays:
                yield all_of(sim, replays)
            for request, receipt in zip(batch, receipts):
                metrics.record(RequestSample(
                    kind="write", arrival=arrival, start=arrival,
                    finish=sim.now, size=request.size))

    for _ in range(config.workers):
        sim.process(worker())
    sim.run()
    return metrics


@dataclass
class ChaosResult:
    """What a chaos run produced: receipts, metrics, and final health.

    ``receipts`` is the complete set of commit receipts — the loss
    invariant a chaos test asserts is that every one of them reads back
    and verifies.  ``health`` is the store's final
    :meth:`~repro.core.sharded.ShardedWormStore.health_report`.
    """

    metrics: MetricsCollector
    receipts: List[ShardedWriteReceipt]
    health: Dict[str, object]

    @property
    def accepted(self) -> int:
        """Records the store acknowledged (committed, receipt issued)."""
        return len(self.receipts)


def run_sharded_chaos_loop(shardstore: ShardedSimStore,
                           requests: Iterable[WorkRequest],
                           config: Optional[SimulationConfig] = None,
                           write_kwargs: Optional[Dict] = None,
                           drain_attempts: int = 20) -> ChaosResult:
    """Closed-loop ingest through ``submit``/``flush`` under fault plans.

    Workers push every request through the best-effort
    :meth:`~repro.core.sharded.ShardedWormStore.submit` path; group
    commits replay their costs on the committing shards' devices.  After
    the simulation drains, leftover pending records are flushed (up to
    *drain_attempts* rounds — transient faults may bounce a flush) and
    the store's retry/failover/fault counters are folded into the
    metrics, so a chaos test asserts loss and health from one object.

    Ingest stops early only when the store raises
    :class:`~repro.core.errors.TamperedError` — every card gone — which
    the result records under the ``chaos.store_dead`` counter.
    """
    config = config if config is not None else SimulationConfig()
    write_kwargs = write_kwargs if write_kwargs is not None else {}
    metrics = MetricsCollector()
    receipts: List[ShardedWriteReceipt] = []
    sim = shardstore.sim
    store = shardstore.store
    queue = list(requests)
    queue.reverse()  # pop() from the end in original order

    def replay_flush(flushed: List[ShardedWriteReceipt], arrival: float):
        flush_costs: Dict[int, Dict[str, float]] = {}
        for receipt in flushed:
            shard_costs = flush_costs.setdefault(receipt.shard_id, {})
            for device, cost in receipt.costs.items():
                shard_costs[device] = shard_costs.get(device, 0.0) + cost
        replays = [sim.process(shardstore.replay(shard_id, costs,
                                                 label="write"))
                   for shard_id, costs in flush_costs.items()]
        if replays:
            yield all_of(sim, replays)
        for receipt in flushed:
            metrics.record(RequestSample(
                kind="write", arrival=arrival, start=arrival,
                finish=sim.now))

    def worker():
        while queue:
            request = queue.pop()
            arrival = sim.now
            payload = b"\xa5" * request.size
            try:
                flushed = store.submit(
                    payload,
                    retention_seconds=max(request.retention, 1.0),
                    **write_kwargs)
            except TamperedError:  # wormlint: disable=W004,W008 - chaos harness: store death is the measured outcome
                metrics.increment("chaos.store_dead")
                queue.clear()
                return
            if flushed:
                receipts.extend(flushed)
                yield from replay_flush(flushed, arrival)

    for _ in range(config.workers):
        sim.process(worker())
    sim.run()

    # Drain what the group-commit threshold never triggered.  A flush
    # restores uncommittable groups and re-raises, so loop a bounded
    # number of rounds — transient faults clear, tamper does not.
    for _ in range(max(1, drain_attempts)):
        if store.pending_count == 0:
            break
        try:
            receipts.extend(store.flush())
        except TamperedError as exc:  # wormlint: disable=W004,W008 - chaos harness: store death is the measured outcome
            receipts.extend(getattr(exc, "partial_receipts", []))
            metrics.increment("chaos.store_dead")
            break
        except WormError as exc:  # wormlint: disable=W004,W008 - drain loop retries transients; tamper breaks out above
            receipts.extend(getattr(exc, "partial_receipts", []))
            metrics.increment("chaos.drain_retries")

    health = store.health_report()
    retry_total = health["retry_total"]
    metrics.increment("retry.calls", retry_total["calls"])
    metrics.increment("retry.retries", retry_total["retries"])
    metrics.increment("retry.exhausted", retry_total["exhausted"])
    metrics.increment("failovers", health["failovers"])
    metrics.increment("shards.degraded", len(health["degraded_shards"]))
    metrics.increment("records.accepted", len(receipts))
    metrics.increment("records.unflushed", store.pending_count)
    for plan in shardstore.fault_plans:
        if plan is None:
            continue
        for kind, count in plan.injected.items():
            metrics.increment(f"faults.{kind}", count)
    return ChaosResult(metrics=metrics, receipts=receipts, health=health)


def _execute(simstore: SimulatedStore, request: WorkRequest,
             written_sns: List[int], write_kwargs: Dict,
             metrics: MetricsCollector, arrival: float):
    """Process-generator: run one request functionally, then replay costs."""
    store = simstore.store
    start = simstore.sim.now
    if request.kind == "write":
        payload = b"\xa5" * request.size
        receipt = store.write([payload],
                              retention_seconds=max(request.retention, 1.0),
                              **write_kwargs)
        written_sns.append(receipt.sn)
        costs = receipt.costs
    else:
        index = request.target_sn if request.target_sn is not None else 0
        if not written_sns:
            return
        sn = written_sns[index % len(written_sns)]
        marks = store._cost_checkpoints()
        store.read(sn)
        costs = store._cost_delta(marks)
    yield from simstore.replay(costs, label=request.kind)
    metrics.record(RequestSample(
        kind=request.kind,
        arrival=arrival,
        start=start,
        finish=simstore.sim.now,
        size=request.size,
    ))


def _maintenance_loop(simstore: SimulatedStore, interval: float):
    """Idle-time work: §4.3 strengthening + deferred hash verification.

    Steals the card only when no foreground request holds or awaits it.
    """
    store = simstore.store

    def card_idle():
        return (simstore.scpu_dev.resource.queue_length == 0
                and simstore.scpu_dev.resource.in_use == 0)

    # Drain in batches: one cost replay (and one batched SCPU round
    # trip per record's signature pair) per chunk instead of a full
    # checkpoint/replay cycle — and a simulation event — per entry.
    batch = 8
    while True:
        yield simstore.sim.timeout(interval)
        while len(store.strengthening) > 0 and card_idle():
            marks = store._cost_checkpoints()
            if store.strengthening.drain(simstore.sim.now,
                                         max_items=batch) == 0:
                break
            yield from simstore.replay(store._cost_delta(marks))
        while len(store.hash_verification) > 0 and card_idle():
            marks = store._cost_checkpoints()
            if store.hash_verification.drain(max_items=batch) == 0:
                break
            yield from simstore.replay(store._cost_delta(marks))


def run_closed_loop(simstore: SimulatedStore, requests: Iterable[WorkRequest],
                    config: Optional[SimulationConfig] = None,
                    write_kwargs: Optional[Dict] = None) -> MetricsCollector:
    """Peak-throughput measurement: *workers* concurrent back-to-back clients.

    This is what Figure 1 plots — the maximum records/second the WORM
    layer absorbs for a given record size and witnessing mode.
    """
    config = config if config is not None else SimulationConfig()
    write_kwargs = write_kwargs if write_kwargs is not None else {}
    metrics = MetricsCollector()
    written_sns: List[int] = []
    queue = list(requests)
    queue.reverse()  # pop() from the end in original order

    def worker():
        while queue:
            request = queue.pop()
            yield from _execute(simstore, request, written_sns,
                                write_kwargs, metrics, simstore.sim.now)

    for _ in range(config.workers):
        simstore.sim.process(worker())
    if config.strengthen_when_idle:
        simstore.sim.process(_maintenance_loop(simstore,
                                               config.maintenance_interval))
        simstore.sim.run(until=10 * 24 * 3600.0)
    else:
        simstore.sim.run()
    return metrics


def run_open_loop(simstore: SimulatedStore, requests: Iterable[WorkRequest],
                  config: Optional[SimulationConfig] = None,
                  write_kwargs: Optional[Dict] = None,
                  horizon: Optional[float] = None) -> MetricsCollector:
    """Arrival-timed workload: requests arrive per their timestamps.

    Used for burst/idle experiments (§4.3) and read/write mixes; latency
    percentiles are meaningful here because queueing delay is visible.
    """
    config = config if config is not None else SimulationConfig()
    write_kwargs = write_kwargs if write_kwargs is not None else {}
    metrics = MetricsCollector()
    written_sns: List[int] = []

    def generator():
        for request in requests:
            delay = request.arrival - simstore.sim.now
            if delay > 0:
                yield simstore.sim.timeout(delay)
            simstore.sim.process(_execute(
                simstore, request, written_sns, write_kwargs, metrics,
                request.arrival))

    simstore.sim.process(generator())
    if config.strengthen_when_idle:
        simstore.sim.process(_maintenance_loop(simstore,
                                               config.maintenance_interval))
        simstore.sim.run(until=horizon if horizon is not None else 10 * 24 * 3600.0)
    else:
        simstore.sim.run(until=horizon)
    return metrics
