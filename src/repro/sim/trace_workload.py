"""Workload persistence: save and replay request traces (JSONL).

Reproducibility plumbing: any arrival process can be captured to a JSONL
trace file and replayed later (or on another machine, or against a
different store configuration) byte-for-byte.  Benchmarking against
*recorded production traces* is the natural upgrade path from the
synthetic generators — the format here is what such a recorder would
emit: one JSON object per line, one line per request.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.sim.workload import WorkRequest

__all__ = ["save_trace", "load_trace", "TraceWorkload"]


def _to_line(request: WorkRequest) -> str:
    record = {"kind": request.kind, "arrival": request.arrival}
    if request.kind == "write":
        record["size"] = request.size
        record["retention"] = request.retention
    else:
        record["target_sn"] = request.target_sn
    return json.dumps(record, sort_keys=True)


def _from_line(line: str, lineno: int) -> WorkRequest:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise ValueError(f"trace line {lineno}: invalid JSON: {exc}") from None
    kind = record.get("kind")
    if kind not in ("write", "read"):
        raise ValueError(f"trace line {lineno}: unknown kind {kind!r}")
    arrival = float(record.get("arrival", 0.0))
    if arrival < 0:
        raise ValueError(f"trace line {lineno}: negative arrival time")
    if kind == "write":
        size = int(record.get("size", 0))
        if size < 0:
            raise ValueError(f"trace line {lineno}: negative size")
        return WorkRequest(kind="write", arrival=arrival, size=size,
                           retention=float(record.get("retention", 0.0)))
    return WorkRequest(kind="read", arrival=arrival,
                       target_sn=int(record.get("target_sn", 0)))


def save_trace(requests: Iterable[WorkRequest],
               path: Union[str, Path]) -> int:
    """Write a request stream to *path* (JSONL); returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(_to_line(request) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[WorkRequest]:
    """Load a full trace into memory (validated)."""
    return list(TraceWorkload(path))


class TraceWorkload:
    """An iterable workload backed by a JSONL trace file.

    Iterating streams the file, so multi-gigabyte traces replay without
    loading into memory; ordering is validated on the fly (arrivals must
    be non-decreasing, as any honest recorder produces).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise FileNotFoundError(self._path)  # wormlint: disable=W005 - stdlib os semantics for trace files

    def __iter__(self) -> Iterator[WorkRequest]:
        last_arrival = 0.0
        with self._path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                request = _from_line(line, lineno)
                if request.arrival < last_arrival:
                    raise ValueError(
                        f"trace line {lineno}: arrivals not monotone")
                last_arrival = request.arrival
                yield request
