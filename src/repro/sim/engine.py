"""A small discrete-event simulation engine (generator-based processes).

The throughput evaluation (Figure 1 and the burst/idle experiments) needs
a queueing simulation: writers arrive, contend for the SCPU (a slow serial
resource), the host CPU, the PCI-X bus and the disk, and we measure the
sustained rate in virtual time.  This engine provides the usual
process-interaction primitives, in the style of SimPy but self-contained:

* :class:`Simulator` — event loop over a binary heap of timestamped events;
* :class:`Event` — one-shot triggerable with callbacks and a value;
* ``Simulator.timeout(delay)`` — an event that fires after virtual *delay*;
* :class:`Process` — wraps a generator; each ``yield event`` suspends the
  process until the event fires (the event's value is sent back in);
* :class:`Resource` — a FIFO server pool with ``capacity`` slots, used to
  model the SCPU (capacity = number of coprocessors), the disk, and the
  bus.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield sim.timeout(2.0)
...     log.append(sim.now)
>>> _ = sim.process(worker(sim))
>>> sim.run()
>>> log
[2.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional

from repro.sim.clock import SimulationClock

__all__ = ["Simulator", "Event", "Process", "Resource", "Interrupt",
           "all_of", "any_of"]


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Events move through three states: pending → triggered (scheduled on
    the heap) → processed (callbacks ran).  ``succeed(value)`` triggers
    immediately at the current simulation time.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, delivering *value* to waiters."""
        if self._triggered:
            raise RuntimeError("event already triggered")  # wormlint: disable=W005 - generic sim kernel, WORM-agnostic
        self.value = value
        self._triggered = True
        self.sim._schedule(self.sim.now, self)
        return self


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that fires (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other: ``yield sim.process(child(sim))``.
    """

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off on a zero-delay event so creation order doesn't matter.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Used by the Retention Monitor: when a record with an earlier
        expiration arrives, the sleeping monitor is interrupted so it can
        re-arm its alarm (§4.2.2).  Detaching from the awaited event first
        prevents a double resume when that event later fires.
        """
        if self._triggered:
            return
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        event = Event(self.sim)
        event.callbacks.append(lambda ev: self._throw(Interrupt(cause)))
        event.succeed(None)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        try:
            next_event = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException:
            self._finish(None)
            raise
        self._wait_on(next_event)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            next_event = self._generator.send(event.value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(next_event)

    def _wait_on(self, event: Event) -> None:
        if not isinstance(event, Event):
            raise TypeError(f"process yielded a non-event: {event!r}")
        if event._processed:
            # Already fired — resume on a fresh zero-delay event carrying
            # the same value (avoids re-running old callbacks).
            relay = Event(self.sim)
            relay.value = event.value
            relay.callbacks.append(self._resume)
            relay._triggered = True
            self.sim._schedule(self.sim.now, relay)
            self._waiting_on = relay
            return
        event.callbacks.append(self._resume)
        self._waiting_on = event

    def _finish(self, value: Any) -> None:
        self.value = value
        self._triggered = True
        self.sim._schedule(self.sim.now, self)


class _ResourceRequest(Event):
    """Grant event for one slot of a :class:`Resource`."""

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A FIFO multi-server resource (e.g., the SCPU pool, the disk).

    Usage inside a process::

        req = resource.request()
        yield req                      # waits until a slot is granted
        yield sim.timeout(service)     # hold the slot for the service time
        resource.release(req)

    Statistics: ``total_busy_time`` accumulates slot-seconds of service,
    letting benchmarks report device utilization.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: List[_ResourceRequest] = []
        self._in_use = 0
        self._grant_times: dict = {}
        self.total_busy_time = 0.0
        self.total_requests = 0

    @property
    def in_use(self) -> int:
        """Slots currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> _ResourceRequest:
        """Ask for a slot; the returned event fires when granted."""
        req = _ResourceRequest(self.sim, self)
        self.total_requests += 1
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def _grant(self, req: _ResourceRequest) -> None:
        self._in_use += 1
        self._grant_times[id(req)] = self.sim.now
        req.succeed(req)

    def release(self, req: _ResourceRequest) -> None:
        """Return a previously granted slot; wakes the next waiter."""
        granted_at = self._grant_times.pop(id(req), None)
        if granted_at is None:
            raise RuntimeError("releasing a request that was never granted")  # wormlint: disable=W005 - generic sim kernel, WORM-agnostic
        self.total_busy_time += self.sim.now - granted_at
        self._in_use -= 1
        if self._queue:
            self._grant(self._queue.pop(0))

    def utilization(self, elapsed: float) -> float:
        """Fraction of slot-capacity busy over *elapsed* virtual seconds."""
        if elapsed <= 0:
            return 0.0
        return self.total_busy_time / (elapsed * self.capacity)


def all_of(sim: "Simulator", events) -> Event:
    """An event that fires when *every* input event has fired.

    Its value is the list of the input events' values, in input order.
    Useful for barrier-style joins: ``yield all_of(sim, [p1, p2, p3])``.
    """
    events = list(events)
    gate = Event(sim)
    remaining = [len(events)]
    values = [None] * len(events)
    if not events:
        return gate.succeed([])

    def arm(index: int, event: Event) -> None:
        def on_fire(fired: Event) -> None:
            values[index] = fired.value
            remaining[0] -= 1
            if remaining[0] == 0:
                gate.succeed(list(values))
        if event._processed:
            on_fire(event)
        else:
            event.callbacks.append(on_fire)

    for index, event in enumerate(events):
        arm(index, event)
    return gate


def any_of(sim: "Simulator", events) -> Event:
    """An event that fires with the *first* input event to fire.

    Its value is ``(index, value)`` of the winner.  Ideal for
    timeout-vs-completion races:
    ``winner, _ = yield any_of(sim, [work, sim.timeout(deadline)])``.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of needs at least one event")
    gate = Event(sim)
    done = [False]

    def arm(index: int, event: Event) -> None:
        def on_fire(fired: Event) -> None:
            if done[0]:
                return
            done[0] = True
            gate.succeed((index, fired.value))
        if event._processed:
            on_fire(event)
        else:
            event.callbacks.append(on_fire)

    for index, event in enumerate(events):
        arm(index, event)
    return gate


class Simulator:
    """The discrete-event loop: a heap of (time, tiebreak, event)."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimulationClock(start)
        self._heap: List = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def _schedule(self, at: float, event: Event) -> None:
        heapq.heappush(self._heap, (at, next(self._counter), event))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires *delay* virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(self)
        event.value = value
        event._triggered = True
        self._schedule(self.now + delay, event)
        return event

    def event(self) -> Event:
        """A bare event the caller triggers manually with ``succeed``."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process from *generator*."""
        return Process(self, generator)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        """Create a FIFO resource bound to this simulator."""
        return Resource(self, capacity=capacity, name=name)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or virtual time reaches *until*."""
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self.clock._advance_to(until)
                return
            heapq.heappop(self._heap)
            self.clock._advance_to(at)
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None and until > self.now:
            self.clock._advance_to(until)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
