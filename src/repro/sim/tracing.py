"""Execution tracing for simulations: per-event timelines, exportable.

Benchmarks report aggregates (throughput, percentiles); debugging a
queueing model needs the raw timeline — when each request hit each
device, how long it queued, what the device overlap looked like.
:class:`TraceRecorder` collects typed events in virtual time and renders
them as dicts (JSON-ready), a Chrome-trace-compatible list, or a quick
textual Gantt sketch for terminals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One span: *what* ran *where* from *start* to *end* (virtual s)."""

    name: str
    category: str
    start: float
    end: float
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates spans; inert (and nearly free) when disabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(self, name: str, category: str, start: float, end: float,
               **metadata) -> None:
        """Add one completed span."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {name}")
        self._events.append(TraceEvent(name=name, category=category,
                                       start=start, end=end,
                                       metadata=dict(metadata)))

    @property
    def events(self) -> Sequence[TraceEvent]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries ---------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self._events if e.category == category]

    def busy_seconds(self, category: str) -> float:
        """Total span time in a category (overlaps counted per span)."""
        return sum(e.duration for e in self.by_category(category))

    def span(self) -> float:
        """Wall span from the earliest start to the latest end."""
        if not self._events:
            return 0.0
        return (max(e.end for e in self._events)
                - min(e.start for e in self._events))

    # -- exports ----------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        return [{"name": e.name, "category": e.category, "start": e.start,
                 "end": e.end, **e.metadata} for e in self._events]

    def to_chrome_trace(self) -> str:
        """Chrome ``about:tracing`` / Perfetto-compatible JSON string."""
        spans = [{
            "name": event.name,
            "cat": event.category,
            "ph": "X",
            "ts": event.start * 1e6,       # microseconds
            "dur": event.duration * 1e6,
            "pid": 0,
            "tid": abs(hash(event.category)) % 1000,
            "args": event.metadata,
        } for event in self._events]
        return json.dumps(spans)

    def gantt(self, width: int = 64) -> str:
        """A terminal sketch: one row per category, '#' where busy."""
        if not self._events:
            return "(empty trace)"
        t0 = min(e.start for e in self._events)
        t1 = max(e.end for e in self._events)
        scale = (t1 - t0) or 1.0
        categories = sorted({e.category for e in self._events})
        lines = [f"trace: {t0:.6f}s .. {t1:.6f}s ({len(self._events)} events)"]
        for category in categories:
            cells = [" "] * width
            for event in self.by_category(category):
                lo = int((event.start - t0) / scale * (width - 1))
                hi = int((event.end - t0) / scale * (width - 1))
                for i in range(lo, hi + 1):
                    cells[i] = "#"
            lines.append(f"{category:>10s} |{''.join(cells)}|")
        return "\n".join(lines)
