"""Discrete-event simulation substrate (virtual time, workloads, metrics)."""

from repro.sim.clock import ScpuClock, SimulationClock
from repro.sim.engine import (Event, Interrupt, Process, Resource,
                              Simulator, all_of, any_of)
from repro.sim.metrics import (
    MetricsCollector,
    RequestSample,
    format_table,
    summarize_latencies,
)
from repro.sim.workload import (
    BurstArrivals,
    DiurnalArrivals,
    ClosedLoopArrivals,
    EmailMixSize,
    FixedSize,
    LognormalSize,
    MixedWorkload,
    MultiTenantArrivals,
    PoissonArrivals,
    RetentionSampler,
    TenantRequest,
    UniformSize,
    WorkRequest,
    ZipfChoice,
)

__all__ = [
    "ScpuClock",
    "SimulationClock",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "all_of",
    "any_of",
    "MetricsCollector",
    "RequestSample",
    "format_table",
    "summarize_latencies",
    "BurstArrivals",
    "ClosedLoopArrivals",
    "DiurnalArrivals",
    "EmailMixSize",
    "FixedSize",
    "LognormalSize",
    "MixedWorkload",
    "MultiTenantArrivals",
    "PoissonArrivals",
    "RetentionSampler",
    "TenantRequest",
    "UniformSize",
    "WorkRequest",
    "ZipfChoice",
]
