"""A manually advanced clock for functional (non-simulated) use.

Protocol logic (retention checks, freshness windows, signature lifetimes)
needs a time source even when no discrete-event simulation is running —
e.g., in unit tests and the example scripts.  :class:`ManualClock` has the
same ``.now`` surface as :class:`~repro.sim.clock.SimulationClock` but is
advanced explicitly by the caller.
"""

from __future__ import annotations

__all__ = ["ManualClock"]


class ManualClock:
    """A clock the caller advances by hand; never moves backwards."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by *seconds*; returns the new time."""
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds
        return self._now

    def set(self, t: float) -> None:
        """Jump to absolute time *t* (must not be in the past)."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards ({t} < {self._now})")
        self._now = float(t)
