"""Three-way authentication-scheme ablation (DESIGN §12, PAPER §2.3/§4.1).

One measurement core shared by the committed benchmark suite
(``benchmarks/test_ablation_auth_schemes.py``) and the
``repro.cli auth-ablation`` artifact generator, so the numbers in
``BENCH_ablation_auth_<scheme>.json`` and the assertions in the tests
come from the same code path.

For each scheme selectable via ``StoreConfig.auth_scheme`` the ablation
grows a store to several sizes and samples, at each size:

* **SCPU virtual seconds per write** — the scarce resource the paper's
  O(1) windows defend against Merkle's O(log n) root re-signing; the
  accumulator's trapdoor update is O(1) too but pays a signature per
  write rather than an amortized refresh;
* **proof latency** — host + disk (+ SCPU, asserted ~0: reads are
  SCPU-free by design in all three schemes) virtual seconds to serve
  one steady-state active read, with the accumulator directory's
  one-time cold-witness catch-up reported separately;
* **proof size** — serialized bytes of the membership proof
  (fixed for windows and the accumulator, O(log n) for Merkle paths);
* **state size** — resident bytes of the scheme-owned authentication
  structure (signed bounds vs tree nodes vs value + witness cache).

All numbers are virtual-time results from the device cost model, so
they are deterministic across machines for a fixed keyring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import StoreConfig
from repro.core.worm import StrongWormStore
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor

__all__ = ["DEFAULT_SIZES", "MEASURED_WRITES", "PAYLOAD_BYTES",
           "build_store", "measure_point", "run_auth_ablation"]

#: Store sizes (records already committed) at which costs are sampled.
DEFAULT_SIZES: Sequence[int] = (64, 512, 4096)

#: Writes averaged per sample point.
MEASURED_WRITES = 32

#: Payload bytes per record (small, so signatures dominate hashing).
PAYLOAD_BYTES = 64


def _keyring_copy(keyring: ScpuKeyring) -> ScpuKeyring:
    """Shallow copy so per-store burst rotation can't cross-contaminate."""
    return ScpuKeyring(s_key=keyring.s_key, d_key=keyring.d_key,
                       burst_key=keyring.burst_key, hmac=keyring.hmac)


def build_store(scheme: str, keyring: ScpuKeyring) -> StrongWormStore:
    """A fresh store running *scheme*, on its own copy of *keyring*."""
    return StrongWormStore(
        scpu=SecureCoprocessor(keyring=_keyring_copy(keyring)),
        config=StoreConfig(auth_scheme=scheme))


def measure_point(scheme: str, keyring: ScpuKeyring, prefill: int,
                  measured: int = MEASURED_WRITES,
                  payload: int = PAYLOAD_BYTES) -> Dict[str, float]:
    """Grow one store to *prefill* records, then sample all four costs."""
    store = build_store(scheme, keyring)
    blob = b"x" * payload
    for _ in range(prefill):
        store.write([blob], retention_seconds=1e9)

    mark = store.scpu.meter.checkpoint()
    for _ in range(measured):
        store.write([blob], retention_seconds=1e9)
    scpu_per_write = store.scpu.meter.delta(mark) / measured

    # Read a mid-store record — a typical leaf (full-height Merkle path;
    # the freshest leaf sits on the tree's unpaired right spine and
    # would under-report proof size).  The first read is cold: the
    # accumulator's witness directory catches the cached witness up to
    # the current value (host-side Bézout/exponent work — the cost it
    # trades for O(1) SCPU reads); the second read is the steady state.
    def _read_cost(sn):
        marks = (store.scpu.meter.checkpoint(),
                 store.host.meter.checkpoint(),
                 store.disk.meter.checkpoint())
        result = store.read(sn)
        return result, {
            "scpu": store.scpu.meter.delta(marks[0]),
            "host": store.host.meter.delta(marks[1]),
            "disk": store.disk.meter.delta(marks[2]),
        }

    target = prefill // 2 + 1
    _, cold = _read_cost(target)
    result, warm = _read_cost(target)

    return {
        "store_size": prefill + measured,
        "scpu_seconds_per_write": scpu_per_write,
        "read_seconds": sum(warm.values()),
        "read_scpu_seconds": cold["scpu"] + warm["scpu"],
        "witness_catchup_seconds": max(0.0, sum(cold.values())
                                       - sum(warm.values())),
        "proof_bytes": store.auth.proof_size_bytes(result.proof),
        "state_bytes": store.auth.state_size_bytes(),
    }


def run_auth_ablation(scheme: str, keyring: ScpuKeyring,
                      sizes: Optional[Sequence[int]] = None,
                      measured: int = MEASURED_WRITES,
                      payload: int = PAYLOAD_BYTES) -> Dict[str, object]:
    """The full per-scheme sweep, shaped for a ``BENCH_*.json`` artifact."""
    sizes = list(DEFAULT_SIZES if sizes is None else sizes)
    points: List[Dict[str, float]] = [
        measure_point(scheme, keyring, n, measured=measured, payload=payload)
        for n in sizes]
    return {
        "benchmark": "ablation_auth_scheme",
        "scheme": scheme,
        "key_bits": keyring.s_key.bits,
        "payload_bytes": payload,
        "measured_writes": measured,
        "prefill_sizes": sizes,
        "points": points,
    }
