"""Virtual clocks for the discrete-event simulation.

All performance results in this reproduction are measured in *virtual
time*: devices charge service durations taken from the paper's Table 2
calibration, so throughput curves depend on the modelled hardware, not on
the machine running the simulation.

Two clock flavours exist:

* :class:`SimulationClock` — the global simulation clock, advanced only by
  the event engine;
* :class:`ScpuClock` — the SCPU's internal tamper-protected clock (§2.2's
  "note on timestamps").  It reads the simulation clock through a small
  configurable drift, letting tests exercise the client's freshness-window
  tolerance ("the client will not accept values older than a few
  minutes").
"""

from __future__ import annotations

__all__ = ["SimulationClock", "ScpuClock", "SystemClock"]


class SystemClock:
    """Wall-clock time — used by the CLI's persistent stores.

    Battery-backed SCPU clocks track real time across power cycles; this
    clock source does the same for the on-disk demo deployment.
    """

    @property
    def now(self) -> float:
        import time
        return time.time()


class SimulationClock:
    """The master virtual clock.  Only the event engine may advance it."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def _advance_to(self, t: float) -> None:
        """Advance to absolute time *t* (engine-internal; never backwards)."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards ({t} < {self._now})")
        self._now = t


class ScpuClock:
    """The SCPU's internal clock: accurate, tamper-protected, maybe drifty.

    ``drift_rate`` expresses seconds of drift per second of real time
    (e.g. ``1e-6`` is one microsecond per second); FIPS-certified devices
    keep this tiny, but exposing it lets the test suite check that the
    freshness window tolerates realistic drift and rejects implausible
    skews.
    """

    def __init__(self, source: SimulationClock, drift_rate: float = 0.0,
                 offset: float = 0.0) -> None:
        if abs(drift_rate) >= 0.01:
            raise ValueError("drift_rate beyond 1% is not a clock, it's a fault")
        self._source = source
        self._drift_rate = drift_rate
        self._offset = offset

    @property
    def now(self) -> float:
        """SCPU-local time: source time plus accumulated drift and offset."""
        t = self._source.now
        return t + self._offset + self._drift_rate * t
