"""Metrics collection for throughput/latency evaluation.

Benchmarks report records/second (Figure 1's y-axis), latency percentiles
and device utilization.  :class:`MetricsCollector` accumulates per-request
samples in virtual time; :class:`SeriesFormatter` renders the paper-style
tables the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["RequestSample", "MetricsCollector", "summarize_latencies",
           "format_table"]


@dataclass(frozen=True)
class RequestSample:
    """One completed request: kind, arrival/start/finish virtual times."""

    kind: str
    arrival: float
    start: float
    finish: float
    size: int = 0

    @property
    def latency(self) -> float:
        """End-to-end sojourn time (queueing + service)."""
        return self.finish - self.arrival

    @property
    def service_time(self) -> float:
        """Time in service, excluding queueing."""
        return self.finish - self.start


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile on a pre-sorted sequence."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a latency sample set."""
    if not latencies:
        return {"mean": float("nan"), "p50": float("nan"), "p95": float("nan"),
                "p99": float("nan"), "max": float("nan")}
    ordered = sorted(latencies)
    return {
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "p99": _percentile(ordered, 0.99),
        "max": ordered[-1],
    }


class MetricsCollector:
    """Accumulates request samples and derives rates and percentiles.

    Besides per-request samples, the collector carries named **counters**
    (``increment``/``counter``) for events that have no latency of their
    own — injected faults, retries, failovers — so chaos runs report
    through the same object the benchmarks already print from.
    """

    def __init__(self) -> None:
        self._samples: List[RequestSample] = []
        self.counters: Dict[str, int] = {}

    def record(self, sample: RequestSample) -> None:
        """Add one completed-request sample."""
        self._samples.append(sample)

    def increment(self, name: str, n: int = 1) -> None:
        """Bump the named event counter by *n*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    @property
    def samples(self) -> Tuple[RequestSample, ...]:
        return tuple(self._samples)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of samples, optionally filtered by request kind."""
        if kind is None:
            return len(self._samples)
        return sum(1 for s in self._samples if s.kind == kind)

    def throughput(self, kind: Optional[str] = None) -> float:
        """Completed requests per virtual second over the active span.

        The span runs from the first arrival to the last finish; an empty
        or instantaneous collection reports 0.
        """
        relevant = [s for s in self._samples if kind is None or s.kind == kind]
        if not relevant:
            return 0.0
        span_start = min(s.arrival for s in relevant)
        span_end = max(s.finish for s in relevant)
        if span_end <= span_start:
            return 0.0
        return len(relevant) / (span_end - span_start)

    def latency_summary(self, kind: Optional[str] = None) -> Dict[str, float]:
        """Latency percentiles, optionally filtered by kind."""
        latencies = [s.latency for s in self._samples
                     if kind is None or s.kind == kind]
        return summarize_latencies(latencies)

    def bytes_written(self) -> int:
        """Total payload bytes across write samples."""
        return sum(s.size for s in self._samples if s.kind == "write")

    def extend(self, other: "MetricsCollector") -> None:
        """Absorb every sample and counter from *other* (shard aggregation)."""
        self._samples.extend(other._samples)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    @classmethod
    def merge(cls, collectors: Sequence["MetricsCollector"]
              ) -> "MetricsCollector":
        """One collector holding every sample of *collectors*.

        This is how a sharded front-end reports: per-shard collectors
        merge into a single summary whose throughput spans the union of
        the shards' active spans — the number a capacity planner wants,
        since the shards really do run concurrently in virtual time.
        """
        merged = cls()
        for collector in collectors:
            merged.extend(collector)
        return merged


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (benchmark harness output)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(divider)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
