"""The in-process telemetry bus: counters, gauges, histograms, events.

The paper's performance argument is about *where time and SCPU touches
go* — O(1) window authentication, deferred strengthening, read paths
that never enter the card's queue.  Until PR 5 that attribution was
scattered across ad-hoc dicts (``health_report``,
``StrengtheningQueue.report``, ``cost_summary``, ``RetryStats``) with no
common schema.  :class:`TelemetryBus` is the common substrate those
numbers now also flow through:

* **counters** — monotonic named totals (``store.writes``,
  ``retry.retries``, ``device.scpu.seconds``).  Components *declare*
  their counters up front, so a snapshot always carries the full name
  set even when a counter never fired — counter names are an API, and
  the committed schema (``scripts/obs_schema.json``) holds renames to
  CI review;
* **gauges** — pull-style callables sampled at snapshot time (backlog
  depths, pending queue sizes).  Several providers may register under
  one name; the snapshot reports their sum, which is exactly how a
  sharded store aggregates;
* **histograms** — fixed-bucket distributions of *virtual-time* values
  (per-op device seconds, group-commit batch sizes);
* **events** — an append-only, bounded log of discrete happenings
  (breaker transitions, failovers, maintenance slices), each stamped
  with the *virtual* time the caller passes in;
* **spans** — completed intervals forwarded to a
  :class:`~repro.sim.tracing.TraceRecorder` sink, so the Chrome-trace
  export the simulator already speaks doubles as the span exporter.

Everything is virtual-time only: the bus never reads a clock (wormlint
W002); callers stamp events and spans from the store's own timeline.
The bus is untrusted main-CPU bookkeeping, like the routing tables —
nothing in it carries witness state, and losing it costs observability,
never integrity (no laundering: reports *about* weak constructs never
substitute for strengthening them).

A disabled bus (``TelemetryBus(enabled=False)``) turns every mutator
into a no-op, so instrumented hot paths stay branch-cheap; the shared
:data:`NULL_BUS` is the default wired into un-observed stores.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.tracing import TraceRecorder

__all__ = ["DEFAULT_BUCKETS", "Histogram", "TelemetryEvent", "TelemetryBus",
           "NULL_BUS"]

#: Default histogram bucket upper bounds, in virtual seconds — spanning
#: the Table 2 cost range from sub-millisecond host ops to multi-second
#: SCPU signature batches.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


@dataclass(frozen=True)
class TelemetryEvent:
    """One discrete happening at a point in *virtual* time."""

    name: str
    time: float
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "t": self.time, **self.fields}


class Histogram:
    """Fixed-bucket distribution of non-negative virtual-time values."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        # counts[i] pairs with bounds[i]; counts[-1] is the +Inf overflow.
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, object]:
        """Prometheus-style cumulative buckets plus count/sum."""
        cumulative = 0
        buckets: List[Dict[str, object]] = []
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": "+Inf", "count": self.count})
        return {"count": self.count, "sum": self.total, "buckets": buckets}


class TelemetryBus:
    """Store-wide observability: named counters, gauges, histograms, events.

    One bus is shared by every component of a store — and by every shard
    of a :class:`~repro.core.sharded.ShardedWormStore` — via the
    ``observe=`` field of :class:`~repro.core.config.StoreConfig`.
    """

    def __init__(self, enabled: bool = True,
                 trace: Optional[TraceRecorder] = None,
                 event_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.trace = trace
        self.event_capacity = event_capacity
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, List[Callable[[], float]]] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: List[TelemetryEvent] = []
        self._events_dropped = 0

    # -- counters -------------------------------------------------------------

    def declare_counter(self, name: str) -> None:
        """Ensure *name* appears in snapshots even at zero (API surface)."""
        if not self.enabled:
            return
        self._counters.setdefault(name, 0.0)

    def inc(self, name: str, n: float = 1.0) -> None:
        """Bump the named monotonic counter by *n* (must be >= 0)."""
        if not self.enabled:
            return
        if n < 0:
            raise ValueError(f"counter {name} cannot decrease (n={n})")
        self._counters[name] = self._counters.get(name, 0.0) + n

    def counter(self, name: str) -> float:
        """Current value of the named counter (0 when never touched)."""
        return self._counters.get(name, 0.0)

    # -- gauges ---------------------------------------------------------------

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-style gauge provider.

        Several providers may share one name (one per shard, say); the
        snapshot reports the *sum* of their current values.
        """
        if not self.enabled:
            return
        self._gauges.setdefault(name, []).append(fn)

    def gauge_value(self, name: str) -> float:
        """Current summed value of the named gauge (0 when unregistered)."""
        return float(sum(fn() for fn in self._gauges.get(name, [])))

    # -- histograms -----------------------------------------------------------

    def declare_histogram(self, name: str,
                          buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Pre-create a histogram so its name is part of the snapshot API."""
        if not self.enabled:
            return
        self._histograms.setdefault(name, Histogram(buckets))

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Add one sample to the named histogram (created on first use)."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms.setdefault(name, Histogram(buckets))
        histogram.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # -- events ---------------------------------------------------------------

    def event(self, name: str, time: float, **fields: object) -> None:
        """Append one event at virtual *time*; bounded, drops count visibly."""
        if not self.enabled:
            return
        if len(self._events) >= self.event_capacity:
            self._events_dropped += 1
            return
        self._events.append(TelemetryEvent(name=name, time=time,
                                           fields=dict(fields)))

    @property
    def events(self) -> Tuple[TelemetryEvent, ...]:
        return tuple(self._events)

    @property
    def events_dropped(self) -> int:
        return self._events_dropped

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, category: str, start: float, end: float,
             **metadata: object) -> None:
        """Forward one completed span to the trace sink (if any)."""
        if not self.enabled or self.trace is None:
            return
        self.trace.record(name, category, start, end, **metadata)

    # -- device metering hook -------------------------------------------------

    def device_charge(self, device: str, op: str, seconds: float) -> None:
        """One metered device operation (see ``OpMeter.attach_telemetry``).

        Maintains the two-counter attribution the reconciliation checks
        against ``cost_summary``: ``device.<name>.ops`` and
        ``device.<name>.seconds``.  *op* is accepted for future per-op
        breakdowns but deliberately not fanned into counters — the
        per-operation split stays on :meth:`OpMeter.by_operation`.
        """
        if not self.enabled:
            return
        self.inc(f"device.{device}.ops")
        self.inc(f"device.{device}.seconds", seconds)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view of everything the bus knows.

        This dict is the export/validation surface: the JSON snapshot the
        ``obs`` CLI writes, the structure ``scripts/obs_schema.json``
        locks down, and the numbers
        :func:`repro.obs.reconcile.reconcile_sharded` squares against the
        legacy reports.
        """
        by_name: Dict[str, int] = {}
        for event in self._events:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        return {
            "counters": dict(self._counters),
            "gauges": {name: self.gauge_value(name) for name in self._gauges},
            "histograms": {name: histogram.as_dict()
                           for name, histogram in self._histograms.items()},
            "events": {"count": len(self._events),
                       "dropped": self._events_dropped,
                       "by_name": by_name},
            "spans": len(self.trace) if self.trace is not None else 0,
        }


#: The shared disabled bus un-observed stores wire in: every mutator is a
#: no-op and no state ever accumulates, so sharing one instance is safe.
NULL_BUS = TelemetryBus(enabled=False)
