"""Cross-checking a telemetry snapshot against the legacy reports.

The bus is *secondary* bookkeeping: the numbers of record stay where
they always were — ``ShardedWormStore.health_report()`` /
``cost_summary()``, the retry executors' :class:`RetryStats`, the
strengthening queues' ``report()``.  A telemetry layer that drifts from
those would be worse than none (it would faithfully export wrong
attribution), so reconciliation is part of the ``obs`` CLI and of the
chaos suite: every run squares the snapshot with the legacy reports and
fails loud on mismatch.

:func:`reconcile_sharded` returns a list of human-readable mismatches —
empty means the two accountings agree.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["reconcile_sharded"]

#: Relative tolerance for float-accumulated seconds (two accumulation
#: orders may differ by rounding; anything beyond this is a real drift).
_REL_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b))


def reconcile_sharded(store, snapshot: Dict[str, object]) -> List[str]:
    """Square *snapshot* with *store*'s legacy reports; list mismatches.

    Checks the acceptance surface of PR 5: device virtual seconds vs
    ``cost_summary``, retry attempts/backoff vs the merged
    ``RetryStats``, breaker degradations and failovers vs
    ``health_report``, and strengthening backlog vs the queues' own
    ``report()``.
    """
    problems: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    health = store.health_report()
    now = store.now

    # Device attribution: the meters are the ledger cost_summary reads;
    # the bus hears every charge through OpMeter.attach_telemetry.
    costs = store.cost_summary()
    for device in ("scpu", "host", "disk"):
        bus_seconds = counters.get(f"device.{device}.seconds", 0.0)
        if not _close(bus_seconds, costs[device]):
            problems.append(
                f"device.{device}.seconds: bus={bus_seconds!r} "
                f"cost_summary={costs[device]!r}")

    # Retry-loop totals: each shard's RetryExecutor mirrors its stats
    # into the shared bus, so the sums must match the merged ledger.
    retry_total = health["retry_total"]
    for bus_name, legacy_key in (("retry.calls", "calls"),
                                 ("retry.retries", "retries"),
                                 ("retry.exhausted", "exhausted")):
        bus_value = counters.get(bus_name, 0.0)
        if bus_value != retry_total[legacy_key]:
            problems.append(
                f"{bus_name}: bus={bus_value!r} "
                f"health_report={retry_total[legacy_key]!r}")
    bus_backoff = counters.get("retry.backoff_seconds", 0.0)
    if not _close(bus_backoff, retry_total["backoff_seconds"]):
        problems.append(
            f"retry.backoff_seconds: bus={bus_backoff!r} "
            f"health_report={retry_total['backoff_seconds']!r}")

    # Failure domains: failovers and terminal breaker trips.
    bus_failovers = counters.get("sharded.failovers", 0.0)
    if bus_failovers != health["failovers"]:
        problems.append(
            f"sharded.failovers: bus={bus_failovers!r} "
            f"health_report={health['failovers']!r}")
    bus_degraded = counters.get("breaker.degraded", 0.0)
    if bus_degraded != len(health["degraded_shards"]):
        problems.append(
            f"breaker.degraded: bus={bus_degraded!r} "
            f"degraded_shards={health['degraded_shards']!r}")

    # Strengthening debt: the backlog gauge vs the queues' own reports.
    reports = [shard.strengthening.report(now) for shard in store.shards]
    legacy_backlog = sum(r["backlog"] for r in reports)
    bus_backlog = gauges.get("strengthen.backlog")
    if bus_backlog is not None and bus_backlog != legacy_backlog:
        problems.append(
            f"strengthen.backlog: bus={bus_backlog!r} "
            f"queue reports={legacy_backlog!r}")
    legacy_violations = sum(r["lifetime_violations"] for r in reports)
    bus_violations = counters.get("strengthen.lifetime_violations", 0.0)
    if bus_violations != legacy_violations:
        problems.append(
            f"strengthen.lifetime_violations: bus={bus_violations!r} "
            f"queue reports={legacy_violations!r}")

    # Group-commit front-end: pending depth.
    bus_pending = gauges.get("sharded.pending_records")
    if bus_pending is not None and bus_pending != health["pending_records"]:
        problems.append(
            f"sharded.pending_records: bus={bus_pending!r} "
            f"health_report={health['pending_records']!r}")

    return problems
