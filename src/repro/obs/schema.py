"""A JSON-Schema-subset validator for telemetry snapshots.

The container ships no third-party packages, so CI cannot lean on
``jsonschema``.  This module implements exactly the subset the committed
``scripts/obs_schema.json`` needs — ``type``, ``required``,
``properties``, ``additionalProperties`` (schema form), and ``items`` —
and nothing more.  The point of the schema check is API stability:
counter and gauge names are load-bearing (benchmark trajectories and
the reconciliation in :mod:`repro.obs.reconcile` key on them), so a
rename must fail ``make obs`` rather than silently shift the data.

:func:`validate` returns a list of human-readable problems instead of
raising: CI prints them all at once, and an empty list is the pass
signal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["load_schema", "validate"]

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    # bool is an int subclass; a schema saying "number" means a real number.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
}


def load_schema(path: Union[str, Path]) -> Dict[str, object]:
    """Read a schema document from disk."""
    text = Path(path).read_text(encoding="utf-8")
    schema = json.loads(text)
    if not isinstance(schema, dict):
        raise ValueError(f"schema root must be an object: {path}")
    return schema


def validate(instance: object, schema: Dict[str, object],
             path: str = "$") -> List[str]:
    """Check *instance* against *schema*; return all problems found."""
    problems: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        checker = _TYPE_CHECKS.get(expected)
        if checker is None:
            problems.append(f"{path}: unsupported schema type {expected!r}")
            return problems
        if not checker(instance):
            problems.append(
                f"{path}: expected {expected}, got {type(instance).__name__}")
            return problems
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                problems.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                problems.extend(
                    validate(instance[key], subschema, f"{path}.{key}"))
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for key, value in instance.items():
                if key not in properties:
                    problems.extend(
                        validate(value, additional, f"{path}.{key}"))
        elif additional is False:
            for key in instance:
                if key not in properties:
                    problems.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                problems.extend(
                    validate(value, items, f"{path}[{index}]"))
    return problems
