"""repro.obs — the store-wide observability subsystem (PR 5).

One :class:`~repro.obs.bus.TelemetryBus` per store (shared across the
shards of a sharded store via ``StoreConfig(observe=bus)``) collects
counters, gauges, histograms, events, and spans from every layer —
:class:`~repro.core.worm.StrongWormStore`,
:class:`~repro.core.sharded.ShardedWormStore`, the retry loop, the
circuit breakers, the deferred queues, and the device meters.  The
:mod:`~repro.obs.export` module renders the bus in three formats, and
:mod:`~repro.obs.reconcile` squares the snapshot against the legacy
``health_report``/``cost_summary`` numbers so the telemetry can never
silently drift from the accounting of record.
"""

from repro.obs.bus import (
    DEFAULT_BUCKETS,
    NULL_BUS,
    Histogram,
    TelemetryBus,
    TelemetryEvent,
)
from repro.obs.export import snapshot_json, to_chrome_trace, to_jsonl, to_prometheus
from repro.obs.reconcile import reconcile_sharded
from repro.obs.schema import load_schema, validate

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_BUS",
    "Histogram",
    "TelemetryBus",
    "TelemetryEvent",
    "snapshot_json",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "reconcile_sharded",
    "load_schema",
    "validate",
]
