"""Exporters for :class:`~repro.obs.bus.TelemetryBus` state.

Three formats, matching the three ways the numbers get consumed:

* :func:`to_jsonl` — the event log as JSON lines, one object per event,
  in emission order.  This is the append-only "what happened when"
  record the chain-of-custody framing calls for;
* :func:`to_prometheus` — a Prometheus-text-format snapshot of the
  counters, gauges, and histograms, for eyeballing or scraping;
* :func:`to_chrome_trace` — the span timeline in Chrome ``about:tracing``
  format, delegated to the bus's :class:`TraceRecorder` sink.

Plus :func:`snapshot_json`, the canonical machine-readable snapshot that
``scripts/obs_schema.json`` validates and benchmarks write alongside
their ``BENCH_*.json`` results.
"""

from __future__ import annotations

import json
from typing import List

from repro.obs.bus import TelemetryBus

__all__ = ["to_jsonl", "to_prometheus", "to_chrome_trace", "snapshot_json"]


def to_jsonl(bus: TelemetryBus) -> str:
    """The bus's event log as newline-delimited JSON, in emission order."""
    return "\n".join(json.dumps(event.as_dict(), sort_keys=True)
                     for event in bus.events)


def _metric_name(name: str) -> str:
    """Map a dotted bus name onto the Prometheus grammar.

    ``device.scpu.seconds`` becomes ``repro_device_scpu_seconds``; the
    ``repro_`` prefix namespaces the store against anything else a
    scrape might pick up.
    """
    return "repro_" + "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name)


def to_prometheus(bus: TelemetryBus) -> str:
    """Counters, gauges, and histograms in Prometheus text format."""
    snapshot = bus.snapshot()
    lines: List[str] = []
    for name in sorted(snapshot["counters"]):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot["histograms"]):
        metric = _metric_name(name)
        data = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} histogram")
        for bucket in data["buckets"]:
            lines.append(
                f'{metric}_bucket{{le="{bucket["le"]}"}} {bucket["count"]}')
        lines.append(f"{metric}_sum {data['sum']}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(bus: TelemetryBus) -> str:
    """The span timeline as a Chrome ``about:tracing`` JSON document."""
    if bus.trace is None:
        return "[]"
    return bus.trace.to_chrome_trace()


def snapshot_json(bus: TelemetryBus, indent: int = 2) -> str:
    """The canonical snapshot as a JSON document (schema-validated in CI)."""
    return json.dumps(bus.snapshot(), indent=indent, sort_keys=True)
