"""Deterministic fault plans for the chaos harness.

A :class:`FaultPlan` is a *schedule* of device faults expressed against
virtual time and per-device operation counts — never wall clock, never an
unseeded RNG — so a chaos run replays identically every time.  The plan
is consulted by the :mod:`repro.faults.wrappers` device wrappers at each
service call; it answers with the fault actions that fire on that call:

* ``transient`` — drop this request (:class:`ScpuUnavailableError` /
  :class:`StorageUnavailableError`); the retry layer's bread and butter;
* ``latency`` — the request succeeds but costs extra virtual seconds
  (a busy bus, a firmware GC pause), charged onto the device meter;
* ``tamper`` — the enclosure trips: zeroization, permanent death
  (every subsequent call raises :class:`TamperedError`);
* ``crash-before`` / ``crash-after`` — the *host process* dies around
  this operation (:class:`CrashError`), modelling mid-commit crashes.

Scheduled events fire on the first matching call **at or after** their
trigger (virtual time ``at`` and/or the wrapper's ``after_ops`` op
count); steady-state noise comes from ``transient_rate`` driven by a
seeded RNG.  One plan instance belongs to one wrapped device: it owns
the consumed/injected bookkeeping for that device.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultKind", "FaultEvent", "FaultAction", "FaultPlan"]


class FaultKind:
    """Names of the injectable fault classes."""

    TRANSIENT = "transient"
    LATENCY = "latency"
    TAMPER = "tamper"
    CRASH_BEFORE = "crash-before"
    CRASH_AFTER = "crash-after"

    ALL = (TRANSIENT, LATENCY, TAMPER, CRASH_BEFORE, CRASH_AFTER)


@dataclass
class FaultEvent:
    """One scheduled fault: what fires, when, against which operation.

    ``at`` triggers on the first consulted call at/after that virtual
    time; ``after_ops`` on the Nth service call the wrapped device sees
    (1-based).  When both are given, both must hold.  ``op`` restricts
    the event to one operation name (``None`` matches any).  ``count``
    lets a transient/latency event fire on that many consecutive
    matching calls (a tamper trip is inherently once-only).
    """

    kind: str
    at: Optional[float] = None
    after_ops: Optional[int] = None
    op: Optional[str] = None
    seconds: float = 0.0
    count: int = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at is None and self.after_ops is None:
            raise ValueError("a fault event needs a trigger (at / after_ops)")
        if self.kind in (FaultKind.CRASH_BEFORE, FaultKind.CRASH_AFTER) \
                and self.op is None:
            raise ValueError("crash events must name a target operation")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def matches(self, op: str, now: float, op_index: int) -> bool:
        if self.fired >= self.count:
            return False
        if self.op is not None and self.op != op:
            return False
        if self.at is not None and now < self.at:
            return False
        if self.after_ops is not None and op_index < self.after_ops:
            return False
        return True


@dataclass(frozen=True)
class FaultAction:
    """One fault firing on the current call (what the wrapper executes)."""

    kind: str
    seconds: float = 0.0


class FaultPlan:
    """A deterministic schedule of faults for one wrapped device.

    Build with the fluent helpers (each returns ``self``)::

        plan = (FaultPlan(transient_rate=0.05, seed=7)
                .tamper(after_ops=40)
                .latency(at=12.0, seconds=0.5, op="witness_write")
                .crash_before("witness_write", after_ops=100))

    ``transient_rate`` injects steady-state transient faults on that
    fraction of calls, from a ``random.Random(seed)`` stream — the same
    seed replays the same fault sequence.  :attr:`injected` counts every
    fault actually delivered, by kind.
    """

    def __init__(self, events: Tuple[FaultEvent, ...] = (),
                 transient_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError("transient_rate must be in [0, 1)")
        self.events: List[FaultEvent] = list(events)
        self.transient_rate = transient_rate
        self.seed = seed
        self._rng = random.Random(seed)
        self.injected: Dict[str, int] = {kind: 0 for kind in FaultKind.ALL}
        self.consulted = 0

    # -- fluent builders -----------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def transient(self, at: Optional[float] = None,
                  after_ops: Optional[int] = None,
                  op: Optional[str] = None, count: int = 1) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.TRANSIENT, at=at,
                                   after_ops=after_ops, op=op, count=count))

    def latency(self, seconds: float, at: Optional[float] = None,
                after_ops: Optional[int] = None,
                op: Optional[str] = None, count: int = 1) -> "FaultPlan":
        if seconds <= 0:
            raise ValueError("a latency spike needs positive seconds")
        return self.add(FaultEvent(FaultKind.LATENCY, at=at,
                                   after_ops=after_ops, op=op,
                                   seconds=seconds, count=count))

    def tamper(self, at: Optional[float] = None,
               after_ops: Optional[int] = None,
               op: Optional[str] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.TAMPER, at=at,
                                   after_ops=after_ops, op=op))

    def crash_before(self, op: str, at: Optional[float] = None,
                     after_ops: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.CRASH_BEFORE, at=at,
                                   after_ops=after_ops, op=op))

    def crash_after(self, op: str, at: Optional[float] = None,
                    after_ops: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.CRASH_AFTER, at=at,
                                   after_ops=after_ops, op=op))

    # -- consultation --------------------------------------------------------

    def advise(self, op: str, now: float, op_index: int,
               alias: Optional[str] = None) -> List[FaultAction]:
        """The fault actions firing on this call (consumes scheduled events).

        *op_index* is the wrapped device's 1-based service-call counter.
        Scheduled events are checked first, then the steady-state
        transient draw — exactly one RNG draw per consultation, so the
        random stream is independent of which events are scheduled.

        *alias* is a second operation name the call answers to: a
        batched entry point is the same card operation as its singular
        form, so a plan targeting ``strengthen`` must also hit a
        ``strengthen_batch`` crossing.  An event matching either name
        fires exactly once.
        """
        self.consulted += 1
        actions: List[FaultAction] = []
        for event in self.events:
            if event.matches(op, now, op_index) or (
                    alias is not None
                    and event.matches(alias, now, op_index)):
                event.fired += 1
                actions.append(FaultAction(event.kind, seconds=event.seconds))
        if self._rng.random() < self.transient_rate:
            actions.append(FaultAction(FaultKind.TRANSIENT))
        for action in actions:
            self.injected[action.kind] += 1
        return actions

    # -- reporting -----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def report(self) -> Dict[str, int]:
        """Injected-fault counts by kind, plus calls consulted."""
        summary = {k: v for k, v in self.injected.items() if v}
        summary["consulted"] = self.consulted
        return summary
