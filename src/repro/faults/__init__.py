"""Fault-injection harness: deterministic chaos for the WORM stack.

The paper's trust story *depends* on failure: the SCPU answers attack by
destroying itself (§2.2 zeroization).  This package turns card death,
transient device errors, latency spikes, and mid-commit host crashes
into first-class, deterministically schedulable events so the rest of
the system can prove it survives them — see :mod:`repro.core.retry`
(backoff), :mod:`repro.core.health` (circuit breakers / degraded mode),
:mod:`repro.storage.journal` (crash recovery), and ``tests/chaos/``.
"""

from repro.faults.plan import FaultAction, FaultEvent, FaultKind, FaultPlan
from repro.faults.wrappers import (
    SCPU_FAULTABLE_OPS,
    FaultyBlockStore,
    FaultyScpu,
)

__all__ = [
    "FaultAction",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SCPU_FAULTABLE_OPS",
    "FaultyBlockStore",
    "FaultyScpu",
]
