"""Fault-injecting device wrappers: drop-in faulty SCPUs and block stores.

:class:`FaultyScpu` wraps any :class:`~repro.hardware.device.ScpuLike`
(a card or a whole :class:`~repro.hardware.pool.ScpuPool`) and
:class:`FaultyBlockStore` wraps any
:class:`~repro.storage.block_store.BlockStore`; both present the wrapped
object's own interface, so they drop into :class:`StrongWormStore`,
:class:`ScpuPool`, and :class:`ShardedWormStore` unchanged.  Every
service call first consults the device's :class:`~repro.faults.plan.FaultPlan`
and executes whatever fires:

* ``crash-before`` → raise :class:`CrashError` before touching the device;
* ``tamper``       → trip the real enclosure (:meth:`TamperResponder.trip`),
  so the underlying call — and every later one — raises the genuine
  :class:`TamperedError` through the genuine zeroization path;
* ``transient``    → raise :class:`ScpuUnavailableError` /
  :class:`StorageUnavailableError` without touching the device;
* ``latency``      → charge extra virtual seconds onto the device meter,
  then perform the call normally;
* ``crash-after``  → perform the call, then raise :class:`CrashError`
  (the mid-commit crash point: state changed, caller never heard).

Attributes not in the faultable-operation tables (properties, private
state, extension methods like the crypto-shredding epoch calls) forward
untouched, so the wrapper never narrows the device surface.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.errors import (
    CrashError,
    ScpuUnavailableError,
    StorageUnavailableError,
)
from repro.faults.plan import FaultAction, FaultKind, FaultPlan
from repro.storage.block_store import BlockStore

__all__ = ["FaultyScpu", "FaultyBlockStore", "SCPU_FAULTABLE_OPS"]

#: SCPU service operations subject to fault injection: the full
#: :class:`ScpuLike` method surface (the trust-boundary calls a store
#: makes).  Property reads and private helpers are never faulted — a
#: dead card is modelled by the tamper latch, not by flaky attributes.
SCPU_FAULTABLE_OPS = (
    "issue_serial_number",
    "issue_serial_numbers",
    "advance_sn_base",
    "sign_sn_base",
    "sign_sn_current",
    "sign_migration_manifest",
    "public_keys",
    "certify_with",
    "hash_record_data",
    "hash_record_data_batch",
    "verify_deferred_hash",
    "witness_write",
    "witness_write_batch",
    "strengthen",
    "strengthen_batch",
    "verify_own_hmac",
    "verify_envelope",
    "verify_envelope_batch",
    "resign_metadata",
    "make_deletion_proof",
    "compact_deletion_window",
    "verify_regulator_credential",
    "rotate_burst_key",
    "sign_merkle_root",
    "accumulator_bootstrap",
    "accumulator_add",
    "accumulator_remove",
    "accumulator_witness",
    "accumulator_sign_value",
)

#: Block-store operations subject to fault injection.
BLOCK_FAULTABLE_OPS = ("put", "get", "overwrite", "delete")

#: Batched entry points answer to their singular op name too: a fault
#: plan written against ``strengthen`` predates (and must survive) the
#: call site converting to ``strengthen_batch`` — same card operation,
#: one crossing instead of N.
_BATCH_OP_ALIASES = {
    "hash_record_data_batch": "hash_record_data",
    "witness_write_batch": "witness_write",
    "strengthen_batch": "strengthen",
    "verify_envelope_batch": "verify_envelope",
    "issue_serial_numbers": "issue_serial_number",
}


class _FaultingBase:
    """Shared advise-and-execute machinery of the two wrappers."""

    _transient_error: type = ScpuUnavailableError

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._op_index = 0

    def _now(self) -> float:
        return 0.0

    def _charge_latency(self, op: str, seconds: float) -> None:
        pass

    def _trip(self) -> None:
        pass

    def _consult(self, op: str) -> Sequence[FaultAction]:
        """Consult the plan and execute the pre-call actions.

        Returns the actions so the caller can honour ``crash-after``
        once the real operation has completed.
        """
        self._op_index += 1
        actions = self.plan.advise(op, self._now(), self._op_index,
                                   alias=_BATCH_OP_ALIASES.get(op))
        for action in actions:
            if action.kind == FaultKind.CRASH_BEFORE:
                raise CrashError(f"injected crash before {op}")
            if action.kind == FaultKind.TAMPER:
                self._trip()
        for action in actions:
            if action.kind == FaultKind.TRANSIENT:
                raise self._transient_error(
                    f"injected transient fault on {op} "
                    f"(op #{self._op_index})")
            if action.kind == FaultKind.LATENCY:
                self._charge_latency(op, action.seconds)
        return actions

    @staticmethod
    def _post(op: str, actions: Sequence[FaultAction]) -> None:
        for action in actions:
            if action.kind == FaultKind.CRASH_AFTER:
                raise CrashError(f"injected crash after {op}")


class FaultyScpu(_FaultingBase):
    """An :class:`ScpuLike` whose service calls pass through a fault plan.

    A ``tamper`` action trips the *inner* card's real enclosure, so
    zeroization, the dead-card latch, and :class:`TamperedError` all come
    from the genuine tamper machinery — the wrapper only decides *when*
    the attack happens.
    """

    _transient_error = ScpuUnavailableError

    def __init__(self, inner, plan: Optional[FaultPlan] = None) -> None:
        super().__init__(plan)
        self._inner = inner

    @property
    def inner(self):
        """The wrapped device (for assertions; not part of ScpuLike)."""
        return self._inner

    def _now(self) -> float:
        return self._inner.clock.now

    def _charge_latency(self, op: str, seconds: float) -> None:
        self._inner.meter.charge(f"fault-latency:{op}", seconds)

    def _trip(self) -> None:
        self._inner.tamper.trip()

    def __getattr__(self, name: str):
        # Everything outside the faultable table — properties (now,
        # clock, meter, tamper, ...), private state, extension methods —
        # forwards to the wrapped device untouched.
        return getattr(self._inner, name)


def _install_scpu_forwarders() -> None:
    """Real attributes (not ``__getattr__``) for every faultable op, so
    the surface stays introspectable and ``ScpuLike`` isinstance-checks
    see genuine methods."""
    for name in SCPU_FAULTABLE_OPS:
        def forwarder(self, *args, _name=name, **kwargs):
            actions = self._consult(_name)
            result = getattr(self._inner, _name)(*args, **kwargs)
            self._post(_name, actions)
            return result
        forwarder.__name__ = name
        forwarder.__qualname__ = f"FaultyScpu.{name}"
        forwarder.__doc__ = f"Fault-gated forward of {name} to the wrapped SCPU."
        setattr(FaultyScpu, name, forwarder)


_install_scpu_forwarders()


class FaultyBlockStore(_FaultingBase, BlockStore):
    """A :class:`BlockStore` whose I/O calls pass through a fault plan.

    Pass a *clock* (anything with ``.now``) to enable time-triggered
    events; without one, only ``after_ops`` and rate-based faults fire.
    """

    _transient_error = StorageUnavailableError

    def __init__(self, inner: BlockStore, plan: Optional[FaultPlan] = None,
                 clock: Optional[object] = None) -> None:
        super().__init__(plan)
        self._inner = inner
        self._clock = clock

    @property
    def inner(self) -> BlockStore:
        return self._inner

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def _io(self, op: str, *args):
        actions = self._consult(op)
        result = getattr(self._inner, op)(*args)
        self._post(op, actions)
        return result

    def put(self, data: bytes) -> str:
        return self._io("put", data)

    def get(self, key: str) -> bytes:
        return self._io("get", key)

    def overwrite(self, key: str, data: bytes) -> None:
        return self._io("overwrite", key, data)

    def delete(self, key: str) -> None:
        return self._io("delete", key)

    # Metadata inspection is never faulted: a flaky directory listing
    # models nothing in the threat model and would only break tests.
    def __contains__(self, key: str) -> bool:
        return key in self._inner

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def size_of(self, key: str) -> int:
        return self._inner.size_of(key)
