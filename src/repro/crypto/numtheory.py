"""Number-theoretic primitives backing the from-scratch RSA implementation.

The Strong WORM prototype relies on RSA signatures issued by the secure
coprocessor (metasig/datasig in the VRD, deletion proofs, window-bound
signatures).  No third-party crypto library is assumed; everything needed
for RSA key generation and CRT-accelerated signing is implemented here:

* fast modular exponentiation (``pow`` built-in, wrapped for clarity),
* extended Euclid and modular inverses,
* deterministic and probabilistic (Miller-Rabin) primality testing,
* random prime generation with trial division pre-screening.

All functions operate on Python ``int`` values, which are arbitrary
precision, so 512/1024/2048-bit moduli pose no representation issues.
"""

from __future__ import annotations

import secrets
from typing import Tuple

__all__ = [
    "egcd",
    "modinv",
    "is_probable_prime",
    "generate_prime",
    "random_odd_int",
    "SMALL_PRIMES",
]


def _sieve(limit: int) -> Tuple[int, ...]:
    """Return all primes below *limit* via the sieve of Eratosthenes."""
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit ** 0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(range(i * i, limit, i))
    return tuple(i for i, f in enumerate(flags) if f)


#: Small primes used to pre-screen candidates before Miller-Rabin.
SMALL_PRIMES: Tuple[int, ...] = _sieve(2048)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    Iterative to avoid recursion limits on large operands.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Return the multiplicative inverse of *a* modulo *m*.

    Raises :class:`ValueError` when ``gcd(a, m) != 1`` (no inverse exists).
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def _miller_rabin_witness(a: int, d: int, r: int, n: int) -> bool:
    """Return True when *a* witnesses the compositeness of *n*.

    ``n - 1 == d * 2**r`` with *d* odd.
    """
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Composite numbers are rejected with probability at least
    ``1 - 4**-rounds``; 40 rounds drives the error probability far below
    any practical concern.  Small inputs are handled exactly through the
    pre-computed prime table.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Decompose n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        if _miller_rabin_witness(a, d, r, n):
            return False
    return True


def random_odd_int(bits: int) -> int:
    """Return a uniformly random odd integer with exactly *bits* bits.

    The two top bits are forced to 1 so the product of two such primes
    has exactly ``2 * bits`` bits — required so that an "n-bit RSA key"
    really has an n-bit modulus.
    """
    if bits < 3:
        raise ValueError("need at least 3 bits for an odd integer")
    candidate = secrets.randbits(bits)
    candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
    return candidate


def generate_prime(bits: int, rounds: int = 40) -> int:
    """Generate a random prime with exactly *bits* bits.

    Candidates are screened by trial division against :data:`SMALL_PRIMES`
    before the (comparatively expensive) Miller-Rabin rounds, which skips
    roughly 80% of composites almost for free.
    """
    while True:
        candidate = random_odd_int(bits)
        if any(candidate % p == 0 for p in SMALL_PRIMES if p * p <= candidate):
            continue
        if is_probable_prime(candidate, rounds=rounds):
            return candidate
