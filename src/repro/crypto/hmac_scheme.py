"""Keyed-MAC witnessing, the fastest deferred-integrity option (§4.3).

During extreme burst periods the paper proposes replacing even short-lived
RSA signatures with HMACs computed under a key known only to the SCPU.
Clients cannot verify HMACed records (they lack the key) until the SCPU
later upgrades them to real signatures during idle periods — the paper
expects this to be "the prevalent design choice" in production.

The :class:`HmacScheme` exposes the same ``sign``/``verify`` surface as the
RSA keys so the deferred-strengthening machinery can treat both uniformly,
plus an explicit :attr:`client_verifiable` flag that the client logic uses
to decide whether a construct is checkable at read time.
"""

from __future__ import annotations

import hmac
import hashlib
import secrets

__all__ = ["HmacScheme"]


class HmacScheme:
    """HMAC-based witnessing under an SCPU-internal key.

    The key never leaves the SCPU in the real system; in this simulation
    only the SCPU object holds a reference to the scheme, and the
    adversary model is forbidden from touching SCPU internals.
    """

    #: HMAC tags are not verifiable by clients — only by the SCPU itself.
    client_verifiable = False

    def __init__(self, key: bytes | None = None, algorithm: str = "sha256") -> None:
        if key is not None and len(key) < 16:
            raise ValueError("HMAC key must be at least 128 bits")
        self._key = key if key is not None else secrets.token_bytes(32)
        self._algorithm = algorithm

    @property
    def algorithm(self) -> str:
        """Underlying hash algorithm name."""
        return self._algorithm

    @property
    def tag_length(self) -> int:
        """Length in bytes of produced tags."""
        return hashlib.new(self._algorithm).digest_size

    def sign(self, message: bytes) -> bytes:
        """Produce an HMAC tag over *message*."""
        return hmac.new(self._key, message, self._algorithm).digest()

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time verification of *tag* over *message*."""
        expected = self.sign(message)
        return hmac.compare_digest(expected, tag)
