"""Typed, signed envelopes for every SCPU-issued construct.

The paper's protocol signs several *kinds* of statements with the same
SCPU keys: VRD metasig and datasig, window bounds (``S_s(SN_base)``,
``S_s(SN_current)``), deletion-window upper/lower bounds, and deletion
proofs ``S_d(SN)``.  A classic implementation pitfall is signing raw
field bytes, which lets a malicious main CPU *splice* a signature issued
for one purpose into a different protocol slot (e.g., present a signed
``SN_current`` as a deletion proof).  The paper itself calls this out for
window bounds ("the upper and lower deletion window bounds will need to
be correlated ... This correlation prevents the main CPU to combine two
unrelated window bounds").

Every signature in this reproduction is therefore an :class:`Envelope`: a
canonical, unambiguous serialization of ``(purpose, fields, timestamp)``.
Purpose strings are part of the signed bytes, so a signature can never be
replayed across purposes; timestamps enable freshness checks (§4.2.1
mechanism (ii)); window IDs live in the fields and correlate bound pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Union

__all__ = ["Envelope", "SignedEnvelope", "Purpose", "FieldValue"]

FieldValue = Union[int, str, bytes]


class Purpose:
    """Namespace of envelope purpose tags (the protocol's statement kinds)."""

    METASIG = "worm.metasig"              # S_s(SN, attr)
    DATASIG = "worm.datasig"              # S_s(SN, Hash(data))
    SN_BASE = "worm.window.sn_base"       # S_s(SN_base) with expiry
    SN_CURRENT = "worm.window.sn_current"  # S_s(SN_current) with timestamp
    DELETION_PROOF = "worm.deletion"      # S_d(SN)
    WINDOW_LOWER = "worm.delwindow.lower"  # deletion-window lower bound
    WINDOW_UPPER = "worm.delwindow.upper"  # deletion-window upper bound
    LITIGATION_CREDENTIAL = "worm.litigation.credential"  # S_reg(SN, time)
    MIGRATION_MANIFEST = "worm.migration.manifest"  # signed store snapshot
    KEY_CERTIFICATE = "worm.key.certificate"  # CA signature over SCPU pubkey
    ATTESTATION = "worm.attestation"          # signed SCPU state summary
    MERKLE_ROOT = "worm.auth.merkle.root"     # signed tree root (merkle scheme)
    ACCUMULATOR_VALUE = "worm.auth.acc.value"  # signed accumulator statement


def _encode_value(value: FieldValue) -> bytes:
    """Encode one field value with an unambiguous type tag."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("boolean field values are ambiguous; use int 0/1")
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        tag = b"i"
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        tag = b"s"
    elif isinstance(value, bytes):
        raw = value
        tag = b"b"
    else:
        raise TypeError(f"unsupported envelope field type: {type(value)!r}")
    return tag + len(raw).to_bytes(8, "big") + raw


@dataclass(frozen=True)
class Envelope:
    """An unsigned protocol statement: purpose + named fields + timestamp.

    ``timestamp`` is virtual time (seconds) from the SCPU's internal
    tamper-protected clock.  Canonical byte encoding sorts fields by name
    and length-prefixes everything, so there is exactly one byte string
    per logical statement.
    """

    purpose: str
    fields: Mapping[str, FieldValue] = field(default_factory=dict)
    timestamp: float = 0.0

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization — the exact bytes that get signed."""
        parts = [b"SWORM1"]
        purpose_raw = self.purpose.encode("utf-8")
        parts.append(len(purpose_raw).to_bytes(4, "big"))
        parts.append(purpose_raw)
        # Timestamps are signed at microsecond granularity to avoid float
        # representation ambiguity across platforms.
        parts.append(int(round(self.timestamp * 1_000_000)).to_bytes(12, "big", signed=True))
        parts.append(len(self.fields).to_bytes(4, "big"))
        for name in sorted(self.fields):
            name_raw = name.encode("utf-8")
            parts.append(len(name_raw).to_bytes(4, "big"))
            parts.append(name_raw)
            parts.append(_encode_value(self.fields[name]))
        return b"".join(parts)


@dataclass(frozen=True)
class SignedEnvelope:
    """An envelope together with a signature and the signing-key metadata.

    ``key_fingerprint`` identifies which SCPU key signed it (``s`` vs
    ``d`` vs a short-lived burst key); ``key_bits`` records the modulus
    size so clients and the strengthening scheduler can tell short-lived
    (512-bit) constructs from durable ones; ``scheme`` is ``"rsa"`` or
    ``"hmac"`` (HMAC tags are not client-verifiable).
    """

    envelope: Envelope
    signature: bytes
    key_fingerprint: str
    key_bits: int
    scheme: str = "rsa"
    hash_name: str = "sha256"

    @property
    def purpose(self) -> str:
        return self.envelope.purpose

    @property
    def timestamp(self) -> float:
        return self.envelope.timestamp

    def field(self, name: str) -> FieldValue:
        """Convenience accessor for a named envelope field."""
        return self.envelope.fields[name]

    def to_dict(self) -> Dict:
        """JSON-friendly representation (bytes hex-encoded) for storage."""
        encoded_fields = {}
        for name, value in self.envelope.fields.items():
            if isinstance(value, bytes):
                encoded_fields[name] = {"t": "b", "v": value.hex()}
            elif isinstance(value, int):
                encoded_fields[name] = {"t": "i", "v": value}
            else:
                encoded_fields[name] = {"t": "s", "v": value}
        return {
            "purpose": self.envelope.purpose,
            "timestamp": self.envelope.timestamp,
            "fields": encoded_fields,
            "signature": self.signature.hex(),
            "key_fingerprint": self.key_fingerprint,
            "key_bits": self.key_bits,
            "scheme": self.scheme,
            "hash_name": self.hash_name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SignedEnvelope":
        fields: Dict[str, FieldValue] = {}
        for name, enc in data["fields"].items():
            if enc["t"] == "b":
                fields[name] = bytes.fromhex(enc["v"])
            elif enc["t"] == "i":
                fields[name] = int(enc["v"])
            else:
                fields[name] = str(enc["v"])
        return cls(
            envelope=Envelope(
                purpose=data["purpose"],
                fields=fields,
                timestamp=float(data["timestamp"]),
            ),
            signature=bytes.fromhex(data["signature"]),
            key_fingerprint=data["key_fingerprint"],
            key_bits=int(data["key_bits"]),
            scheme=data.get("scheme", "rsa"),
            hash_name=data.get("hash_name", "sha256"),
        )
