"""Dynamic RSA accumulator with trapdoor-assisted O(1) updates.

Implements the authenticated-set substrate for the third pluggable
authentication scheme (Goodrich, Tamassia, Hasic — "An Efficient Dynamic
and Distributed Cryptographic Accumulator", PAPERS.md): the trusted party
(the SCPU) holds the factorisation trapdoor of an RSA modulus and can

* add a member with one small-exponent modular exponentiation,
* remove a member in O(1) by exponentiating with the *inverse* of its
  prime representative modulo phi(n), and
* mint a fresh membership witness for any member in O(1) the same way —

while **untrusted directories** cache witnesses and serve membership
queries without ever seeing the trapdoor.  Directories keep their cached
witnesses current without the trapdoor: additions raise each witness to
the new prime; removals use the Bezout identity
``a*p_x + b*p_y = 1  =>  w_x' = A'^a * w_x^b`` (p_x, p_y distinct primes,
``A'`` the post-removal accumulator value).

Membership verification is public: ``witness^prime == value (mod n)``.

Trust boundary: :class:`TrapdoorAccumulator` must live inside the SCPU
enclosure (``repro/hardware/``) — wormlint rule W001 enforces this.
:func:`hash_to_prime`, :func:`verify_membership`, and
:class:`WitnessDirectory` are trapdoor-free and may run anywhere.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.numtheory import egcd, generate_prime, is_probable_prime, modinv

__all__ = [
    "PRIME_BITS",
    "hash_to_prime",
    "verify_membership",
    "TrapdoorAccumulator",
    "WitnessDirectory",
]

#: Bit width of prime representatives.  128 bits keeps hash-to-prime
#: collisions negligible while leaving exponentiations cheap next to the
#: RSA-modulus arithmetic they feed into.
PRIME_BITS = 128

_DOMAIN = b"sworm.acc.v1"


def hash_to_prime(sn: int, bits: int = PRIME_BITS) -> int:
    """Map a serial number to its deterministic prime representative.

    Counter-mode SHA-256 generates candidates (top and bottom bits forced
    so every candidate is an odd *bits*-bit integer) until one passes
    Miller-Rabin.  The mapping is public: verifiers recompute it from the
    serial number rather than trusting a server-supplied prime, so a
    witness can never be spliced onto a different record.
    """
    if sn < 0:
        raise ValueError("serial numbers are non-negative")
    counter = 0
    while True:
        digest = hashlib.sha256(
            _DOMAIN + sn.to_bytes(8, "big") + counter.to_bytes(4, "big")
        ).digest()
        candidate = int.from_bytes(digest[: bits // 8], "big")
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate
        counter += 1


def verify_membership(witness: int, prime: int, value: int, modulus: int) -> bool:
    """Public membership check: ``witness^prime == value (mod modulus)``.

    Trapdoor-free — this is what clients and untrusted directories run.
    """
    if modulus < 4 or not 0 < witness < modulus or not 0 < value < modulus:
        return False
    if prime < 2:
        return False
    return pow(witness, prime, modulus) == value


class TrapdoorAccumulator:
    """The trusted half of the accumulator: value plus factorisation trapdoor.

    Lives inside the SCPU enclosure; the trapdoor ``phi(n)`` never leaves
    it (W001).  All three mutators are O(1) modular exponentiations —
    this is the property the scheme trades against sealed windows
    (cheapest) and Merkle trees (O(log n) per update).
    """

    def __init__(self, bits: int = 512):
        if bits < 64 or bits % 2:
            raise ValueError("modulus size must be an even number >= 64 bits")
        p = generate_prime(bits // 2)
        q = generate_prime(bits // 2)
        while q == p:  # pragma: no cover - 2^-250 event
            q = generate_prime(bits // 2)
        self.modulus = p * q
        self._phi = (p - 1) * (q - 1)
        # Quadratic residue generator; squaring makes the subgroup choice
        # independent of the (secret) factor structure.
        self.generator = pow(2, 2, self.modulus)
        self.value = self.generator
        self._members: Dict[int, int] = {}  # sn -> prime representative

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def member_count(self) -> int:
        return len(self._members)

    def contains(self, sn: int) -> bool:
        return sn in self._members

    def add(self, sn: int) -> int:
        """Accumulate *sn*; returns its prime representative.  Idempotent."""
        prime = self._members.get(sn)
        if prime is None:
            prime = hash_to_prime(sn)
            self.value = pow(self.value, prime, self.modulus)
            self._members[sn] = prime
        return prime

    def remove(self, sn: int) -> int:
        """Delete *sn* in O(1) via the trapdoor; returns its prime."""
        prime = self._members.pop(sn, None)
        if prime is None:
            raise ValueError(f"sn {sn} is not in the accumulated set")
        self.value = pow(self.value, modinv(prime, self._phi), self.modulus)
        return prime

    def witness(self, sn: int) -> int:
        """Mint a membership witness for *sn* in O(1) via the trapdoor."""
        prime = self._members.get(sn)
        if prime is None:
            raise ValueError(f"sn {sn} is not in the accumulated set")
        return pow(self.value, modinv(prime, self._phi), self.modulus)

    def value_bytes(self) -> bytes:
        """Fixed-width big-endian encoding of the current value."""
        return self.value.to_bytes((self.bits + 7) // 8, "big")

    def modulus_bytes(self) -> bytes:
        return self.modulus.to_bytes((self.bits + 7) // 8, "big")

    def zeroize(self) -> None:
        """Destroy the trapdoor (tamper response)."""
        self._phi = 0
        self._members.clear()
        self.value = 0


@dataclass
class _CachedWitness:
    prime: int
    witness: int
    epoch: int  # index into the directory's update log when last synced


class WitnessDirectory:
    """Untrusted witness cache answering membership queries.

    Models the *directories* of the distributed accumulator: it holds no
    trapdoor, only the public modulus, published accumulator values, and
    cached witnesses.  Updates arrive as an append-only log of
    (add/remove, prime, value-after) events; cached witnesses are caught
    up lazily on lookup — additions via ``w ^ q``, removals via the
    Bezout identity — so a write costs the *trusted* party O(1)
    regardless of how many witnesses the directory serves.

    ``charge`` (optional) is called with ``(op_name, modexp_count)`` for
    every batch of directory-side exponentiations so host device traffic
    stays metered.
    """

    def __init__(self, modulus: int,
                 charge: Optional[Callable[[str, int], None]] = None):
        if modulus < 4:
            raise ValueError("modulus too small")
        self.modulus = modulus
        self._charge = charge or (lambda op, count: None)
        self._log: List[Tuple[str, int, int]] = []  # (op, prime, value_after)
        self._cache: Dict[int, _CachedWitness] = {}
        self.value: Optional[int] = None

    @property
    def epoch(self) -> int:
        return len(self._log)

    @property
    def cached_count(self) -> int:
        return len(self._cache)

    def observe_add(self, prime: int, value_after: int) -> None:
        """Record a published addition (prime joined the set)."""
        self._log.append(("add", prime, value_after))
        self.value = value_after

    def observe_remove(self, prime: int, value_after: int) -> None:
        """Record a published removal; drops the removed member's witness."""
        self._log.append(("remove", prime, value_after))
        self.value = value_after
        for sn, cached in list(self._cache.items()):
            if cached.prime == prime:
                del self._cache[sn]

    def publish(self, sn: int, prime: int, witness: int) -> None:
        """Cache a freshly minted witness at the current epoch."""
        self._cache[sn] = _CachedWitness(prime=prime, witness=witness,
                                         epoch=self.epoch)

    def forget(self, sn: int) -> None:
        self._cache.pop(sn, None)

    def witness_for(self, sn: int) -> Optional[int]:
        """Return an up-to-date witness for *sn*, or None if not cached.

        Replays log events since the witness was last synced.  All work
        here is untrusted host-side arithmetic.
        """
        cached = self._cache.get(sn)
        if cached is None:
            return None
        n = self.modulus
        w = cached.witness
        modexps = 0
        for op, q, value_after in self._log[cached.epoch:]:
            if q == cached.prime:
                # Our own member was re-added (no-op) or removed (witness
                # is dead; observe_remove already evicts, but guard).
                if op == "remove":  # pragma: no cover - evicted eagerly
                    self.forget(sn)
                    return None
                continue
            if op == "add":
                w = pow(w, q, n)
                modexps += 1
            else:
                # Bezout: a*p_x + b*p_y = 1  =>  w' = A'^a * w^b.
                _, a, b = egcd(cached.prime, q)
                w = (pow(value_after, a, n) * pow(w, b, n)) % n
                modexps += 2
        if modexps:
            self._charge("acc_directory_refresh", modexps)
        cached.witness = w
        cached.epoch = self.epoch
        return w

    def state_size_bytes(self) -> int:
        """Directory-resident state: cached witnesses + published value."""
        width = (self.modulus.bit_length() + 7) // 8
        return width * (1 + len(self._cache))
