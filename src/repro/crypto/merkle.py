"""Merkle hash trees — the baseline authentication structure (§2.3).

The paper argues that in compliance stores, where records are constantly
appended, Merkle trees' O(log n) per-update cost makes them a bottleneck,
and replaces them with O(1) window authentication over monotonic serial
numbers.  To reproduce that comparison we need a real, honest Merkle tree:
this module implements a dynamic binary Merkle tree with

* O(log n) append and leaf update (only the root-path recomputed),
* O(log n) membership proofs and verification,
* an explicit count of hash evaluations, so the ablation benchmark can
  report *work per update* for Merkle vs window authentication without
  depending on wall-clock noise.

Domain separation: leaves are hashed as ``H(0x00 || data)`` and interior
nodes as ``H(0x01 || left || right)``, preventing the classic
second-preimage attack that confuses leaves with interior nodes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["MerkleTree", "MerkleProof"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
_EMPTY_ROOT_LABEL = b"\x02empty-merkle-tree"


@dataclass(frozen=True)
class MerkleProof:
    """A membership proof: the leaf index and its sibling path to the root.

    ``path`` lists ``(sibling_digest, sibling_is_right)`` pairs from the
    leaf level upward.
    """

    leaf_index: int
    tree_size: int
    path: Tuple[Tuple[bytes, bool], ...]

    def __len__(self) -> int:
        return len(self.path)


class MerkleTree:
    """Dynamic binary Merkle tree over an append-only list of leaves.

    The tree is stored as a flat list of levels: ``_levels[0]`` holds leaf
    digests, ``_levels[k]`` the digests one level up, and the last level
    has a single root entry.  Odd nodes are promoted (not duplicated),
    which keeps proofs unambiguous for any tree size.
    """

    def __init__(self, leaves: Optional[Sequence[bytes]] = None,
                 algorithm: str = "sha256") -> None:
        self._algorithm = algorithm
        self._levels: List[List[bytes]] = [[]]
        self.hash_evaluations = 0
        if leaves:
            for leaf in leaves:
                self.append(leaf)

    # -- hashing ---------------------------------------------------------

    def _hash(self, data: bytes) -> bytes:
        self.hash_evaluations += 1
        return hashlib.new(self._algorithm, data).digest()

    def _leaf_digest(self, data: bytes) -> bytes:
        return self._hash(_LEAF_PREFIX + data)

    def _node_digest(self, left: bytes, right: bytes) -> bytes:
        return self._hash(_NODE_PREFIX + left + right)

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._levels[0])

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self._levels[0])

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self._levels) - 1

    def root(self) -> bytes:
        """Current root digest (a fixed label for the empty tree)."""
        if not self._levels[0]:
            return hashlib.new(self._algorithm, _EMPTY_ROOT_LABEL).digest()
        return self._levels[-1][0]

    # -- updates ---------------------------------------------------------

    def _recompute_path(self, index: int) -> None:
        """Recompute digests on the root path of leaf *index* — O(log n)."""
        level = 0
        while len(self._levels[level]) > 1:
            parent_index = index // 2
            left_index = parent_index * 2
            right_index = left_index + 1
            nodes = self._levels[level]
            if right_index < len(nodes):
                parent = self._node_digest(nodes[left_index], nodes[right_index])
            else:
                parent = nodes[left_index]  # odd node promoted unchanged
            if level + 1 == len(self._levels):
                self._levels.append([])
            parents = self._levels[level + 1]
            if parent_index < len(parents):
                parents[parent_index] = parent
            else:
                parents.append(parent)
            index = parent_index
            level += 1
        # Drop any now-empty top levels (can happen after structural edge
        # cases; keeps root() simple).
        while len(self._levels) > 1 and len(self._levels[-1]) == len(self._levels[-2]):
            self._levels.pop()

    def append(self, leaf_data: bytes) -> int:
        """Append a leaf; returns its index.  Costs O(log n) hashes."""
        index = len(self._levels[0])
        self._levels[0].append(self._leaf_digest(leaf_data))
        self._recompute_path(index)
        return index

    def update(self, index: int, leaf_data: bytes) -> None:
        """Replace leaf *index* in place.  Costs O(log n) hashes."""
        if not 0 <= index < len(self._levels[0]):
            raise IndexError(f"leaf index {index} out of range")  # wormlint: disable=W005 - sequence-protocol contract
        self._levels[0][index] = self._leaf_digest(leaf_data)
        self._recompute_path(index)

    # -- proofs ----------------------------------------------------------

    def prove(self, index: int) -> MerkleProof:
        """Produce a membership proof for leaf *index*."""
        if not 0 <= index < len(self._levels[0]):
            raise IndexError(f"leaf index {index} out of range")  # wormlint: disable=W005 - sequence-protocol contract
        path: List[Tuple[bytes, bool]] = []
        level = 0
        i = index
        while len(self._levels[level]) > 1:
            nodes = self._levels[level]
            if i % 2 == 0:
                sibling_index = i + 1
                sibling_is_right = True
            else:
                sibling_index = i - 1
                sibling_is_right = False
            if sibling_index < len(nodes):
                path.append((nodes[sibling_index], sibling_is_right))
            # else: odd node promoted — no sibling at this level.
            i //= 2
            level += 1
        return MerkleProof(leaf_index=index, tree_size=self.size, path=tuple(path))

    def verify(self, leaf_data: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Check *proof* ties *leaf_data* to *root*.  Stateless given root."""
        digest = self._leaf_digest(leaf_data)
        for sibling, sibling_is_right in proof.path:
            if sibling_is_right:
                digest = self._node_digest(digest, sibling)
            else:
                digest = self._node_digest(sibling, digest)
        return digest == root

    @staticmethod
    def verify_static(leaf_data: bytes, proof: MerkleProof, root: bytes,
                      algorithm: str = "sha256") -> bool:
        """Verification without a tree instance (what a client would run)."""
        def h(data: bytes) -> bytes:
            return hashlib.new(algorithm, data).digest()

        digest = h(_LEAF_PREFIX + leaf_data)
        for sibling, sibling_is_right in proof.path:
            if sibling_is_right:
                digest = h(_NODE_PREFIX + digest + sibling)
            else:
                digest = h(_NODE_PREFIX + sibling + digest)
        return digest == root
