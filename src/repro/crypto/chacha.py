"""ChaCha20 stream cipher (RFC 7539), from scratch.

Used by the encrypted-records extension (:mod:`repro.core.encryption`):
record payloads are encrypted at rest so that *crypto-shredding* —
destroying the wrapping key inside the SCPU — renders deleted records
unrecoverable from the medium even if physical overwrite passes were
skipped or the medium was copied beforehand.  §3's related work cites
encrypted file systems; this extension grafts the idea onto the WORM
model with SCPU-held epoch keys.

Pure Python and therefore slow in wall-clock terms; simulation costs are
charged via the device calibration like every other primitive (stream
ciphers run at roughly SHA-like rates on both the card and the host).
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "chacha20_xor", "ChaCha20"]

_CONSTANTS = (0x61707865, 0x3320646e, 0x79622d32, 0x6b206574)
_MASK = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    value &= _MASK
    return ((value << count) | (value >> (32 - count))) & _MASK


def _quarter_round(state, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte keystream block (RFC 7539 §2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 keys are 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonces are 12 bytes")
    if not 0 <= counter < 2**32:
        raise ValueError("block counter out of range")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8L", key))
    state.append(counter)
    state += list(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):  # 20 rounds = 10 double rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(w + s) & _MASK for w, s in zip(working, state)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes,
                 initial_counter: int = 1) -> bytes:
    """Encrypt/decrypt *data* (XOR with the keystream; self-inverse)."""
    out = bytearray(len(data))
    for block_index in range((len(data) + 63) // 64):
        keystream = chacha20_block(key, initial_counter + block_index, nonce)
        offset = block_index * 64
        chunk = data[offset:offset + 64]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)


class ChaCha20:
    """Object-style wrapper bound to one key."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise ValueError("ChaCha20 keys are 32 bytes")
        self._key = key

    def encrypt(self, nonce: bytes, plaintext: bytes) -> bytes:
        return chacha20_xor(self._key, nonce, plaintext)

    def decrypt(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return chacha20_xor(self._key, nonce, ciphertext)
