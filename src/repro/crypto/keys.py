"""Key management: signing keys with lifetimes, and the regulatory CA.

The paper's SCPU "securely maintains two private signature keys, s and d"
whose "public key certificates — signed by a regulatory or general purpose
certificate authority — are made available to clients by the main CPU".
§4.3 adds short-lived burst keys (e.g., 512-bit) whose signatures are only
trusted within a *security lifetime* (the paper assumes 512-bit RSA resists
factoring for 60–180 minutes against the insider).

This module provides:

* :class:`SigningKey` — an RSA key pair annotated with its security
  lifetime, used by the SCPU to issue :class:`~repro.crypto.envelope.SignedEnvelope`s;
* :class:`CertificateAuthority` — the regulatory CA that certifies SCPU
  public keys so clients can bootstrap trust;
* :class:`Certificate` — a CA-signed binding of (key fingerprint, role,
  public key);
* :data:`SECURITY_LIFETIME_SECONDS` — per-modulus-size lifetimes from §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.envelope import Envelope, Purpose, SignedEnvelope
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair

__all__ = [
    "SigningKey",
    "Certificate",
    "CertificateAuthority",
    "SECURITY_LIFETIME_SECONDS",
    "security_lifetime",
]

#: Security lifetime (seconds) per RSA modulus size, following §4.3's
#: conservative assumption: 512-bit composites resist the insider for only
#: tens of minutes (we use the lower bound, 60 minutes); 1024-bit and up
#: are treated as durable for the purposes of the protocol (decades).
SECURITY_LIFETIME_SECONDS: Dict[int, float] = {
    512: 60 * 60.0,           # 60 minutes — short-lived burst signatures
    768: 30 * 24 * 3600.0,    # ~a month; intermediate option
    1024: 20 * 365 * 24 * 3600.0,   # durable (≥ retention horizons)
    2048: 100 * 365 * 24 * 3600.0,  # durable
}


def security_lifetime(bits: int) -> float:
    """Return the assumed security lifetime in seconds for a modulus size.

    Sizes between table entries inherit the lifetime of the next *smaller*
    entry (conservative).  Sizes below 512 get a 10-minute lifetime —
    they only appear in tests.
    """
    known = sorted(SECURITY_LIFETIME_SECONDS)
    chosen: Optional[int] = None
    for size in known:
        if bits >= size:
            chosen = size
    if chosen is None:
        return 10 * 60.0
    return SECURITY_LIFETIME_SECONDS[chosen]


@dataclass(frozen=True)
class SigningKey:
    """An RSA key pair with protocol role and security-lifetime metadata.

    ``role`` is a human-readable tag (``"s"``, ``"d"``, ``"burst"``,
    ``"regulator"``, ``"ca"``) used in certificates; the *cryptographic*
    separation between purposes is enforced by envelope purpose strings,
    not by role alone.
    """

    keypair: RsaKeyPair
    role: str

    @property
    def bits(self) -> int:
        return self.keypair.bits

    @property
    def public(self) -> RsaPublicKey:
        return self.keypair.public

    @property
    def fingerprint(self) -> str:
        return self.keypair.public.fingerprint()

    @property
    def lifetime_seconds(self) -> float:
        """Security lifetime of signatures under this key (§4.3)."""
        return security_lifetime(self.bits)

    @property
    def is_short_lived(self) -> bool:
        """True when signatures need later strengthening (burst keys)."""
        return self.lifetime_seconds < 365 * 24 * 3600.0

    @property
    def hash_name(self) -> str:
        """Digest used under this key.

        SHA-256 whenever the modulus fits its PKCS#1 encoding (≥512 bits);
        tiny test keys fall back to SHA-1.  The choice is bound inside the
        signature (PKCS#1 DigestInfo), so it cannot be downgraded by an
        adversary relabeling the envelope.
        """
        return "sha256" if self.bits >= 512 else "sha1"

    def sign_envelope(self, envelope: Envelope) -> SignedEnvelope:
        """Sign a protocol envelope, producing a client-checkable construct."""
        signature = self.keypair.private.sign(envelope.canonical_bytes(),
                                              hash_name=self.hash_name)
        return SignedEnvelope(
            envelope=envelope,
            signature=signature,
            key_fingerprint=self.fingerprint,
            key_bits=self.bits,
            scheme="rsa",
            hash_name=self.hash_name,
        )

    @classmethod
    def generate(cls, bits: int, role: str) -> "SigningKey":
        """Generate a fresh signing key for *role* with an n-bit modulus."""
        return cls(keypair=generate_keypair(bits), role=role)


@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of an SCPU (or regulator) public key to a role.

    Clients verify the CA signature once, then trust envelopes signed by
    the certified key for the certified role.
    """

    public_key: RsaPublicKey
    role: str
    issued_at: float
    signed: SignedEnvelope

    @property
    def fingerprint(self) -> str:
        return self.public_key.fingerprint()


class CertificateAuthority:
    """The regulatory / general-purpose CA of §4.2.1.

    Holds a root key; issues certificates over SCPU public keys.  In the
    threat model the CA is trusted (it stands in for the regulatory
    authority); the insider cannot forge CA signatures.
    """

    def __init__(self, bits: int = 1024, root_key: Optional[SigningKey] = None) -> None:
        self._root = root_key if root_key is not None else SigningKey.generate(bits, role="ca")

    @property
    def root_public_key(self) -> RsaPublicKey:
        """The CA public key clients embed as their trust anchor."""
        return self._root.public

    def certify(self, public_key: RsaPublicKey, role: str, now: float) -> Certificate:
        """Issue a certificate binding *public_key* to *role* at time *now*."""
        envelope = Envelope(
            purpose=Purpose.KEY_CERTIFICATE,
            fields={
                "subject_n": f"{public_key.n:x}",
                "subject_e": public_key.e,
                "subject_bits": public_key.bits,
                "role": role,
            },
            timestamp=now,
        )
        return Certificate(
            public_key=public_key,
            role=role,
            issued_at=now,
            signed=self._root.sign_envelope(envelope),
        )

    @staticmethod
    def verify_certificate(cert: Certificate, ca_public_key: RsaPublicKey) -> bool:
        """Client-side check that *cert* was issued by the trusted CA.

        Verifies both the CA signature and that the certificate envelope
        actually binds the public key the certificate claims to carry.
        """
        env = cert.signed.envelope
        if env.purpose != Purpose.KEY_CERTIFICATE:
            return False
        if env.fields.get("subject_n") != f"{cert.public_key.n:x}":
            return False
        if env.fields.get("subject_e") != cert.public_key.e:
            return False
        if env.fields.get("subject_bits") != cert.public_key.bits:
            return False
        if env.fields.get("role") != cert.role:
            return False
        return ca_public_key.verify(env.canonical_bytes(), cert.signed.signature,
                                    hash_name=cert.signed.hash_name)
