"""From-scratch RSA signatures (PKCS#1 v1.5-style) for the WORM layer.

The SCPU in the paper maintains two private signature keys:

* ``s`` — used for VRD ``metasig``/``datasig`` and window-bound signatures,
* ``d`` — used for deletion proofs ``S_d(SN)``.

Clients hold the matching public keys (via regulatory-CA certificates) and
verify every proof the untrusted main CPU presents.  This module provides
the underlying primitive: deterministic, hash-then-pad RSA signing with
CRT acceleration, plus key (de)serialization so keys survive migration.

Security notes
--------------
This is a *reproduction-grade* implementation: the math is real (forging a
signature genuinely requires breaking RSA for the chosen modulus size) but
it has had no side-channel hardening.  The paper deliberately uses 512-bit
keys as *short-term* signatures (breakable in tens of minutes by a
determined adversary, per its §4.3) and ≥1024-bit keys for durable
signatures; both are supported, and the key object records its intended
security lifetime so the deferred-strengthening machinery can reason about
expiry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errors import SignatureError
from repro.crypto.numtheory import generate_prime, modinv

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaKeyPair",
    "generate_keypair",
    "kem_encapsulate",
    "kem_decapsulate",
    "SignatureError",
]

#: Public exponent used for every generated key (standard choice).
PUBLIC_EXPONENT = 65537

# DigestInfo prefixes (DER) for PKCS#1 v1.5 hash identification.
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _pkcs1_pad(digest: bytes, hash_name: str, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a message digest.

    Layout: ``0x00 0x01 FF..FF 0x00 DigestInfo || digest``.
    """
    try:
        prefix = _DIGEST_INFO_PREFIX[hash_name]
    except KeyError:
        raise SignatureError(f"unsupported hash for PKCS#1 padding: {hash_name}")
    t = prefix + digest
    if em_len < len(t) + 11:
        raise SignatureError(
            f"modulus too small ({em_len} bytes) for {hash_name} signature"
        )
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def _hash(message: bytes, hash_name: str) -> bytes:
    return hashlib.new(hash_name, message).digest()


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)`` with the declared modulus size in bits."""

    n: int
    e: int
    bits: int

    @property
    def byte_length(self) -> int:
        """Length in bytes of the modulus (and of every signature)."""
        return (self.bits + 7) // 8

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """Return True iff *signature* is a valid signature on *message*.

        Verification never raises for malformed signatures — an invalid or
        garbage signature simply returns False, which is what the WORM
        client code wants when deciding whether a proof holds.
        """
        if len(signature) != self.byte_length:
            return False
        s = _bytes_to_int(signature)
        if s >= self.n:
            return False
        em = _int_to_bytes(pow(s, self.e, self.n), self.byte_length)
        try:
            expected = _pkcs1_pad(_hash(message, hash_name), hash_name, self.byte_length)
        except SignatureError:
            return False
        return em == expected

    def fingerprint(self) -> str:
        """Short stable identifier for this key (hex SHA-256 prefix)."""
        blob = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {"n": f"{self.n:x}", "e": self.e, "bits": self.bits}

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPublicKey":
        return cls(n=int(data["n"], 16), e=int(data["e"]), bits=int(data["bits"]))


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT components for ~4x faster signing."""

    n: int
    e: int
    d: int
    p: int
    q: int
    bits: int

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e, bits=self.bits)

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """Produce a deterministic PKCS#1 v1.5 signature on *message*."""
        em = _pkcs1_pad(_hash(message, hash_name), hash_name, self.byte_length)
        m = _bytes_to_int(em)
        # CRT: compute m^d mod p and mod q, then recombine.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = modinv(self.q, self.p)
        sp = pow(m, dp, self.p)
        sq = pow(m, dq, self.q)
        h = (qinv * (sp - sq)) % self.p
        s = sq + h * self.q
        # Defend against CRT fault injection: verify before releasing.
        if pow(s, self.e, self.n) != m:
            raise SignatureError("CRT self-check failed (fault detected)")
        return _int_to_bytes(s, self.byte_length)

    def to_dict(self) -> dict:
        return {
            "n": f"{self.n:x}",
            "e": self.e,
            "d": f"{self.d:x}",
            "p": f"{self.p:x}",
            "q": f"{self.q:x}",
            "bits": self.bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPrivateKey":
        return cls(
            n=int(data["n"], 16),
            e=int(data["e"]),
            d=int(data["d"], 16),
            p=int(data["p"], 16),
            q=int(data["q"], 16),
            bits=int(data["bits"]),
        )


def kem_encapsulate(public: RsaPublicKey) -> Tuple[bytes, bytes]:
    """RSA-KEM (ISO 18033-2 style): derive a shared secret for *public*.

    Picks a uniform ``r < n``, sends ``c = r^e mod n``, and both sides
    derive ``key = SHA-256(r)``.  Unlike padding-based RSA encryption,
    RSA-KEM has no structured plaintext to oracle-attack — the right
    primitive for the enclave-to-enclave key transport used by encrypted
    migration.  Returns ``(ciphertext, shared_secret)``.
    """
    import secrets as _secrets
    n_len = public.byte_length
    while True:
        r = _secrets.randbelow(public.n)
        if r > 1:
            break
    c = pow(r, public.e, public.n)
    secret = hashlib.sha256(_int_to_bytes(r, n_len)).digest()
    return _int_to_bytes(c, n_len), secret


def kem_decapsulate(private: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Recover the RSA-KEM shared secret with the private key."""
    if len(ciphertext) != private.byte_length:
        raise SignatureError("KEM ciphertext length mismatch")
    c = _bytes_to_int(ciphertext)
    if c >= private.n:
        raise SignatureError("KEM ciphertext out of range")
    r = pow(c, private.d, private.n)
    return hashlib.sha256(_int_to_bytes(r, private.byte_length)).digest()


@dataclass(frozen=True)
class RsaKeyPair:
    """Convenience bundle of a private key and its public half."""

    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key

    @property
    def bits(self) -> int:
        return self.private.bits


def generate_keypair(bits: int, e: int = PUBLIC_EXPONENT,
                     _max_attempts: int = 64) -> RsaKeyPair:
    """Generate an RSA key pair with a modulus of exactly *bits* bits.

    *bits* must be even and at least 256 (a 256-bit modulus is far too
    small for real security but keeps unit tests fast; production callers
    use 512 for short-lived and 1024/2048 for durable signatures, matching
    the paper's §4.3 parameters).
    """
    if bits % 2 != 0:
        raise ValueError("modulus size must be even")
    if bits < 384:
        # 384 bits is the smallest modulus that fits a SHA-1 PKCS#1 v1.5
        # encoding; anything smaller cannot sign at all.
        raise ValueError("refusing to generate keys below 384 bits")
    half = bits // 2
    for _ in range(_max_attempts):
        p = generate_prime(half)
        q = generate_prime(half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue  # e not coprime with phi; rare, retry
        private = RsaPrivateKey(n=n, e=e, d=d, p=p, q=q, bits=bits)
        return RsaKeyPair(private=private)
    raise SignatureError("failed to generate RSA key pair")
