"""Hashing utilities used throughout the WORM layer.

The paper's VRD ``datasig`` is an SCPU signature over ``(SN, Hash(data))``
where ``Hash`` may be a *chained hash* over the virtual record's physical
data records, or an *incremental* secure hash (Bellare-Micciancio [4],
Clarke et al. [6]) so records can be appended to a VR without rehashing
everything.  Both are provided here, plus plain digests with selectable
algorithms (the evaluation uses SHA-1 to match Table 2's device numbers;
SHA-256 is the default elsewhere).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

__all__ = [
    "digest",
    "hexdigest",
    "chained_hash",
    "ChainedHasher",
    "IncrementalMultisetHash",
    "DEFAULT_HASH",
]

#: Default hash algorithm for integrity constructs.
DEFAULT_HASH = "sha256"


def digest(data: bytes, algorithm: str = DEFAULT_HASH) -> bytes:
    """One-shot digest of *data* with the given algorithm."""
    return hashlib.new(algorithm, data).digest()


def hexdigest(data: bytes, algorithm: str = DEFAULT_HASH) -> str:
    """One-shot hex digest of *data* with the given algorithm."""
    return hashlib.new(algorithm, data).hexdigest()


def chained_hash(chunks: Iterable[bytes], algorithm: str = DEFAULT_HASH) -> bytes:
    """Hash a sequence of data records as a chain.

    ``h_0 = H(len-prefix(c_0))``; ``h_i = H(h_{i-1} || len-prefix(c_i))``.
    Length prefixes prevent boundary-shifting collisions: the chunk split
    is part of what is authenticated, so re-partitioning the same bytes
    yields a different digest.
    """
    state = b""
    empty = True
    for chunk in chunks:
        empty = False
        prefixed = len(chunk).to_bytes(8, "big") + chunk
        state = hashlib.new(algorithm, state + prefixed).digest()
    if empty:
        # Distinguish "no records" from any real chain value.
        return hashlib.new(algorithm, b"\x00empty-chain").digest()
    return state


class ChainedHasher:
    """Streaming form of :func:`chained_hash`.

    Used by the SCPU when data records are DMA-transferred in chunks; the
    running state is small enough to live in scarce SCPU memory.
    """

    def __init__(self, algorithm: str = DEFAULT_HASH) -> None:
        self._algorithm = algorithm
        self._state = b""
        self._count = 0

    @property
    def count(self) -> int:
        """Number of chunks absorbed so far."""
        return self._count

    def update(self, chunk: bytes) -> None:
        """Absorb one data-record chunk into the chain."""
        prefixed = len(chunk).to_bytes(8, "big") + chunk
        self._state = hashlib.new(self._algorithm, self._state + prefixed).digest()
        self._count += 1

    def digest(self) -> bytes:
        """Return the chain digest over everything absorbed so far."""
        if self._count == 0:
            return hashlib.new(self._algorithm, b"\x00empty-chain").digest()
        return self._state


class IncrementalMultisetHash:
    """Incremental (multiset) hash in the style of [4, 6].

    Each element contributes ``H(len || element)`` interpreted as an
    integer; contributions are combined by modular addition, so elements
    can be added (and removed, for VR maintenance) in any order in O(1)
    per element.  Collision resistance reduces to that of the underlying
    hash plus the hardness of finding additive relations in a ~2^256
    group — the construction from Bellare-Micciancio's AdHash with a
    large prime modulus.
    """

    #: 2^259 + 153 — a prime comfortably above 2^256 so single-element
    #: contributions never wrap.
    MODULUS = (1 << 259) + 153

    def __init__(self, algorithm: str = DEFAULT_HASH) -> None:
        self._algorithm = algorithm
        self._acc = 0
        self._count = 0

    @property
    def count(self) -> int:
        """Net number of elements currently in the multiset."""
        return self._count

    def _contribution(self, element: bytes) -> int:
        prefixed = len(element).to_bytes(8, "big") + element
        raw = hashlib.new(self._algorithm, prefixed).digest()
        return int.from_bytes(raw, "big")

    def add(self, element: bytes) -> None:
        """Add *element* to the multiset."""
        self._acc = (self._acc + self._contribution(element)) % self.MODULUS
        self._count += 1

    def remove(self, element: bytes) -> None:
        """Remove one occurrence of *element* from the multiset.

        The caller is responsible for only removing elements actually
        present; the hash itself cannot detect over-removal (it is a
        group operation), which matches the construction in [6].
        """
        self._acc = (self._acc - self._contribution(element)) % self.MODULUS
        self._count -= 1

    def digest(self) -> bytes:
        """Return the current multiset digest (fixed 33 bytes)."""
        return self._acc.to_bytes(33, "big")

    def copy(self) -> "IncrementalMultisetHash":
        """Return an independent copy with the same state."""
        clone = IncrementalMultisetHash(self._algorithm)
        clone._acc = self._acc
        clone._count = self._count
        return clone

    @classmethod
    def of(cls, elements: Sequence[bytes],
           algorithm: str = DEFAULT_HASH) -> "IncrementalMultisetHash":
        """Build a multiset hash over *elements* in one call."""
        h = cls(algorithm)
        for element in elements:
            h.add(element)
        return h
