"""Cryptographic substrate for the Strong WORM reproduction.

Everything the WORM protocol signs or hashes flows through this package:

* :mod:`repro.crypto.numtheory` — primality / modular arithmetic,
* :mod:`repro.crypto.rsa` — from-scratch RSA (PKCS#1 v1.5-style),
* :mod:`repro.crypto.hashing` — chained and incremental hashing for VR data,
* :mod:`repro.crypto.hmac_scheme` — HMAC witnessing for extreme bursts,
* :mod:`repro.crypto.envelope` — typed signed statements (splice-proof),
* :mod:`repro.crypto.keys` — signing keys, lifetimes, the regulatory CA,
* :mod:`repro.crypto.merkle` — the Merkle-tree baseline the paper replaces,
* :mod:`repro.crypto.accumulator` — dynamic RSA accumulator (the third
  pluggable authentication backend).  Only the trapdoor-free pieces are
  re-exported here: :class:`TrapdoorAccumulator` stays confined to the
  SCPU enclosure (wormlint W001) and must be imported from its home
  module by hardware code.
"""

from repro.crypto.accumulator import (
    PRIME_BITS,
    WitnessDirectory,
    hash_to_prime,
    verify_membership,
)
from repro.crypto.chacha import ChaCha20, chacha20_block, chacha20_xor
from repro.crypto.envelope import Envelope, Purpose, SignedEnvelope
from repro.crypto.hashing import (
    ChainedHasher,
    IncrementalMultisetHash,
    chained_hash,
    digest,
    hexdigest,
)
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import (
    Certificate,
    CertificateAuthority,
    SigningKey,
    security_lifetime,
)
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    SignatureError,
    generate_keypair,
)

__all__ = [
    "PRIME_BITS",
    "WitnessDirectory",
    "hash_to_prime",
    "verify_membership",
    "ChaCha20",
    "chacha20_block",
    "chacha20_xor",
    "Envelope",
    "Purpose",
    "SignedEnvelope",
    "ChainedHasher",
    "IncrementalMultisetHash",
    "chained_hash",
    "digest",
    "hexdigest",
    "HmacScheme",
    "Certificate",
    "CertificateAuthority",
    "SigningKey",
    "security_lifetime",
    "MerkleProof",
    "MerkleTree",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SignatureError",
    "generate_keypair",
]
