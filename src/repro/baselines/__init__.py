"""Comparison baselines: Merkle-authenticated, soft-WORM, and all-in-SCPU."""

from repro.baselines.merkle_worm import MerkleReadResult, MerkleWormStore
from repro.baselines.scpu_only import ScpuOnlyStore
from repro.baselines.soft_worm import SoftReadResult, SoftWormStore

__all__ = [
    "MerkleReadResult",
    "MerkleWormStore",
    "ScpuOnlyStore",
    "SoftReadResult",
    "SoftWormStore",
]
