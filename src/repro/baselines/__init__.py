"""Comparison baselines: soft-WORM and all-in-SCPU.

The Merkle-authenticated baseline that used to live here
(``merkle_worm``) was promoted to the first-class
``StoreConfig(auth_scheme="merkle")`` backend in :mod:`repro.core.auth`
and has been retired; ``tests/baselines/test_merkle_worm.py`` pins its
behaviours against the real store.
"""

from repro.baselines.scpu_only import ScpuOnlyStore
from repro.baselines.soft_worm import SoftReadResult, SoftWormStore

__all__ = [
    "ScpuOnlyStore",
    "SoftReadResult",
    "SoftWormStore",
]
