"""Soft-WORM baseline: software-enforced write-once (EMC Centera-style).

§3: "all recently-introduced WORM storage devices are built atop
conventional rewritable magnetic disks, with write-once semantics enforced
through software ('soft-WORM') ... its software-only nature renders it
vulnerable to simple insider software and/or physical direct disk-access
attacks.  Data integrity can be easily compromised."

:class:`SoftWormStore` faithfully implements what such products do:

* the *API* refuses overwrites and pre-retention deletes,
* integrity checksums are stored next to the data — on the same
  untrusted medium, at locations "logically un-addressable from
  user-land" (modelled as a separate dict the normal API never exposes),

and faithfully inherits their weakness: an insider with physical access
(:meth:`insider_rewrite`) rewrites both the record *and* its checksum, so
subsequent reads verify "clean".  The adversary benchmark shows the
Strong WORM detecting every attack this baseline misses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.errors import (
    MissingRecordError,
    RetentionViolationError,
    WormError,
)

__all__ = ["SoftWormStore", "SoftReadResult"]


@dataclass(frozen=True)
class SoftReadResult:
    """A soft-WORM read: the data and whether the checksum matched."""

    record_id: int
    data: bytes
    checksum_ok: bool


class SoftWormStore:
    """Software-only WORM enforcement over rewritable storage."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._data: Dict[int, bytes] = {}
        self._retention_until: Dict[int, float] = {}
        # "Hidden" checksum area — still on the same rewritable medium.
        self._checksums: Dict[int, bytes] = {}
        self._next_id = 0

    @property
    def now(self) -> float:
        return self._clock.now

    # -- the honest API (what legitimate software can do) ---------------------

    def write(self, data: bytes, retention_seconds: float) -> int:
        """Store a record; software remembers it is immutable until expiry."""
        self._next_id += 1
        record_id = self._next_id
        self._data[record_id] = bytes(data)
        self._retention_until[record_id] = self.now + retention_seconds
        self._checksums[record_id] = hashlib.sha256(data).digest()
        return record_id

    def overwrite(self, record_id: int, data: bytes) -> None:
        """The API-level guard: refuses all overwrites (write-once)."""
        raise WormError("soft-WORM: records are write-once via this API")

    def delete(self, record_id: int) -> None:
        """API-level delete: allowed only after the retention period."""
        if record_id not in self._data:
            raise MissingRecordError(record_id)
        if self.now < self._retention_until[record_id]:
            raise RetentionViolationError(
                "soft-WORM: record is inside its retention period")
        del self._data[record_id]
        del self._checksums[record_id]
        del self._retention_until[record_id]

    def read(self, record_id: int) -> SoftReadResult:
        """Read with the product's built-in checksum verification."""
        if record_id not in self._data:
            raise MissingRecordError(record_id)
        data = self._data[record_id]
        checksum_ok = (hashlib.sha256(data).digest()
                       == self._checksums.get(record_id))
        return SoftReadResult(record_id=record_id, data=data,
                              checksum_ok=checksum_ok)

    # -- the insider's reality (physical access to the medium) ------------------

    def insider_rewrite(self, record_id: int, new_data: bytes,
                        fix_checksum: bool = True) -> None:
        """Alter a record the way §3 describes: direct media access.

        With superuser powers and the drive enclosure open, both the data
        area and the "hidden" checksum area are just sectors; fixing the
        checksum (the default — any competent insider would) makes the
        alteration invisible to every check the product can run.
        """
        if record_id not in self._data:
            raise MissingRecordError(record_id)
        self._data[record_id] = bytes(new_data)
        if fix_checksum:
            self._checksums[record_id] = hashlib.sha256(new_data).digest()

    def insider_purge(self, record_id: int) -> None:
        """Destroy a record and all its traces before retention expiry."""
        self._data.pop(record_id, None)
        self._checksums.pop(record_id, None)
        self._retention_until.pop(record_id, None)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._data
