"""All-in-SCPU baseline: the "straight-forward implementation" of §1.

"Straight-forward implementations of the full processing logic *inside*
SCPUs are bound to fail in practice simply due to lack of performance.
The server's main CPUs will remain starkly under-utilized and the entire
cost-proposition ... will be defeated."

In this design every request — reads included — is mediated by the SCPU:
data is DMA-transferred into the enclosure, hashed, signature-checked or
signed there, and served back out.  It is maximally simple and maximally
trustworthy, and its throughput collapses because the one-order-of-
magnitude-slower card sits on every code path.  The scaling benchmark
plots it as the lower bound that motivates the paper's sparse-access
design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.errors import MissingRecordError
from repro.crypto.envelope import SignedEnvelope
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.storage.block_store import BlockStore, MemoryBlockStore
from repro.storage.record import RecordAttributes

__all__ = ["ScpuOnlyStore"]


@dataclass(frozen=True)
class _Entry:
    key: str
    attr: RecordAttributes
    metasig: SignedEnvelope
    datasig: SignedEnvelope
    data_hash: bytes
    length: int


class ScpuOnlyStore:
    """Everything through the card: writes AND reads."""

    def __init__(self, scpu: SecureCoprocessor,
                 block_store: Optional[BlockStore] = None) -> None:
        self.scpu = scpu
        self.blocks = block_store if block_store is not None else MemoryBlockStore()
        self._entries: Dict[int, _Entry] = {}

    def write(self, data: bytes, retention_seconds: float) -> int:
        """Same witnessing as Strong WORM — all mandatory, never deferred."""
        key = self.blocks.put(data)
        data_hash = self.scpu.hash_record_data([data])
        sn = self.scpu.issue_serial_number()
        attr = RecordAttributes(created_at=self.scpu.now,
                                retention_seconds=retention_seconds)
        metasig, datasig = self.scpu.witness_write(
            sn, attr.canonical_bytes(), data_hash, strength=Strength.STRONG)
        self._entries[sn] = _Entry(key=key, attr=attr, metasig=metasig,
                                   datasig=datasig, data_hash=data_hash,
                                   length=len(data))
        return sn

    def read(self, sn: int) -> bytes:
        """A read that round-trips the enclosure.

        The SCPU DMAs the record in, re-hashes it, verifies its own
        datasig, and (in the real design) re-encrypts/serves it out over
        the bus — so every read pays DMA both ways plus card-speed
        hashing plus a signature verification.
        """
        entry = self._entries.get(sn)
        if entry is None:
            raise MissingRecordError(f"SN {sn} not present")
        data = self.blocks.get(entry.key)
        recomputed = self.scpu.hash_record_data([data])  # DMA in + SHA
        if recomputed != entry.data_hash:
            raise ValueError(f"SN {sn}: data hash mismatch detected in-enclosure")
        publics = self.scpu.public_keys()
        if not self.scpu.verify_envelope(entry.datasig, publics["s"]):
            raise ValueError(f"SN {sn}: datasig verification failed")
        # Serve back out across the bus.
        self.scpu.meter.charge("dma", self.scpu.profile.dma_seconds(len(data)))
        return data

    @property
    def size(self) -> int:
        return len(self._entries)
