"""Merkle-authenticated WORM baseline — what §2.3 argues against.

"As suggested in the data outsourcing literature ... Merkle trees are a
useful tool in guaranteeing data integrity.  However, in a compliance
storage environment, where new records are constantly being added to the
store, Merkle tree updates (O(log n) costs) can be a performance
bottleneck."

This baseline authenticates the record set with a Merkle tree whose root
the SCPU re-signs on every update:

* **write**: append a leaf ``H(SN || attr || H(data))``.  The tree lives
  on *untrusted* storage (SCPU secure memory is far too small to hold
  millions of nodes — §1's heat-dissipation constraint), so before
  extending it the SCPU must fetch the append position's root path from
  the host and **verify it against the last signed root** — O(log n)
  node hashes in the enclosure per update — then recompute the path and
  sign the new root.  This is the O(log n) per-update cost §2.3 cites;
* **read**: the host serves the record plus a Merkle membership proof
  against the latest signed root; clients verify O(log n) hashes and one
  signature.

Functionally it offers the same integrity assurance as the window scheme
(and *more* generality — arbitrary labels); the ablation benchmark shows
the price: per-update SCPU hashing grows with store size while the window
scheme stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.errors import MissingRecordError
from repro.crypto.envelope import Envelope, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.hardware.scpu import SecureCoprocessor
from repro.storage.block_store import BlockStore, MemoryBlockStore
from repro.storage.record import RecordAttributes

__all__ = ["MerkleWormStore", "MerkleReadResult"]

#: Purpose tag for signed Merkle roots (this baseline's own statement kind).
MERKLE_ROOT_PURPOSE = "baseline.merkle.root"

#: Digest size the SCPU hashes per interior node (two children + prefix).
_NODE_BYTES = 65


@dataclass(frozen=True)
class MerkleReadResult:
    """A read response: record data + membership proof + signed root."""

    sn: int
    data: bytes
    attr: RecordAttributes
    proof: MerkleProof
    signed_root: SignedEnvelope
    leaf: bytes


class MerkleWormStore:
    """The O(log n)-per-update alternative, with honest cost accounting."""

    def __init__(self, scpu: SecureCoprocessor,
                 block_store: Optional[BlockStore] = None) -> None:
        self.scpu = scpu
        self.blocks = block_store if block_store is not None else MemoryBlockStore()
        self.tree = MerkleTree()
        self._records: Dict[int, Tuple[str, RecordAttributes, bytes]] = {}
        self.signed_root: Optional[SignedEnvelope] = None
        self.update_hash_evaluations = 0

    def _leaf_bytes(self, sn: int, attr: RecordAttributes, data_hash: bytes) -> bytes:
        return sn.to_bytes(8, "big") + attr.canonical_bytes() + data_hash

    def _sign_root(self) -> SignedEnvelope:
        keys = self.scpu._keys_or_die()  # wormlint: disable=W001 - baseline models in-enclosure signing directly
        envelope = Envelope(
            purpose=MERKLE_ROOT_PURPOSE,
            fields={"root": self.tree.root(), "size": self.tree.size},
            timestamp=self.scpu.now,
        )
        self.scpu.meter.charge(
            f"rsa_sign_{keys.s_key.bits}",
            self.scpu.profile.rsa_sign_seconds(keys.s_key.bits))
        return keys.s_key.sign_envelope(envelope)

    def write(self, data: bytes, retention_seconds: float) -> int:
        """Append a record; SCPU pays O(log n) verify+rehash + one signature."""
        key = self.blocks.put(data)
        data_hash = self.scpu.hash_record_data([data])
        sn = self.scpu.issue_serial_number()
        attr = RecordAttributes(created_at=self.scpu.now,
                                retention_seconds=retention_seconds)
        leaf = self._leaf_bytes(sn, attr, data_hash)
        # Stateless-SCPU path verification: the enclosure holds only the
        # signed root, so the host must supply the append path and the
        # SCPU re-hashes every node on it (plus the DMA to move them in)
        # before trusting the tree it is about to extend.
        path_nodes = max(1, self.tree.height)
        self.update_hash_evaluations += path_nodes
        self.scpu.meter.charge(
            "merkle_path_verify_sha",
            path_nodes * self.scpu.profile.sha_seconds(_NODE_BYTES, 1024))
        self.scpu.meter.charge(
            "merkle_path_dma",
            self.scpu.profile.dma_seconds(path_nodes * _NODE_BYTES))
        before = self.tree.hash_evaluations
        self.tree.append(leaf)
        new_hashes = self.tree.hash_evaluations - before
        self.update_hash_evaluations += new_hashes
        self.scpu.meter.charge(
            "merkle_path_sha",
            new_hashes * self.scpu.profile.sha_seconds(_NODE_BYTES, 1024))
        self.signed_root = self._sign_root()
        self._records[sn] = (key, attr, data_hash)
        return sn

    def read(self, sn: int) -> MerkleReadResult:
        """Serve a record with its membership proof (host-side work only)."""
        if sn not in self._records:
            raise MissingRecordError(f"SN {sn} not present")
        key, attr, data_hash = self._records[sn]
        assert self.signed_root is not None
        leaf = self._leaf_bytes(sn, attr, data_hash)
        index = sn - 1  # SNs are issued consecutively from 1
        return MerkleReadResult(
            sn=sn,
            data=self.blocks.get(key),
            attr=attr,
            proof=self.tree.prove(index),
            signed_root=self.signed_root,
            leaf=leaf,
        )

    def verify_read(self, result: MerkleReadResult, s_public_key) -> bool:
        """Client-side check: root signature + membership path + data hash."""
        env = result.signed_root
        if env.envelope.purpose != MERKLE_ROOT_PURPOSE:
            return False
        if not s_public_key.verify(env.envelope.canonical_bytes(), env.signature,
                                   hash_name=env.hash_name):
            return False
        root = env.field("root")
        if not MerkleTree.verify_static(result.leaf, result.proof, root):
            return False
        # The leaf binds (SN, attr, H(data)); recompute H(data) from the
        # served payload the same way the SCPU did at write time.
        hasher = ChainedHasher()
        hasher.update(result.data)
        recomputed = self._leaf_bytes(result.sn, result.attr, hasher.digest())
        return recomputed == result.leaf

    @property
    def size(self) -> int:
        return len(self._records)
