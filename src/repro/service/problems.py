"""WormError taxonomy → RFC 9457 problem payloads, plus service codes.

Two things live here:

* The **service-level errors** — admission, routing, and contract
  violations that arise in the service layer itself rather than the
  store (rate limits, quotas, unknown tenants/operations/tickets).
  They are rooted at :class:`~repro.core.errors.WormError` so the whole
  program keeps a single exception taxonomy, and they carry stable
  ``code`` slugs exactly like the core classes.
* The **problem mapping** — :func:`problem_from_error` turns any
  :class:`WormError` into a :class:`~repro.service.contract.Problem`
  with an HTTP-shaped status from :data:`STATUS_BY_CODE`.  The mapping
  keys on ``exc.code``, never the Python class, so refactors of the
  exception hierarchy cannot change what clients see.

One deliberate hole: :class:`~repro.core.errors.TamperedError` has a
status here (500) for documentation completeness, but the service never
converts a tamper trip into a problem payload — tampering outranks
serving traffic and always escalates (wormlint W004).  The same goes
for the fault-harness-only :class:`~repro.core.errors.CrashError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.errors import WormError
from repro.service.contract import Problem

__all__ = [
    "PROBLEM_TYPE_PREFIX",
    "STATUS_BY_CODE",
    "RateLimitedError",
    "BacklogFullError",
    "SiteRecoveringError",
    "UnknownTenantError",
    "TenantIsolationError",
    "PolicyForbiddenError",
    "QuotaExceededError",
    "UnknownOperationError",
    "UnsupportedVersionError",
    "UnknownTicketError",
    "BadRequestError",
    "status_for",
    "problem_from_error",
    "all_error_classes",
    "all_error_codes",
]

#: URI prefix of every problem ``type``; the suffix is the stable code.
PROBLEM_TYPE_PREFIX = "urn:problem-type:strong-worm:"


# ---------------------------------------------------------------------------
# Service-level errors (admission / routing / contract)
# ---------------------------------------------------------------------------

class RateLimitedError(WormError):
    """The tenant's token bucket is empty and the operation cannot defer."""

    code = "rate-limited"

    def __init__(self, detail: str, retry_after: float = 1.0) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class BacklogFullError(WormError):
    """The tenant's deferred-write backlog is at its configured cap.

    Raised instead of silently queueing without bound: the write was
    *not* admitted and the client must retry after ``Retry-After``.
    """

    code = "backlog-full"

    def __init__(self, detail: str, retry_after: float = 1.0) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class SiteRecoveringError(WormError):
    """The site is rebuilding from its replica; writes resume after RESUME.

    Raised while the backing store is in the ``recovering`` site state
    (a :class:`repro.recovery.SiteRecovery` pass owns it): mutating
    operations are refused with 503 + ``Retry-After`` so clients back
    off instead of racing the journal drain, while reads keep serving —
    recovered records are verifiable as soon as VERIFY has passed.
    """

    code = "site-recovering"

    def __init__(self, detail: str, retry_after: float = 30.0) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class UnknownTenantError(WormError):
    """The request names a tenant the service has not provisioned."""

    code = "unknown-tenant"


class TenantIsolationError(WormError):
    """A locator outside the tenant's namespace.

    Deliberately mapped to 404, not 403: whether the locator exists in
    *another* tenant's space is itself confidential.
    """

    code = "tenant-isolation"


class PolicyForbiddenError(WormError):
    """The tenant is not provisioned for the requested retention policy."""

    code = "policy-forbidden"


class QuotaExceededError(WormError):
    """The write would exceed the tenant's durable-record quota."""

    code = "quota-exceeded"


class UnknownOperationError(WormError):
    """The operation name is not in the contract's OPERATIONS set."""

    code = "unknown-operation"


class UnsupportedVersionError(WormError):
    """The request's protocol version is not served by this process."""

    code = "unsupported-version"


class UnknownTicketError(WormError):
    """A redemption ticket the service did not issue (or already lost
    to a restart — tickets are in-memory correlation handles)."""

    code = "unknown-ticket"


class BadRequestError(WormError):
    """Malformed parameters: missing fields, wrong types, bad shapes."""

    code = "bad-request"


# ---------------------------------------------------------------------------
# Status mapping
# ---------------------------------------------------------------------------

#: HTTP-shaped status for every stable code.  Codes not listed map to
#: 500 — an internal invariant failed and the client cannot fix it.
STATUS_BY_CODE: Dict[str, int] = {
    # Client-side contract violations
    "bad-request": 400,
    "shard-routing": 400,
    "unknown-operation": 400,
    "unsupported-version": 400,
    # Authorization / compliance refusals
    "retention-violation": 403,
    "bad-credential": 403,
    "policy-forbidden": 403,
    "quota-exceeded": 403,
    "unknown-tenant": 403,
    # Absent (or deliberately unacknowledged) resources
    "unknown-serial-number": 404,
    "missing-record": 404,
    "unknown-ticket": 404,
    "tenant-isolation": 404,
    # State conflicts
    "litigation-hold": 409,
    # Semantically invalid parameters
    "unknown-policy": 422,
    "unknown-algorithm": 422,
    # Overload (retryable by the client)
    "rate-limited": 429,
    "backlog-full": 429,
    # Transient infrastructure trouble (retryable)
    "transient-fault": 503,
    "scpu-unavailable": 503,
    "storage-unavailable": 503,
    "degraded": 503,
    # Disaster recovery in progress (retryable, carries Retry-After)
    "site-recovering": 503,
    "replication-failed": 503,
}

#: Status for any code absent from :data:`STATUS_BY_CODE` — including
#: ``tampered``, ``verification-failed``, ``journal-error``: server-side
#: integrity trouble a client retry cannot fix.
DEFAULT_STATUS = 500


def status_for(code: str) -> int:
    return STATUS_BY_CODE.get(code, DEFAULT_STATUS)


def _title_for(exc_type: Type[BaseException]) -> str:
    doc = (exc_type.__doc__ or "").strip()
    first = doc.splitlines()[0].strip() if doc else ""
    return first or exc_type.__name__


def problem_from_error(exc: WormError,
                       instance: Optional[str] = None) -> Problem:
    """Map a taxonomy error to its RFC 9457 problem payload."""
    code = getattr(exc, "code", WormError.code)
    return Problem(
        type=PROBLEM_TYPE_PREFIX + code,
        title=_title_for(type(exc)),
        status=status_for(code),
        detail=str(exc),
        code=code,
        instance=instance,
    )


# ---------------------------------------------------------------------------
# Taxonomy introspection (tests, docs, serve --codes)
# ---------------------------------------------------------------------------

def all_error_classes() -> List[Type[WormError]]:
    """Every class in the WormError taxonomy, base included."""
    seen: List[Type[WormError]] = []
    stack: List[Type[WormError]] = [WormError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return seen


def all_error_codes() -> Dict[str, Type[WormError]]:
    """Stable code → class for the full taxonomy.

    Raises :class:`ValueError` on a duplicate code — two classes
    sharing a slug would be indistinguishable on the wire, and the
    contract tests assert this never regresses.
    """
    codes: Dict[str, Type[WormError]] = {}
    for cls in all_error_classes():
        code = cls.__dict__.get("code")
        if code is None:
            continue  # inherits its parent's identity on the wire
        if code in codes:
            raise ValueError(
                f"duplicate error code {code!r}: "
                f"{codes[code].__name__} and {cls.__name__}")
        codes[code] = cls
    return codes
