"""Tenant provisioning and per-tenant runtime state.

A tenant is a regulated customer of the shared store: it gets its own
token bucket (admission), its own deferred-write backlog cap, its own
durable-record quota, a restriction to the retention policies it is
provisioned for, and — crucially for compliance — an **isolated locator
space**: locators the service hands out are scoped ``<tenant>/<packed>``
and a tenant can never address (or even probe the existence of) another
tenant's records.

The split between the two classes mirrors the rest of the codebase:
:class:`TenantConfig` is a frozen declaration (like ``StoreConfig``),
:class:`TenantState` is the mutable runtime bookkeeping the service
keeps per tenant (bucket level, owned locators, outstanding tickets,
reconciliation counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.service.ratelimit import TokenBucket

__all__ = ["TenantConfig", "TenantState", "DeferredTicket"]


@dataclass(frozen=True)
class TenantConfig:
    """Frozen provisioning record of one tenant.

    ``rate``/``burst`` parameterize the admission token bucket;
    ``max_deferred`` caps how many admitted-but-not-yet-durable writes
    may be outstanding before the service answers 429 ``backlog-full``;
    ``quota_records`` (None = unlimited) caps durable + in-flight
    records; ``allowed_policies`` (None = any registered policy)
    whitelists the retention policies this tenant may write under.
    """

    name: str
    rate: float = 100.0
    burst: int = 200
    max_deferred: int = 256
    quota_records: Optional[int] = None
    allowed_policies: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(
                "tenant names are non-empty and must not contain '/' "
                "(it separates the tenant prefix in scoped locators)")
        if self.rate <= 0:
            raise ValueError("tenant rate must be positive")
        if self.burst < 1:
            raise ValueError("tenant burst must be at least 1")
        if self.max_deferred < 0:
            raise ValueError("max_deferred cannot be negative")
        if self.quota_records is not None and self.quota_records < 0:
            raise ValueError("quota_records cannot be negative")
        if self.allowed_policies is not None:
            object.__setattr__(self, "allowed_policies",
                               frozenset(self.allowed_policies))


@dataclass
class DeferredTicket:
    """One admitted-but-deferred write, redeemable once group-committed."""

    ticket: str
    submitted_at: float
    packed_locator: Optional[str] = None

    @property
    def durable(self) -> bool:
        return self.packed_locator is not None


@dataclass
class TenantState:
    """Mutable runtime state the service keeps for one tenant."""

    config: TenantConfig
    bucket: TokenBucket = field(init=False)
    #: Packed locators of this tenant's durable records (its namespace).
    owned: Set[str] = field(default_factory=set)
    #: Outstanding and redeemed deferral tickets, by ticket id.
    tickets: Dict[str, DeferredTicket] = field(default_factory=dict)
    #: Reconciliation counters (mirrored into the telemetry bus).
    requests: int = 0
    accepted: int = 0
    deferred: int = 0
    redeemed: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        self.bucket = TokenBucket(self.config.rate, self.config.burst)

    @property
    def pending_deferred(self) -> int:
        """Admitted writes not yet durable (backlog the cap applies to)."""
        return sum(1 for t in self.tickets.values() if not t.durable)

    @property
    def durable_records(self) -> int:
        return len(self.owned)

    def quota_headroom(self, n: int) -> bool:
        """Would *n* more records fit under the durable+in-flight quota?"""
        if self.config.quota_records is None:
            return True
        committed = len(self.owned) + self.pending_deferred
        return committed + n <= self.config.quota_records
