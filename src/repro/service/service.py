"""The multi-tenant compliance service front-end.

:class:`WormService` wraps one :class:`~repro.core.sharded.ShardedWormStore`
behind the versioned contract of :mod:`repro.service.contract`.  It is
transport-agnostic: ``handle(request) -> response`` is the whole surface,
and the JSON-lines ``serve`` CLI, the tenant benchmark, and the contract
tests all drive the same method.

Admission control (per tenant, DESIGN §10):

1. **accept** — the tenant's token bucket has capacity: the write
   commits immediately (``store.write``), answer 201 with the durable
   scoped locator.
2. **defer** — the bucket is empty but the tenant's deferred backlog
   has room: the write is admitted into the store's group-commit
   machinery (``store.submit`` with a correlation tag), answer 202
   with a redemption ticket.  Nothing is dropped: the record is
   journalled (when a journal is attached) and becomes durable at the
   next group commit or :meth:`WormService.flush`.
3. **reject** — the backlog is at its cap: answer 429 ``backlog-full``
   with ``Retry-After``.  This is the only refusal of a well-formed
   write, and it happens *before* the store sees the record.

Reads and management operations cost one bucket token and answer 429
``rate-limited`` when the bucket is empty (they have no deferred path);
``health`` is exempt so monitoring keeps working during overload.

Tamper trips always escalate: the service never converts
:class:`~repro.core.errors.TamperedError` into a problem payload.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.audit import StoreAuditor
from repro.core.errors import (
    CrashError,
    MissingRecordError,
    ShardRoutingError,
    TamperedError,
    WormError,
)
from repro.core.locator import RecordLocator
from repro.core.sharded import ShardedWormStore, ShardedWriteReceipt
from repro.service.contract import (
    OPERATIONS,
    PROTOCOL_VERSION,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.problems import (
    BacklogFullError,
    BadRequestError,
    PolicyForbiddenError,
    QuotaExceededError,
    RateLimitedError,
    SiteRecoveringError,
    TenantIsolationError,
    UnknownOperationError,
    UnknownTenantError,
    UnknownTicketError,
    UnsupportedVersionError,
    problem_from_error,
)
from repro.service.ratelimit import TokenBucket, ratelimit_headers
from repro.service.tenants import DeferredTicket, TenantConfig, TenantState

__all__ = ["WormService"]

#: Per-tenant counter suffixes mirrored onto the telemetry bus as
#: ``service.tenant.<name>.<suffix>`` (declared, so renames fail the
#: schema gate in CI).
TENANT_COUNTERS = ("requests", "accepted", "deferred", "redeemed", "rejected")

_SERVICE_COUNTERS = ("service.requests", "service.accepted",
                     "service.deferred", "service.redeemed",
                     "service.rejected", "service.reads")

#: Write parameters a request may set; everything else in params is the
#: operation's own business (payloads, locators, tickets, credentials).
_WRITE_KWARG_KEYS = ("policy", "retention_seconds", "strength")


class WormService:
    """Versioned, rate-limited, multi-tenant facade over a sharded store.

    *ca* (or a prebuilt *client*) enables the verifying operations
    (``read_verified``, ``audit``); without one those answer 400.
    Virtual time comes from the store's SCPU clock — the service never
    reads a wall clock (wormlint W002).
    """

    #: Retry-After (virtual seconds) answered while the site recovers.
    RECOVERY_RETRY_AFTER = 30.0

    def __init__(self, store: ShardedWormStore,
                 tenants: Iterable[Union[TenantConfig, str]] = (),
                 ca=None, client=None) -> None:
        self._store = store
        self.obs = store.obs
        # old packed locator -> new packed locator, grown by promote():
        # locators handed out before a disaster keep resolving after it.
        self._locator_aliases: Dict[str, str] = {}
        self._client = (client if client is not None
                        else store.make_client(ca) if ca is not None
                        else None)
        self._tenants: Dict[str, TenantState] = {}
        self._ticket_seq = 0
        # Traffic that fails tenant resolution still gets honest
        # RateLimit headers, drawn from one small shared bucket.
        self._anon_bucket = TokenBucket(rate=1.0, burst=8)
        if self.obs.enabled:
            for name in _SERVICE_COUNTERS:
                self.obs.declare_counter(name)
            self.obs.declare_histogram("service.defer_wait_seconds")
        self._handlers = {
            "write": self._op_write,
            "write_batch": self._op_write_batch,
            "read": self._op_read,
            "read_verified": self._op_read_verified,
            "expire": self._op_expire,
            "hold": self._op_hold,
            "audit": self._op_audit,
            "health": self._op_health,
            "redeem": self._op_redeem,
        }
        assert set(self._handlers) == set(OPERATIONS)
        for tenant in tenants:
            self.add_tenant(tenant)

    # ------------------------------------------------------------ provisioning

    @property
    def now(self) -> float:
        """Virtual time (the store's SCPU clock)."""
        return self._store.now

    @property
    def store(self) -> ShardedWormStore:
        return self._store

    @property
    def tenants(self) -> Mapping[str, TenantState]:
        return dict(self._tenants)

    def add_tenant(self, config: Union[TenantConfig, str]) -> TenantState:
        """Provision a tenant (by config, or by name with defaults)."""
        if isinstance(config, str):
            config = TenantConfig(name=config)
        if config.name in self._tenants:
            raise ValueError(f"tenant {config.name!r} already provisioned")
        state = TenantState(config=config)
        self._tenants[config.name] = state
        if self.obs.enabled:
            for suffix in TENANT_COUNTERS:
                self.obs.declare_counter(
                    f"service.tenant.{config.name}.{suffix}")
        return state

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            raise UnknownTenantError(f"tenant {name!r} is not provisioned")
        return state

    # ---------------------------------------------------------------- request

    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one request; every outcome is a :class:`ServiceResponse`.

        Only :class:`TamperedError` (compliance escalation, W004) and
        the fault harness's :class:`CrashError` propagate; every other
        failure becomes an RFC 9457 problem with a stable code.
        """
        self.obs.inc("service.requests")
        now = self.now
        state: Optional[TenantState] = None
        try:
            if request.version != PROTOCOL_VERSION:
                raise UnsupportedVersionError(
                    f"protocol version {request.version} is not served "
                    f"(this process speaks version {PROTOCOL_VERSION})")
            if request.operation not in OPERATIONS:
                raise UnknownOperationError(
                    f"unknown operation {request.operation!r}")
            state = self._tenants.get(request.tenant)
            if state is None:
                raise UnknownTenantError(
                    f"tenant {request.tenant!r} is not provisioned")
            state.requests += 1
            self._tenant_inc(state, "requests")
            status, body = self._handlers[request.operation](
                state, dict(request.params), now)
        except TamperedError:
            raise  # tamper outranks serving traffic: escalate, never a payload
        except CrashError:
            raise  # fault harness only; the "process" died mid-request
        except WormError as exc:
            return self._problem_response(exc, state, request, now)
        except (ValueError, TypeError) as exc:
            return self._problem_response(
                BadRequestError(str(exc)), state, request, now)
        return ServiceResponse(status=status,
                               headers=self._headers(state, now),
                               body=body,
                               request_id=request.request_id)

    def _problem_response(self, exc: WormError,
                          state: Optional[TenantState],
                          request: ServiceRequest,
                          now: float) -> ServiceResponse:
        problem = problem_from_error(exc, instance=request.request_id)
        retry_after = None
        if problem.status == 429:
            retry_after = float(getattr(exc, "retry_after", 1.0))
        elif problem.status == 503:
            # Recovery / replication refusals carry their own horizon;
            # plain infrastructure 503s leave the client to its backoff.
            hint = getattr(exc, "retry_after", None)
            if hint is not None:
                retry_after = float(hint)
        self.obs.inc("service.rejected")
        if state is not None:
            state.rejected += 1
            self._tenant_inc(state, "rejected")
        return ServiceResponse(status=problem.status,
                               headers=self._headers(state, now, retry_after),
                               problem=problem,
                               request_id=request.request_id)

    def _headers(self, state: Optional[TenantState], now: float,
                 retry_after: Optional[float] = None) -> Dict[str, str]:
        bucket = state.bucket if state is not None else self._anon_bucket
        return ratelimit_headers(bucket, now, retry_after)

    def _tenant_inc(self, state: TenantState, suffix: str,
                    n: float = 1.0) -> None:
        self.obs.inc(f"service.tenant.{state.config.name}.{suffix}", n)

    # ------------------------------------------------------- locator scoping

    def _scope(self, state: TenantState, packed: str) -> str:
        return f"{state.config.name}/{packed}"

    def _unscope(self, state: TenantState, value: object) -> RecordLocator:
        """Parse a scoped locator and enforce the tenant boundary."""
        if isinstance(value, RecordLocator):  # in-process courtesy
            value = self._scope(state, value.pack())
        if not isinstance(value, str):
            raise BadRequestError(
                "a locator is a string '<tenant>/<shard:sn[:index]>'")
        prefix, sep, packed = value.partition("/")
        if not sep:
            raise BadRequestError(
                f"locator {value!r} lacks its '<tenant>/' namespace prefix")
        if prefix != state.config.name:
            raise TenantIsolationError(
                f"locator {value!r} is outside tenant "
                f"{state.config.name!r}'s namespace")
        resolved = RecordLocator.unpack(packed)
        canonical = resolved.pack()
        if canonical not in state.owned:
            # A locator issued before a disaster: promote() recorded the
            # old -> new mapping, so pre-recovery handles keep resolving.
            alias = self._locator_aliases.get(canonical)
            if alias is not None and alias in state.owned:
                resolved = RecordLocator.unpack(alias)
                canonical = alias
        if canonical not in state.owned:
            # 404-shaped on purpose: existence in someone else's
            # namespace is itself confidential.
            raise TenantIsolationError(
                f"no record {value!r} in tenant "
                f"{state.config.name!r}'s namespace")
        return resolved

    # --------------------------------------------------------------- admission

    def _require_active_site(self) -> None:
        """Refuse mutations while a recovery pass owns the store.

        Reads are deliberately exempt: the recovering site serves
        verifiable reads as soon as VERIFY has passed, which is the
        whole point of staged recovery.
        """
        if getattr(self._store, "recovering", False):
            raise SiteRecoveringError(
                "this site is being rebuilt from its replica; writes "
                "resume once the replicated journal has drained",
                retry_after=self.RECOVERY_RETRY_AFTER)

    def _take_token(self, state: TenantState, now: float) -> None:
        if not state.bucket.try_acquire(now):
            raise RateLimitedError(
                f"tenant {state.config.name!r} is over its rate limit",
                retry_after=state.bucket.retry_after(now))

    def _write_kwargs(self, params: Mapping[str, object]) -> Dict[str, object]:
        kwargs = {key: params[key] for key in _WRITE_KWARG_KEYS
                  if params.get(key) is not None}
        policy = kwargs.setdefault("policy", "default")
        if not isinstance(policy, str):
            raise BadRequestError("'policy' must be a policy name string")
        return kwargs

    def _check_policy(self, state: TenantState, policy: str) -> None:
        allowed = state.config.allowed_policies
        if allowed is not None and policy not in allowed:
            raise PolicyForbiddenError(
                f"tenant {state.config.name!r} is not provisioned for "
                f"policy {policy!r} (allowed: {sorted(allowed)})")

    def _admit_writes(self, state: TenantState, n: int, now: float) -> str:
        """accept | defer, or raise the 429 ``backlog-full`` refusal."""
        if not state.quota_headroom(n):
            raise QuotaExceededError(
                f"tenant {state.config.name!r} would exceed its quota of "
                f"{state.config.quota_records} records")
        if state.bucket.try_acquire(now, n):
            return "accept"
        if state.pending_deferred + n <= state.config.max_deferred:
            return "defer"
        raise BacklogFullError(
            f"tenant {state.config.name!r} has "
            f"{state.pending_deferred} deferred writes outstanding "
            f"(cap {state.config.max_deferred})",
            retry_after=state.bucket.retry_after(now, n))

    def _defer(self, state: TenantState, payload: bytes,
               kwargs: Dict[str, object], now: float) -> str:
        self._ticket_seq += 1
        ticket = f"{state.config.name}-t{self._ticket_seq}"
        state.tickets[ticket] = DeferredTicket(ticket=ticket, submitted_at=now)
        state.deferred += 1
        self.obs.inc("service.deferred")
        self._tenant_inc(state, "deferred")
        self._store.submit(payload, tag=(state.config.name, ticket), **kwargs)
        self._pump()  # the submit may have auto-flushed a full group
        return ticket

    # -------------------------------------------------------------- operations

    @staticmethod
    def _require_payload(value: object) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise BadRequestError("record payloads are bytes")
        return bytes(value)

    def _op_write(self, state: TenantState, params: Dict[str, object],
                  now: float) -> Tuple[int, Dict[str, object]]:
        self._require_active_site()
        payload = self._require_payload(params.get("payload"))
        kwargs = self._write_kwargs(params)
        self._check_policy(state, kwargs["policy"])
        if self._admit_writes(state, 1, now) == "accept":
            receipt = self._store.write([payload], **kwargs)
            packed = receipt.locator.pack()
            state.owned.add(packed)
            state.accepted += 1
            self.obs.inc("service.accepted")
            self._tenant_inc(state, "accepted")
            return 201, {"locator": self._scope(state, packed),
                         "sn": receipt.locator.sn,
                         "shard": receipt.locator.shard_id}
        ticket = self._defer(state, payload, kwargs, now)
        return 202, {"ticket": ticket, "state": "pending"}

    def _op_write_batch(self, state: TenantState, params: Dict[str, object],
                        now: float) -> Tuple[int, Dict[str, object]]:
        self._require_active_site()
        payloads = params.get("payloads")
        if not isinstance(payloads, (list, tuple)) or not payloads:
            raise BadRequestError(
                "write_batch needs a non-empty 'payloads' list")
        payloads = [self._require_payload(p) for p in payloads]
        kwargs = self._write_kwargs(params)
        self._check_policy(state, kwargs["policy"])
        if self._admit_writes(state, len(payloads), now) == "accept":
            receipts = self._store.write_batch(payloads, **kwargs)
            locators = []
            for receipt in receipts:
                packed = receipt.locator.pack()
                state.owned.add(packed)
                locators.append(self._scope(state, packed))
            state.accepted += len(receipts)
            self.obs.inc("service.accepted", len(receipts))
            self._tenant_inc(state, "accepted", len(receipts))
            return 201, {"locators": locators}
        tickets = [self._defer(state, payload, kwargs, now)
                   for payload in payloads]
        return 202, {"tickets": tickets, "state": "pending"}

    def _op_read(self, state: TenantState, params: Dict[str, object],
                 now: float) -> Tuple[int, Dict[str, object]]:
        self._take_token(state, now)
        resolved = self._unscope(state, params.get("locator"))
        self.obs.inc("service.reads")
        result = self._store.read(resolved)
        if result.status != "active":
            raise MissingRecordError(
                f"record {self._scope(state, resolved.pack())} "
                f"is {result.status}")
        if resolved.record_index >= len(result.records):
            raise ShardRoutingError(
                f"locator {resolved.pack()} indexes past the VR's "
                f"{len(result.records)} records")
        return 200, {"payload": result.records[resolved.record_index],
                     "status": result.status}

    def _require_client(self):
        if self._client is None:
            raise BadRequestError(
                "this service has no verifying client; construct "
                "WormService(..., ca=...) to enable read_verified/audit")
        return self._client

    def _op_read_verified(self, state: TenantState,
                          params: Dict[str, object],
                          now: float) -> Tuple[int, Dict[str, object]]:
        client = self._require_client()
        self._take_token(state, now)
        resolved = self._unscope(state, params.get("locator"))
        self.obs.inc("service.reads")
        result = self._store.read(resolved)
        verified = client.verify_read(result, resolved.sn)
        if verified.status != "active":
            raise MissingRecordError(
                f"record {self._scope(state, resolved.pack())} "
                f"is {verified.status}")
        if resolved.record_index >= len(result.records):
            raise ShardRoutingError(
                f"locator {resolved.pack()} indexes past the VR's "
                f"{len(result.records)} records")
        return 200, {"payload": result.records[resolved.record_index],
                     "status": verified.status,
                     "proof_kind": verified.proof_kind,
                     "weakly_signed": verified.weakly_signed}

    def _op_expire(self, state: TenantState, params: Dict[str, object],
                   now: float) -> Tuple[int, Dict[str, object]]:
        self._require_active_site()
        self._take_token(state, now)
        resolved = self._unscope(state, params.get("locator"))
        outcome = self._store.expire_record(resolved, now=now)
        return 200, {"outcome": outcome}

    def _op_hold(self, state: TenantState, params: Dict[str, object],
                 now: float) -> Tuple[int, Dict[str, object]]:
        self._require_active_site()
        self._take_token(state, now)
        resolved = self._unscope(state, params.get("locator"))
        credential = params.get("credential")
        if credential is None:
            raise BadRequestError(
                "hold needs the regulator's signed 'credential'")
        shard = self._store.shard(resolved.shard_id)
        if params.get("release"):
            shard.lit_release(resolved.sn, credential)
            return 200, {"released": True}
        hold_until = params.get("hold_until")
        if not isinstance(hold_until, (int, float)):
            raise BadRequestError("hold needs a numeric 'hold_until'")
        shard.lit_hold(resolved.sn, credential, float(hold_until))
        return 200, {"held": True, "hold_until": float(hold_until)}

    def _op_audit(self, state: TenantState, params: Dict[str, object],
                  now: float) -> Tuple[int, Dict[str, object]]:
        client = self._require_client()
        self._take_token(state, now)
        shards = []
        clean = True
        for shard_id, shard in enumerate(self._store):
            report = StoreAuditor(shard, client).sweep()
            clean = clean and report.clean
            shards.append({"shard_id": shard_id, **report.summary()})
        return 200, {"clean": clean,
                     "auth_scheme": self._store.config.auth_scheme,
                     "shards": shards}

    def _op_health(self, state: TenantState, params: Dict[str, object],
                   now: float) -> Tuple[int, Dict[str, object]]:
        # Deliberately free of rate limiting: monitoring must keep
        # working during exactly the overload it is watching.
        return 200, {"protocol_version": PROTOCOL_VERSION,
                     "tenants": self.stats(),
                     "store": self._store.health_report()}

    def _op_redeem(self, state: TenantState, params: Dict[str, object],
                   now: float) -> Tuple[int, Dict[str, object]]:
        self._take_token(state, now)
        ticket = params.get("ticket")
        if not isinstance(ticket, str):
            raise BadRequestError("redeem needs a string 'ticket'")
        self._pump()
        entry = state.tickets.get(ticket)
        if entry is None:
            raise UnknownTicketError(
                f"ticket {ticket!r} was not issued to tenant "
                f"{state.config.name!r} (tickets do not survive restarts)")
        if entry.durable:
            return 200, {"ticket": ticket, "state": "durable",
                         "locator": self._scope(state, entry.packed_locator)}
        return 202, {"ticket": ticket, "state": "pending"}

    # ----------------------------------------------------- deferred machinery

    def flush(self) -> List[ShardedWriteReceipt]:
        """Force-commit every pending group, then resolve tickets."""
        receipts = self._store.flush()
        self._pump()
        return receipts

    def _pump(self) -> None:
        """File freshly-committed tagged receipts into tenant state."""
        for tag, receipt in self._store.take_tagged_receipts().items():
            self._file_tagged(tag, receipt)

    def _file_tagged(self, tag: object,
                     receipt: ShardedWriteReceipt) -> None:
        """Resolve one committed ``(tenant, ticket)`` tag to its locator.

        Tags outside the service's shape (e.g. the recovery pass's own
        ``__recovery__`` handles, or tenants never provisioned here)
        are ignored — their receipts still exist in the store.
        """
        if not (isinstance(tag, tuple) and len(tag) == 2):
            return
        tenant, ticket = tag
        state = self._tenants.get(tenant)
        if state is None:
            return
        packed = receipt.locator.pack()
        state.owned.add(packed)
        entry = state.tickets.get(ticket)
        if entry is None or entry.durable:
            return
        entry.packed_locator = packed
        state.redeemed += 1
        self.obs.inc("service.redeemed")
        self._tenant_inc(state, "redeemed")
        self.obs.observe("service.defer_wait_seconds",
                         max(0.0, self.now - entry.submitted_at))

    # ------------------------------------------------------ disaster failback

    def promote(self, new_store: ShardedWormStore, report) -> None:
        """Fail the service over to a freshly recovered store.

        *report* is the :class:`repro.recovery.RecoveryReport` of the
        completed recovery pass.  Tenant state survives the disaster:
        owned locators and redeemed tickets are remapped through the
        report's old→new locator mapping (old handles keep resolving
        via aliases), and journal entries that re-committed under
        their original ``(tenant, ticket)`` tags resolve their still
        pending tickets — a deferred write acknowledged by the dead
        site redeems on the new one.
        """
        mapping: Dict[str, str] = dict(report.locator_mapping)
        self._store = new_store
        for state in self._tenants.values():
            state.owned = {mapping.get(packed, packed)
                           for packed in state.owned}
            for entry in state.tickets.values():
                if entry.packed_locator is not None:
                    entry.packed_locator = mapping.get(
                        entry.packed_locator, entry.packed_locator)
        self._locator_aliases.update(mapping)
        for tag, receipt in report.tagged_receipts.items():
            self._file_tagged(tag, receipt)
        self._pump()  # anything the new store committed since RESUME

    # ------------------------------------------------------------- accounting

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant accounting summary (JSON-safe)."""
        now = self.now
        return {
            name: {
                "durable_records": state.durable_records,
                "pending_deferred": state.pending_deferred,
                "requests": state.requests,
                "accepted": state.accepted,
                "deferred": state.deferred,
                "redeemed": state.redeemed,
                "rejected": state.rejected,
                "tokens_remaining": state.bucket.remaining(now),
            }
            for name, state in self._tenants.items()
        }

    def reconcile(self) -> List[str]:
        """Cross-check tenant accounting against receipts and the bus.

        Returns human-readable discrepancy strings (empty = clean),
        in the style of :func:`repro.obs.reconcile.reconcile_sharded`:

        * every accepted or redeemed write has exactly one owned
          durable locator;
        * every deferral was either redeemed or is still pending;
        * the telemetry bus's per-tenant counters agree with the
          service's own bookkeeping.
        """
        problems: List[str] = []
        for name, state in self._tenants.items():
            durable = len(state.owned)
            expected = state.accepted + state.redeemed
            if durable != expected:
                problems.append(
                    f"tenant {name}: {durable} durable locators but "
                    f"{state.accepted} accepted + {state.redeemed} "
                    f"redeemed writes")
            if state.deferred != state.redeemed + state.pending_deferred:
                problems.append(
                    f"tenant {name}: {state.deferred} deferrals != "
                    f"{state.redeemed} redeemed + "
                    f"{state.pending_deferred} pending")
            if not self.obs.enabled:
                continue
            for suffix in TENANT_COUNTERS:
                bus_value = self.obs.counter(f"service.tenant.{name}.{suffix}")
                own_value = getattr(state, suffix)
                if bus_value != own_value:
                    problems.append(
                        f"tenant {name}: bus counter "
                        f"service.tenant.{name}.{suffix}={bus_value:g} "
                        f"but service accounting says {own_value}")
        return problems
