"""repro.service — the multi-tenant compliance service front-end.

A transport-agnostic, in-process service layer over
:class:`~repro.core.sharded.ShardedWormStore`: tenant namespaces with
quotas and isolated locator spaces, a versioned request/response
contract, RFC 9457 problem payloads keyed on the stable ``code`` slugs
of the :class:`~repro.core.errors.WormError` taxonomy, token-bucket
rate limiting in virtual time with IETF ``RateLimit-*`` headers, and
admission control that sheds write overload into the store's deferred
group-commit machinery (202 + redeemable ticket) instead of dropping
writes.

Quickstart (see TUTORIAL §13)::

    from repro import ShardedWormStore, StoreConfig, demo_keyring
    from repro.service import ServiceRequest, TenantConfig, WormService

    store = ShardedWormStore.build(shard_count=2, keyring=demo_keyring(),
                                   config=StoreConfig(group_commit_size=4))
    service = WormService(store, tenants=[TenantConfig("acme", rate=50)])
    response = service.handle(ServiceRequest(
        operation="write", tenant="acme",
        params={"payload": b"board minutes", "policy": "sox"}))
    assert response.status == 201
"""

from repro.service.contract import (
    OPERATIONS,
    PROTOCOL_VERSION,
    Problem,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.problems import (
    PROBLEM_TYPE_PREFIX,
    STATUS_BY_CODE,
    BacklogFullError,
    BadRequestError,
    PolicyForbiddenError,
    QuotaExceededError,
    RateLimitedError,
    TenantIsolationError,
    UnknownOperationError,
    UnknownTenantError,
    UnknownTicketError,
    UnsupportedVersionError,
    all_error_codes,
    problem_from_error,
    status_for,
)
from repro.service.ratelimit import TokenBucket, ratelimit_headers
from repro.service.service import TENANT_COUNTERS, WormService
from repro.service.tenants import DeferredTicket, TenantConfig, TenantState

__all__ = [
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ServiceRequest",
    "ServiceResponse",
    "Problem",
    "WormService",
    "TenantConfig",
    "TenantState",
    "DeferredTicket",
    "TENANT_COUNTERS",
    "TokenBucket",
    "ratelimit_headers",
    "PROBLEM_TYPE_PREFIX",
    "STATUS_BY_CODE",
    "status_for",
    "problem_from_error",
    "all_error_codes",
    "RateLimitedError",
    "BacklogFullError",
    "UnknownTenantError",
    "TenantIsolationError",
    "PolicyForbiddenError",
    "QuotaExceededError",
    "UnknownOperationError",
    "UnsupportedVersionError",
    "UnknownTicketError",
    "BadRequestError",
]
