"""The versioned request/response contract of the compliance service.

Everything a transport needs is in this module: the protocol version,
the closed set of operation names, and the three wire shapes —
:class:`ServiceRequest`, :class:`ServiceResponse`, and the RFC 9457
:class:`Problem` payload errors travel in.  The shapes are plain
dataclasses with ``to_dict``/``from_dict`` codecs so any transport
(the JSON-lines ``serve`` CLI, a test harness, an embedding
application) can marshal them without importing service internals.

Stability rules, locked by ``tests/service/test_contract.py``:

* ``OPERATIONS`` is append-only; renaming or removing an operation is
  a protocol break and requires a new ``PROTOCOL_VERSION``.
* Every error a caller sees is a :class:`Problem` whose ``code`` comes
  from the stable :class:`~repro.core.errors.WormError` taxonomy (or
  the service-level codes in :mod:`repro.service.problems`) — never a
  Python class name.
* Binary payloads cross the dict codec as ``{"$bytes": <base64>}``
  envelopes, so the JSON form is lossless for WORM record payloads.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ServiceRequest",
    "ServiceResponse",
    "Problem",
    "encode_value",
    "decode_value",
]

#: Version of the request/response contract.  Bumped only on breaking
#: changes (operation renames/removals, problem-payload field changes).
PROTOCOL_VERSION = 1

#: The closed set of operation names (append-only within a version).
OPERATIONS = (
    "write",
    "write_batch",
    "read",
    "read_verified",
    "expire",
    "hold",
    "audit",
    "health",
    "redeem",
)


def encode_value(value):
    """Make *value* JSON-safe: bytes become ``{"$bytes": base64}``."""
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"$bytes"}:
            return base64.b64decode(value["$bytes"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


@dataclass(frozen=True)
class ServiceRequest:
    """One operation offered to the service by (on behalf of) a tenant.

    ``params`` carries the operation's arguments; in-process callers may
    put live objects in it (bytes payloads, credential envelopes), the
    dict codec round-trips the JSON-representable subset.
    """

    operation: str
    tenant: str
    params: Mapping[str, object] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION
    request_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "operation": self.operation,
            "tenant": self.tenant,
            "params": encode_value(dict(self.params)),
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServiceRequest":
        if not isinstance(data, Mapping):
            raise TypeError("a service request is a mapping")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise TypeError("request params must be a mapping")
        return cls(
            operation=str(data.get("operation", "")),
            tenant=str(data.get("tenant", "")),
            params=decode_value(dict(params)),
            version=int(data.get("version", PROTOCOL_VERSION)),
            request_id=(None if data.get("request_id") is None
                        else str(data["request_id"])),
        )


@dataclass(frozen=True)
class Problem:
    """An RFC 9457 problem-details payload.

    ``code`` is the machine-readable identity (the taxonomy slug from
    :attr:`~repro.core.errors.WormError.code` or a service-level code);
    ``type`` is its URI form ``urn:problem-type:strong-worm:<code>``.
    Clients dispatch on ``code``; ``title``/``detail`` are for humans.
    """

    type: str
    title: str
    status: int
    detail: str
    code: str
    instance: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "type": self.type,
            "title": self.title,
            "status": self.status,
            "detail": self.detail,
            "code": self.code,
        }
        if self.instance is not None:
            payload["instance"] = self.instance
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Problem":
        return cls(
            type=str(data["type"]),
            title=str(data["title"]),
            status=int(data["status"]),
            detail=str(data.get("detail", "")),
            code=str(data["code"]),
            instance=(None if data.get("instance") is None
                      else str(data["instance"])),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """The service's answer: HTTP-shaped, transport-agnostic.

    Exactly one of ``body`` (success, including 202 deferred receipts)
    and ``problem`` (any 4xx/5xx) is set.  ``headers`` always includes
    the IETF ``RateLimit-*`` trio for the tenant's bucket; 429s add
    ``Retry-After``.
    """

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, object]] = None
    problem: Optional[Problem] = None
    request_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.problem is None and self.status < 400

    @property
    def deferred(self) -> bool:
        """True for 202 answers: admitted, durable later, redeemable."""
        return self.status == 202

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": self.status,
            "headers": dict(self.headers),
            "request_id": self.request_id,
        }
        if self.problem is not None:
            payload["problem"] = self.problem.to_dict()
        else:
            payload["body"] = encode_value(self.body or {})
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServiceResponse":
        problem = data.get("problem")
        return cls(
            status=int(data["status"]),
            headers={str(k): str(v)
                     for k, v in dict(data.get("headers", {})).items()},
            body=(None if problem is not None
                  else decode_value(dict(data.get("body", {})))),
            problem=None if problem is None else Problem.from_dict(problem),
            request_id=(None if data.get("request_id") is None
                        else str(data["request_id"])),
        )
