"""Token-bucket rate limiting in virtual time, with IETF headers.

The bucket never reads a clock: every method takes ``now`` (the store's
virtual time, ultimately the SCPU clock) so the limiter is exactly as
deterministic as the rest of the simulation — a tenant-bench run with a
fixed seed produces the same admission decisions every time.

Header semantics follow the IETF RateLimit-headers draft, mapped onto a
token bucket the way proxies conventionally do:

* ``RateLimit-Limit`` — the bucket depth (burst capacity);
* ``RateLimit-Remaining`` — whole tokens available right now;
* ``RateLimit-Reset`` — whole seconds until the bucket is full again;
* ``Retry-After`` (429s only) — whole seconds until the refused
  acquisition would succeed, never below 1.

All header values are decimal integers (locked by the RC-3 gate in
``tests/service/test_rate_limit_headers.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = ["TokenBucket", "ratelimit_headers"]


class TokenBucket:
    """A continuously-refilling token bucket over an external clock.

    ``rate`` tokens/second accrue up to a depth of ``burst``.  Time may
    be observed out of order by concurrent callers in principle; a
    ``now`` earlier than the last refill is treated as "no time passed"
    rather than refunding tokens.
    """

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (tokens/second)")
        if burst < 1:
            raise ValueError("burst must be at least 1 token")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = max(self._last, now)
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate)

    def try_acquire(self, now: float, n: int = 1) -> bool:
        """Take *n* tokens if available; False (and no debit) otherwise."""
        if n < 1:
            raise ValueError("must acquire at least one token")
        self._refill(now)
        if self._tokens + 1e-9 >= n:
            self._tokens -= n
            return True
        return False

    def remaining(self, now: float) -> int:
        """Whole tokens available at *now*."""
        self._refill(now)
        return int(math.floor(self._tokens + 1e-9))

    def reset_after(self, now: float) -> float:
        """Seconds until the bucket is full again."""
        self._refill(now)
        return max(0.0, (self.burst - self._tokens) / self.rate)

    def retry_after(self, now: float, n: int = 1) -> float:
        """Seconds until an acquisition of *n* tokens would succeed."""
        self._refill(now)
        deficit = n - self._tokens
        return max(0.0, deficit / self.rate)


def ratelimit_headers(bucket: TokenBucket, now: float,
                      retry_after: Optional[float] = None
                      ) -> Dict[str, str]:
    """The IETF ``RateLimit-*`` trio (plus ``Retry-After`` on refusals)."""
    headers = {
        "RateLimit-Limit": str(bucket.burst),
        "RateLimit-Remaining": str(bucket.remaining(now)),
        "RateLimit-Reset": str(int(math.ceil(bucket.reset_after(now)))),
    }
    if retry_after is not None:
        headers["Retry-After"] = str(max(1, int(math.ceil(retry_after))))
    return headers
