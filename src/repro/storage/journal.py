"""Durable intent journal for the group-commit pending queue.

Between :meth:`ShardedWormStore.submit` and the group-commit flush, an
accepted record exists only in main-CPU memory — a host crash there
would silently lose it.  The intent journal closes that hole with the
classic write-ahead discipline:

* ``append`` — before a record enters the pending queue, its payload and
  write parameters are journalled and assigned an entry id;
* ``mark_committed`` — after its group commit succeeds (the SCPU has
  witnessed the VR), the entry is acknowledged;
* ``replay`` — on construction over an existing journal, every
  journalled-but-unacknowledged entry is returned, in submission order,
  for re-queueing.

Semantics are **at-least-once**: a crash *between* the group commit and
the acknowledgement replays records that were already committed, so a
restarted store may write a payload twice (two SNs, same bytes).  For a
WORM store that is the correct side of the trade — duplicates are
harmless under an immutability regime and deduplicable offline, while a
lost record is a compliance violation.

The journal is untrusted main-CPU state, like the VRDT: it buys
*availability* (no accepted record is forgotten), never integrity — the
SCPU-signed constructs still carry every guarantee.

Two backends share the interface: :class:`MemoryIntentJournal` (tests,
simulated crashes) and :class:`FileIntentJournal` (append-only JSONL on
real disk, surviving process restarts).
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple

from repro.core.errors import JournalError

__all__ = ["JournalEntry", "IntentJournal", "MemoryIntentJournal",
           "FileIntentJournal"]


@dataclass(frozen=True)
class JournalEntry:
    """One journalled submission: the payload and its write parameters."""

    entry_id: int
    payload: bytes
    kwargs: Dict[str, Any]


def _check_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Write kwargs must survive a JSON round-trip to be journalable."""
    try:
        return json.loads(json.dumps(kwargs))
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"write parameters are not journalable (must be JSON-safe): "
            f"{kwargs!r}") from exc


class IntentJournal(ABC):
    """Interface of the submit-intent journal."""

    @abstractmethod
    def append(self, payload: bytes, kwargs: Dict[str, Any]) -> int:
        """Durably record one submission; returns its entry id."""

    @abstractmethod
    def mark_committed(self, entry_ids: Iterable[int]) -> None:
        """Acknowledge entries whose group commit succeeded."""

    @abstractmethod
    def replay(self) -> List[JournalEntry]:
        """Unacknowledged entries in submission order (crash recovery)."""

    @abstractmethod
    def pending_count(self) -> int:
        """Entries appended but not yet acknowledged."""


class MemoryIntentJournal(IntentJournal):
    """In-process journal: survives a *simulated* crash (the test keeps
    the journal object and discards the store), not a real one."""

    def __init__(self) -> None:
        self._next_id = 1
        self._entries: Dict[int, JournalEntry] = {}
        self._order: List[int] = []

    def append(self, payload: bytes, kwargs: Dict[str, Any]) -> int:
        entry_id = self._next_id
        self._next_id += 1
        self._entries[entry_id] = JournalEntry(
            entry_id=entry_id, payload=bytes(payload),
            kwargs=_check_kwargs(kwargs))
        self._order.append(entry_id)
        return entry_id

    def mark_committed(self, entry_ids: Iterable[int]) -> None:
        for entry_id in entry_ids:
            self._entries.pop(entry_id, None)

    def replay(self) -> List[JournalEntry]:
        return [self._entries[i] for i in self._order if i in self._entries]

    def pending_count(self) -> int:
        return len(self._entries)


class FileIntentJournal(IntentJournal):
    """Append-only JSONL journal on real disk.

    Records two line kinds — ``{"op": "submit", ...}`` and
    ``{"op": "commit", "ids": [...]}`` — and fsyncs each append, so the
    recoverable set is exactly what a crashed process had acknowledged
    to its callers.  :meth:`compact` rewrites the file down to the
    unacknowledged entries (call it from a maintenance window; replay
    correctness never requires it).
    """

    def __init__(self, path: os.PathLike) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._next_id = 1
        self._load()  # seeds _next_id past every id ever journalled

    @property
    def path(self) -> Path:
        return self._path

    def _load(self) -> List[JournalEntry]:
        if not self._path.exists():
            return []
        entries: Dict[int, JournalEntry] = {}
        order: List[int] = []
        highest = 0
        for line_no, line in enumerate(
                self._path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op = record["op"]
                if op == "submit":
                    entry = JournalEntry(
                        entry_id=int(record["id"]),
                        payload=bytes.fromhex(record["payload"]),
                        kwargs=dict(record["kwargs"]))
                    entries[entry.entry_id] = entry
                    order.append(entry.entry_id)
                    highest = max(highest, entry.entry_id)
                elif op == "commit":
                    for entry_id in record["ids"]:
                        entries.pop(int(entry_id), None)
                else:
                    raise KeyError(op)  # wormlint: disable=W005 - feeds the torn-line tolerance handler below
            except (KeyError, ValueError, TypeError) as exc:
                # A torn final line (crash mid-append) is expected and
                # safely ignorable; garbage earlier in the file is not.
                if line_no == self._line_count():
                    continue
                raise JournalError(
                    f"corrupt journal line {line_no} in {self._path}") from exc
        self._next_id = max(self._next_id, highest + 1)
        return [entries[i] for i in order if i in entries]

    def _line_count(self) -> int:
        return len(self._path.read_text().splitlines())

    def _append_line(self, record: Dict[str, Any]) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, payload: bytes, kwargs: Dict[str, Any]) -> int:
        entry_id = self._next_id
        self._next_id += 1
        self._append_line({"op": "submit", "id": entry_id,
                           "payload": bytes(payload).hex(),
                           "kwargs": _check_kwargs(kwargs)})
        return entry_id

    def mark_committed(self, entry_ids: Iterable[int]) -> None:
        ids = [int(i) for i in entry_ids]
        if ids:
            self._append_line({"op": "commit", "ids": ids})

    def replay(self) -> List[JournalEntry]:
        return self._load()

    def pending_count(self) -> int:
        return len(self._load())

    def compact(self) -> int:
        """Rewrite the file keeping only unacknowledged entries.

        Returns the number of live entries kept.  Writes to a temp file
        and renames, so a crash mid-compaction leaves either the old or
        the new journal intact.
        """
        live = self._load()
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in live:
                handle.write(json.dumps({
                    "op": "submit", "id": entry.entry_id,
                    "payload": entry.payload.hex(),
                    "kwargs": entry.kwargs}) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self._path)
        return len(live)
