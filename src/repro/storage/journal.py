"""Durable intent journal for the group-commit pending queue.

Between :meth:`ShardedWormStore.submit` and the group-commit flush, an
accepted record exists only in main-CPU memory — a host crash there
would silently lose it.  The intent journal closes that hole with the
classic write-ahead discipline:

* ``append`` — before a record enters the pending queue, its payload and
  write parameters (and, optionally, the caller's correlation *tag*) are
  journalled and assigned an entry id;
* ``mark_committed`` — after its group commit succeeds (the SCPU has
  witnessed the VR), the entry is acknowledged; the committed record's
  packed locator may ride along, so downstream consumers (cross-site
  replication, :mod:`repro.recovery`) can correlate journal entries with
  durable records;
* ``replay`` — on construction over an existing journal, every
  journalled-but-unacknowledged entry is returned, in submission order,
  for re-queueing;
* ``ledger`` — the full history view (committed entries included, with
  their locators), which is what a disaster-recovery pass walks to prove
  every acknowledged write survived the loss of the site.

Semantics are **at-least-once**: a crash *between* the group commit and
the acknowledgement replays records that were already committed, so a
restarted store may write a payload twice (two SNs, same bytes).  For a
WORM store that is the correct side of the trade — duplicates are
harmless under an immutability regime and deduplicable offline, while a
lost record is a compliance violation.

The journal is untrusted main-CPU state, like the VRDT: it buys
*availability* (no accepted record is forgotten), never integrity — the
SCPU-signed constructs still carry every guarantee.

Two backends share the interface: :class:`MemoryIntentJournal` (tests,
simulated crashes) and :class:`FileIntentJournal` (append-only JSONL on
real disk, surviving process restarts).  A third,
:class:`repro.recovery.replication.ReplicatedIntentJournal`, wraps
either and mirrors every operation to a standby site.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.errors import JournalError

__all__ = ["JournalEntry", "LedgerEntry", "IntentJournal",
           "MemoryIntentJournal", "FileIntentJournal"]


@dataclass(frozen=True)
class JournalEntry:
    """One journalled submission: the payload and its write parameters.

    ``tag`` is the caller's opaque correlation handle (``None`` when
    untracked).  Tags must be JSON-safe; tuples survive the round trip
    (JSON lists are converted back on load) so the ``(tenant, ticket)``
    tags of the service layer replay intact.
    """

    entry_id: int
    payload: bytes
    kwargs: Dict[str, Any]
    tag: Optional[object] = None


@dataclass(frozen=True)
class LedgerEntry:
    """One journal entry's full history: intent plus commit outcome.

    ``committed`` is True once the entry was acknowledged;
    ``locator`` is the packed record locator recorded at commit time
    (``None`` for pre-locator journals or callers that did not pass
    one).  The recovery RESUME stage keys on exactly this pair: an
    uncommitted entry is re-queued, and a committed entry whose locator
    never made it into the replicated catalog is re-committed.
    """

    entry_id: int
    payload: bytes
    kwargs: Dict[str, Any]
    tag: Optional[object] = None
    committed: bool = False
    locator: Optional[str] = None


def _check_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Write kwargs must survive a JSON round-trip to be journalable."""
    try:
        return json.loads(json.dumps(kwargs))
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"write parameters are not journalable (must be JSON-safe): "
            f"{kwargs!r}") from exc


def _check_tag(tag: Optional[object]) -> Optional[object]:
    """Tags ride the journal too, so they must be JSON-safe as well."""
    if tag is None:
        return None
    try:
        json.dumps(_tag_to_json(tag))
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"a journalled tag must be JSON-safe: {tag!r}") from exc
    return tag


def _tag_to_json(tag: Optional[object]) -> Optional[object]:
    """Tuples serialize as lists; everything else passes through."""
    if isinstance(tag, tuple):
        return list(tag)
    return tag


def _tag_from_json(value: Optional[object]) -> Optional[object]:
    """Restore the hashable tuple form lists decayed into on disk."""
    if isinstance(value, list):
        return tuple(value)
    return value


class IntentJournal(ABC):
    """Interface of the submit-intent journal."""

    @abstractmethod
    def append(self, payload: bytes, kwargs: Dict[str, Any],
               tag: Optional[object] = None) -> int:
        """Durably record one submission; returns its entry id."""

    @abstractmethod
    def mark_committed(self, entry_ids: Iterable[int],
                       locators: Optional[Sequence[str]] = None) -> None:
        """Acknowledge entries whose group commit succeeded.

        *locators*, when given, parallels *entry_ids* with each
        committed record's packed locator so the ledger can correlate
        intents with durable records.
        """

    @abstractmethod
    def replay(self) -> List[JournalEntry]:
        """Unacknowledged entries in submission order (crash recovery)."""

    @abstractmethod
    def pending_count(self) -> int:
        """Entries appended but not yet acknowledged."""

    def ledger(self) -> List[LedgerEntry]:
        """Full history in submission order (committed entries included).

        Backends that discard committed entries may return only what
        they still know; the default derives a pending-only view from
        :meth:`replay` so legacy backends stay conformant.
        """
        return [LedgerEntry(entry_id=e.entry_id, payload=e.payload,
                            kwargs=e.kwargs, tag=e.tag)
                for e in self.replay()]


class MemoryIntentJournal(IntentJournal):
    """In-process journal: survives a *simulated* crash (the test keeps
    the journal object and discards the store), not a real one."""

    def __init__(self) -> None:
        self._next_id = 1
        self._entries: Dict[int, JournalEntry] = {}
        self._order: List[int] = []
        # Full history for ledger(): entry_id -> (committed, locator).
        self._outcomes: Dict[int, Any] = {}
        self._history: Dict[int, JournalEntry] = {}

    def append(self, payload: bytes, kwargs: Dict[str, Any],
               tag: Optional[object] = None) -> int:
        entry_id = self._next_id
        self._next_id += 1
        entry = JournalEntry(
            entry_id=entry_id, payload=bytes(payload),
            kwargs=_check_kwargs(kwargs), tag=_check_tag(tag))
        self._entries[entry_id] = entry
        self._history[entry_id] = entry
        self._outcomes[entry_id] = (False, None)
        self._order.append(entry_id)
        return entry_id

    def mark_committed(self, entry_ids: Iterable[int],
                       locators: Optional[Sequence[str]] = None) -> None:
        ids = list(entry_ids)
        locs = list(locators) if locators is not None else [None] * len(ids)
        for entry_id, locator in zip(ids, locs):
            self._entries.pop(entry_id, None)
            if entry_id in self._outcomes:
                self._outcomes[entry_id] = (True, locator)

    def replay(self) -> List[JournalEntry]:
        return [self._entries[i] for i in self._order if i in self._entries]

    def pending_count(self) -> int:
        return len(self._entries)

    def ledger(self) -> List[LedgerEntry]:
        out: List[LedgerEntry] = []
        for entry_id in self._order:
            entry = self._history[entry_id]
            committed, locator = self._outcomes[entry_id]
            out.append(LedgerEntry(
                entry_id=entry_id, payload=entry.payload,
                kwargs=entry.kwargs, tag=entry.tag,
                committed=committed, locator=locator))
        return out


class FileIntentJournal(IntentJournal):
    """Append-only JSONL journal on real disk.

    Records two line kinds — ``{"op": "submit", ...}`` and
    ``{"op": "commit", "ids": [...], "locators": [...]}`` — and fsyncs
    each append, so the recoverable set is exactly what a crashed
    process had acknowledged to its callers.  :meth:`compact` rewrites
    the file down to the unacknowledged entries (call it from a
    maintenance window; replay correctness never requires it — but it
    discards ledger history for the compacted-away entries).
    """

    def __init__(self, path: os.PathLike) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._next_id = 1
        self._heal_torn_tail()
        self._load()  # seeds _next_id past every id ever journalled

    @property
    def path(self) -> Path:
        return self._path

    def _heal_torn_tail(self) -> None:
        """Truncate a torn final line (crash mid-append) on open.

        An append is acknowledged only after the full line is written
        and fsynced, so a tail missing its newline was never
        acknowledged to any caller — dropping it loses nothing.  Left
        in place it *would* corrupt the next append, which would merge
        onto the torn prefix and form one unparseable line, silently
        losing the new entry.
        """
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no complete line survives
        with open(self._path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def _scan(self) -> List[LedgerEntry]:
        """Parse the file into ledger entries (torn tail tolerated)."""
        if not self._path.exists():
            return []
        entries: Dict[int, LedgerEntry] = {}
        order: List[int] = []
        highest = 0
        for line_no, line in enumerate(
                self._path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op = record["op"]
                if op == "submit":
                    entry = LedgerEntry(
                        entry_id=int(record["id"]),
                        payload=bytes.fromhex(record["payload"]),
                        kwargs=dict(record["kwargs"]),
                        tag=_tag_from_json(record.get("tag")))
                    entries[entry.entry_id] = entry
                    order.append(entry.entry_id)
                    highest = max(highest, entry.entry_id)
                elif op == "commit":
                    ids = [int(i) for i in record["ids"]]
                    locs = record.get("locators") or [None] * len(ids)
                    for entry_id, locator in zip(ids, locs):
                        prior = entries.get(entry_id)
                        if prior is not None:
                            entries[entry_id] = LedgerEntry(
                                entry_id=prior.entry_id,
                                payload=prior.payload, kwargs=prior.kwargs,
                                tag=prior.tag, committed=True,
                                locator=locator)
                else:
                    raise KeyError(op)  # wormlint: disable=W005 - feeds the torn-line tolerance handler below
            except (KeyError, ValueError, TypeError) as exc:
                # A torn final line (crash mid-append) is expected and
                # safely ignorable; garbage earlier in the file is not.
                if line_no == self._line_count():
                    continue
                raise JournalError(
                    f"corrupt journal line {line_no} in {self._path}") from exc
        self._next_id = max(self._next_id, highest + 1)
        return [entries[i] for i in order]

    def _load(self) -> List[JournalEntry]:
        return [JournalEntry(entry_id=e.entry_id, payload=e.payload,
                             kwargs=e.kwargs, tag=e.tag)
                for e in self._scan() if not e.committed]

    def _line_count(self) -> int:
        return len(self._path.read_text().splitlines())

    def _append_line(self, record: Dict[str, Any]) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, payload: bytes, kwargs: Dict[str, Any],
               tag: Optional[object] = None) -> int:
        entry_id = self._next_id
        self._next_id += 1
        record = {"op": "submit", "id": entry_id,
                  "payload": bytes(payload).hex(),
                  "kwargs": _check_kwargs(kwargs)}
        if _check_tag(tag) is not None:
            record["tag"] = _tag_to_json(tag)
        self._append_line(record)
        return entry_id

    def mark_committed(self, entry_ids: Iterable[int],
                       locators: Optional[Sequence[str]] = None) -> None:
        ids = [int(i) for i in entry_ids]
        if not ids:
            return
        record: Dict[str, Any] = {"op": "commit", "ids": ids}
        if locators is not None:
            record["locators"] = list(locators)
        self._append_line(record)

    def replay(self) -> List[JournalEntry]:
        return self._load()

    def pending_count(self) -> int:
        return len(self._load())

    def ledger(self) -> List[LedgerEntry]:
        return self._scan()

    def compact(self) -> int:
        """Rewrite the file keeping only unacknowledged entries.

        Returns the number of live entries kept.  Writes to a temp file
        and renames, so a crash mid-compaction leaves either the old or
        the new journal intact.
        """
        live = self._load()
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in live:
                record = {"op": "submit", "id": entry.entry_id,
                          "payload": entry.payload.hex(),
                          "kwargs": entry.kwargs}
                if entry.tag is not None:
                    record["tag"] = _tag_to_json(entry.tag)
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self._path)
        return len(live)
