"""Untrusted storage substrate: block store, records, VRDs, and the VRDT."""

from repro.storage.block_store import (
    BlockStore,
    DirectoryBlockStore,
    MemoryBlockStore,
    MissingRecordError,
)
from repro.storage.journal import (
    FileIntentJournal,
    IntentJournal,
    JournalEntry,
    MemoryIntentJournal,
)
from repro.storage.log_store import AppendLogBlockStore
from repro.storage.record import RecordAttributes, RecordDescriptor
from repro.storage.vrd import VirtualRecordDescriptor
from repro.storage.vrdt import DeletionWindow, VrdTable

__all__ = [
    "BlockStore",
    "DirectoryBlockStore",
    "MemoryBlockStore",
    "MissingRecordError",
    "AppendLogBlockStore",
    "FileIntentJournal",
    "IntentJournal",
    "JournalEntry",
    "MemoryIntentJournal",
    "RecordAttributes",
    "RecordDescriptor",
    "VirtualRecordDescriptor",
    "DeletionWindow",
    "VrdTable",
]
