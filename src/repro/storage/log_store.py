"""Append-only log-structured block store.

The disk cost model charges write-path accesses as *sequential*
(:mod:`repro.core.worm` appends records and VRDT slots); this backend is
the layout that makes that true on real media: one log file, records
appended with framed headers, an in-memory index rebuilt by scanning the
log on open.  This is also how actual WORM appliances place data — an
append-only log is the natural physical shape of write-once semantics.

Deletion (shredding) in a log poses a subtlety: you cannot unlink a
record from the middle of a file.  Overwrite passes therefore happen
*in place* at the record's offset (the frame header survives, flagged
dead, so the log remains scannable), and :meth:`compact` rewrites the
log without dead records when reclaimed space matters — the WORM layer's
deletion *proofs* are what make the disappearance legitimate.

Frame layout (all big-endian):

    magic(4) | key_len(2) | key(utf-8) | payload_len(8) | flags(1) | payload
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterator, Tuple

from repro.storage.block_store import BlockStore, MissingRecordError

__all__ = ["AppendLogBlockStore"]

_MAGIC = b"WLG1"
_HEAD = struct.Struct(">4sH")       # magic, key length
_BODY = struct.Struct(">QB")        # payload length, flags
_ALIVE = 0x01
_DEAD = 0x00


class AppendLogBlockStore(BlockStore):
    """All records in one append-only log file."""

    def __init__(self, log_path: os.PathLike) -> None:
        self._path = Path(log_path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if not self._path.exists():
            self._path.write_bytes(b"")
        # key -> (payload offset, length, flag offset)
        self._index: Dict[str, Tuple[int, int, int]] = {}
        self._counter = 0
        self._dead_bytes = 0
        self._scan()

    # -- log scanning --------------------------------------------------------

    def _scan(self) -> None:
        """Rebuild the index from the log (recovery on open)."""
        self._index.clear()
        raw = self._path.read_bytes()
        offset = 0
        while offset < len(raw):
            if len(raw) - offset < _HEAD.size:
                break  # trailing partial write: ignore (torn final frame)
            magic, key_len = _HEAD.unpack_from(raw, offset)
            if magic != _MAGIC:
                raise ValueError(
                    f"log corrupt at offset {offset}: bad frame magic")
            key_start = offset + _HEAD.size
            key = raw[key_start:key_start + key_len].decode("utf-8")
            body_start = key_start + key_len
            if len(raw) - body_start < _BODY.size:
                break
            payload_len, flags = _BODY.unpack_from(raw, body_start)
            payload_start = body_start + _BODY.size
            if len(raw) - payload_start < payload_len:
                break
            if flags & _ALIVE:
                self._index[key] = (payload_start, payload_len,
                                    body_start + 8)
            else:
                self._dead_bytes += payload_len
            try:
                self._counter = max(self._counter, int(key.split("-")[1]))
            except (IndexError, ValueError):
                pass
            offset = payload_start + payload_len

    # -- BlockStore interface ----------------------------------------------------

    def put(self, data: bytes) -> str:
        import secrets
        self._counter += 1
        key = f"rec-{self._counter:012d}-{secrets.token_hex(4)}"
        key_raw = key.encode("utf-8")
        frame = (_HEAD.pack(_MAGIC, len(key_raw)) + key_raw
                 + _BODY.pack(len(data), _ALIVE) + data)
        with self._path.open("ab") as handle:
            offset = handle.tell()
            handle.write(frame)
        payload_start = offset + _HEAD.size + len(key_raw) + _BODY.size
        self._index[key] = (payload_start, len(data),
                            offset + _HEAD.size + len(key_raw) + 8)
        return key

    def get(self, key: str) -> bytes:
        entry = self._index.get(key)
        if entry is None:
            raise MissingRecordError(key)
        payload_start, length, _ = entry
        with self._path.open("rb") as handle:
            handle.seek(payload_start)
            return handle.read(length)

    def overwrite(self, key: str, data: bytes) -> None:
        """In-place overwrite at the record's log offset (shred passes).

        Log-structured stores normally never overwrite; secure deletion
        is the exception — the pattern passes must land on the physical
        sectors the payload occupied.  Length must match exactly.
        """
        entry = self._index.get(key)
        if entry is None:
            raise MissingRecordError(key)
        payload_start, length, _ = entry
        if len(data) != length:
            raise ValueError("log overwrite must preserve payload length")
        with self._path.open("r+b") as handle:
            handle.seek(payload_start)
            handle.write(data)

    def delete(self, key: str) -> None:
        """Mark the frame dead (space reclaimed by :meth:`compact`)."""
        entry = self._index.pop(key, None)
        if entry is None:
            raise MissingRecordError(key)
        _, length, flag_offset = entry
        with self._path.open("r+b") as handle:
            handle.seek(flag_offset)
            handle.write(bytes([_DEAD]))
        self._dead_bytes += length

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._index))

    def size_of(self, key: str) -> int:
        entry = self._index.get(key)
        if entry is None:
            raise MissingRecordError(key)
        return entry[1]

    # -- maintenance ---------------------------------------------------------------

    @property
    def dead_bytes(self) -> int:
        """Payload bytes held by dead frames (compaction candidates)."""
        return self._dead_bytes

    def log_bytes(self) -> int:
        return self._path.stat().st_size

    def compact(self) -> int:
        """Rewrite the log without dead frames; returns bytes reclaimed.

        Live payloads are copied to a fresh log which atomically replaces
        the old one; the index is rebuilt against the new offsets.
        """
        before = self.log_bytes()
        tmp_path = self._path.with_suffix(".compact")
        live = [(key, self.get(key)) for key in self.keys()]
        with tmp_path.open("wb") as handle:
            for key, payload in live:
                key_raw = key.encode("utf-8")
                handle.write(_HEAD.pack(_MAGIC, len(key_raw)) + key_raw
                             + _BODY.pack(len(payload), _ALIVE) + payload)
        os.replace(tmp_path, self._path)
        self._dead_bytes = 0
        self._scan()
        return before - self.log_bytes()
