"""The Virtual Record Descriptor Table (VRDT) — §4.2 item 4, §4.2.1.

The VRDT lives on the *untrusted* main CPU's disk and is indexed by serial
number.  A slot holds either

* the VRD of an **active** VR, or
* the deletion proof ``S_d(SN)`` of an **expired** VR,

while SNs below the signed ``SN_base``, above the signed ``SN_current``,
or inside a signed deletion window are not stored at all — that is the
storage saving the window scheme buys (§4.2.1).

The table also stores the signed window artifacts the main CPU presents to
clients: the current ``S_s(SN_current)`` (timestamped, refreshed every few
minutes), ``S_s(SN_base)`` (with expiry), and the correlated lower/upper
bound pairs of compacted deletion windows.

Being untrusted state, everything here is fair game for the adversary
package: entries can be replaced, artifacts swapped for stale ones — the
security tests check that clients detect all of it.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import MissingRecordError
from repro.crypto.envelope import SignedEnvelope
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = ["VrdTable", "DeletionWindow"]


class DeletionWindow:
    """A compacted contiguous range of expired SNs with signed bounds.

    Both envelopes carry the same ``window_id``; SNs in
    ``[low_sn, high_sn]`` are proven deleted by presenting the pair.
    """

    def __init__(self, lower: SignedEnvelope, upper: SignedEnvelope) -> None:
        self.lower = lower
        self.upper = upper

    @property
    def low_sn(self) -> int:
        return int(self.lower.field("sn"))

    @property
    def high_sn(self) -> int:
        return int(self.upper.field("sn"))

    @property
    def window_id(self) -> str:
        return str(self.lower.field("window_id"))

    def covers(self, sn: int) -> bool:
        return self.low_sn <= sn <= self.high_sn

    def to_dict(self) -> dict:
        return {"lower": self.lower.to_dict(), "upper": self.upper.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "DeletionWindow":
        return cls(lower=SignedEnvelope.from_dict(data["lower"]),
                   upper=SignedEnvelope.from_dict(data["upper"]))


class VrdTable:
    """The on-disk VRDT plus its signed window artifacts (all untrusted)."""

    def __init__(self) -> None:
        self._active: Dict[int, VirtualRecordDescriptor] = {}
        self._deletion_proofs: Dict[int, SignedEnvelope] = {}
        self.sn_current_envelope: Optional[SignedEnvelope] = None
        self.sn_base_envelope: Optional[SignedEnvelope] = None
        self.deletion_windows: List[DeletionWindow] = []
        # block key -> number of *distinct active SNs* referencing it, so
        # shred-eligibility checks don't sweep every active VRD per delete
        self._block_refs: Dict[str, int] = {}
        # lazily rebuilt sorted view of deletion_windows for O(log k)
        # covering lookups; keyed on (id, len) so appends and wholesale
        # replacements of the (public, untrusted) list invalidate it
        self._window_index_key: Tuple[int, int] = (0, -1)
        self._window_starts: List[int] = []
        self._window_order: List[DeletionWindow] = []

    # -- entry management ---------------------------------------------------

    def _retain_blocks(self, vrd: VirtualRecordDescriptor) -> None:
        for key in {rd.key for rd in vrd.rdl}:
            self._block_refs[key] = self._block_refs.get(key, 0) + 1

    def _release_blocks(self, vrd: VirtualRecordDescriptor) -> None:
        for key in {rd.key for rd in vrd.rdl}:
            remaining = self._block_refs.get(key, 0) - 1
            if remaining > 0:
                self._block_refs[key] = remaining
            else:
                self._block_refs.pop(key, None)

    def insert_active(self, vrd: VirtualRecordDescriptor) -> None:
        """Add a freshly written VRD (rejects SN collisions)."""
        if vrd.sn in self._active or vrd.sn in self._deletion_proofs:
            raise ValueError(f"SN {vrd.sn} already present in VRDT")
        self._active[vrd.sn] = vrd
        self._retain_blocks(vrd)

    def replace_active(self, vrd: VirtualRecordDescriptor) -> None:
        """Swap an active VRD in place (signature upgrade, lit_hold)."""
        if vrd.sn not in self._active:
            raise MissingRecordError(f"SN {vrd.sn} is not active")
        self._release_blocks(self._active[vrd.sn])
        self._active[vrd.sn] = vrd
        self._retain_blocks(vrd)

    def get_active(self, sn: int) -> Optional[VirtualRecordDescriptor]:
        return self._active.get(sn)

    def get_deletion_proof(self, sn: int) -> Optional[SignedEnvelope]:
        return self._deletion_proofs.get(sn)

    def mark_expired(self, sn: int, deletion_proof: SignedEnvelope) -> None:
        """Replace an active entry with its deletion proof (§4.2.2 delete)."""
        if sn not in self._active:
            raise MissingRecordError(f"SN {sn} is not active")
        self._release_blocks(self._active[sn])
        del self._active[sn]
        self._deletion_proofs[sn] = deletion_proof

    def drop_proofs(self, sns: Iterator[int]) -> None:
        """Expel deletion proofs (after window compaction / base advance)."""
        for sn in list(sns):
            self._deletion_proofs.pop(sn, None)

    # -- queries -------------------------------------------------------------

    @property
    def active_sns(self) -> Tuple[int, ...]:
        return tuple(sorted(self._active))

    @property
    def expired_sns(self) -> Tuple[int, ...]:
        return tuple(sorted(self._deletion_proofs))

    @property
    def lowest_active_sn(self) -> Optional[int]:
        """``SN_base`` candidate: lowest SN among still-active VRs."""
        return min(self._active) if self._active else None

    def is_active(self, sn: int) -> bool:
        return sn in self._active

    def entry_count(self) -> int:
        """Stored slots: active VRDs + retained deletion proofs."""
        return len(self._active) + len(self._deletion_proofs)

    def proof_count(self) -> int:
        return len(self._deletion_proofs)

    def block_references(self, key: str) -> int:
        """How many distinct active SNs reference block *key*."""
        return self._block_refs.get(key, 0)

    def window_covering(self, sn: int) -> Optional[DeletionWindow]:
        """The compacted deletion window containing *sn*, if any.

        O(log k) via a sorted index over window bounds (windows are
        disjoint by construction), rebuilt lazily whenever the public
        ``deletion_windows`` list is appended to or replaced.
        """
        windows = self.deletion_windows
        key = (id(windows), len(windows))
        if key != self._window_index_key:
            self._window_order = sorted(windows, key=lambda w: w.low_sn)
            self._window_starts = [w.low_sn for w in self._window_order]
            self._window_index_key = key
        idx = bisect.bisect_right(self._window_starts, sn) - 1
        if idx >= 0 and self._window_order[idx].covers(sn):
            return self._window_order[idx]
        return None

    def contiguous_expired_runs(self, minimum: int = 3) -> List[Tuple[int, int]]:
        """Maximal runs of consecutive expired SNs of length ≥ *minimum*.

        These are the candidates the main CPU may ask the SCPU to compact
        into signed deletion windows (§4.2.1 allows segments "of 3 or
        more expired VRs").  A run is only eligible if no *active* SN
        interrupts it — unallocated gaps cannot occur because SNs are
        issued consecutively.
        """
        runs: List[Tuple[int, int]] = []
        expired = sorted(self._deletion_proofs)
        if not expired:
            return runs
        start = prev = expired[0]
        for sn in expired[1:]:
            if sn == prev + 1:
                prev = sn
                continue
            if prev - start + 1 >= minimum:
                runs.append((start, prev))
            start = prev = sn
        if prev - start + 1 >= minimum:
            runs.append((start, prev))
        return runs

    # -- storage accounting (for the compaction benchmark) ---------------------

    def estimated_bytes(self) -> int:
        """Rough on-disk footprint of the table and artifacts.

        VRDs are charged their serialized attribute + RDL + two signature
        sizes; deletion proofs one signature; window artifacts two.  Good
        enough to show the storage effect of compaction.
        """
        total = 0
        for vrd in self._active.values():
            total += 64  # SN, offsets, attr fixed fields
            total += sum(len(rd.key) + 12 for rd in vrd.rdl)
            total += len(vrd.metasig.signature) + len(vrd.datasig.signature)
            total += len(vrd.data_hash)
        for proof in self._deletion_proofs.values():
            total += 16 + len(proof.signature)
        for window in self.deletion_windows:
            total += 32 + len(window.lower.signature) + len(window.upper.signature)
        return total

    # -- serialization (compliant migration) -------------------------------------

    def to_dict(self) -> dict:
        return {
            "active": [vrd.to_dict() for _, vrd in sorted(self._active.items())],
            "deletion_proofs": [proof.to_dict()
                                for _, proof in sorted(self._deletion_proofs.items())],
            "sn_current": (self.sn_current_envelope.to_dict()
                           if self.sn_current_envelope else None),
            "sn_base": (self.sn_base_envelope.to_dict()
                        if self.sn_base_envelope else None),
            "deletion_windows": [w.to_dict() for w in self.deletion_windows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VrdTable":
        table = cls()
        for vrd_data in data["active"]:
            table.insert_active(VirtualRecordDescriptor.from_dict(vrd_data))
        for proof_data in data["deletion_proofs"]:
            proof = SignedEnvelope.from_dict(proof_data)
            table._deletion_proofs[int(proof.field("sn"))] = proof
        if data.get("sn_current"):
            table.sn_current_envelope = SignedEnvelope.from_dict(data["sn_current"])
        if data.get("sn_base"):
            table.sn_base_envelope = SignedEnvelope.from_dict(data["sn_base"])
        table.deletion_windows = [DeletionWindow.from_dict(w)
                                  for w in data.get("deletion_windows", [])]
        return table
