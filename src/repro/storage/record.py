"""Data records, record descriptors, and WORM attributes (Table 1).

The paper keeps the record layer deliberately generic: "data records are
application specific and can be files, inodes, database tuples", and a
*virtual record* (VR) groups records under one retention policy, with
overlap allowed so a popular email attachment is stored once but
referenced from many VRs.

* :class:`RecordDescriptor` (RD) — names one physical record in the
  untrusted block store;
* :class:`RecordAttributes` — the VRD ``attr`` field: creation time,
  retention period, regulation policy, shredding algorithm, litigation
  hold, f_flag, and MAC/DAC labels, exactly the fields Table 1 lists;
* canonical byte encoding so metasig covers the precise attribute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["RecordDescriptor", "RecordAttributes"]


@dataclass(frozen=True)
class RecordDescriptor:
    """A physical data record descriptor (RD).

    ``key`` addresses the record in the block store; ``length`` is its
    payload size.  The VRD's record descriptor list (RDL) is a tuple of
    these.
    """

    key: str
    length: int

    def canonical_bytes(self) -> bytes:
        key_raw = self.key.encode("utf-8")
        return (len(key_raw).to_bytes(4, "big") + key_raw
                + self.length.to_bytes(8, "big"))


@dataclass(frozen=True)
class RecordAttributes:
    """The WORM-related ``attr`` field of a VRD (Table 1).

    All times are in seconds of SCPU (virtual) time.  ``litigation_hold``
    set with a future ``litigation_timeout`` blocks deletion regardless of
    retention expiry (§4.2.2 Litigation); ``f_flag`` is the
    implementation-specific file flag Table 1 mentions; ``mac_label`` /
    ``dac_owner`` carry mandatory/discretionary access-control metadata
    (opaque to the WORM layer, but covered by metasig so an insider cannot
    silently relabel records).
    """

    created_at: float
    retention_seconds: float
    policy: str = "default"
    shredding_algorithm: str = "zero-fill"
    litigation_hold: bool = False
    litigation_timeout: float = 0.0
    litigation_credential_hash: bytes = b""
    f_flag: int = 0
    mac_label: str = ""
    dac_owner: str = ""

    def __post_init__(self) -> None:
        if self.retention_seconds < 0:
            raise ValueError("retention period cannot be negative")
        if self.created_at < 0:
            raise ValueError("creation time cannot be negative")

    @property
    def expires_at(self) -> float:
        """Earliest time the record may be deleted under its policy."""
        return self.created_at + self.retention_seconds

    def deletable_at(self, now: float) -> bool:
        """True when retention has passed and no litigation hold is active.

        A hold with a timeout in the past no longer binds (the court's
        hold window lapsed without renewal).
        """
        if now < self.expires_at:
            return False
        if self.litigation_hold and now < self.litigation_timeout:
            return False
        return True

    def with_hold(self, timeout: float, credential_hash: bytes) -> "RecordAttributes":
        """Return a copy with a litigation hold applied (lit_hold)."""
        return replace(
            self,
            litigation_hold=True,
            litigation_timeout=timeout,
            litigation_credential_hash=credential_hash,
        )

    def with_release(self) -> "RecordAttributes":
        """Return a copy with the litigation hold cleared (lit_release)."""
        return replace(
            self,
            litigation_hold=False,
            litigation_timeout=0.0,
            litigation_credential_hash=b"",
        )

    def canonical_bytes(self) -> bytes:
        """Deterministic encoding — the exact bytes metasig signs over."""
        parts = [
            b"ATTR1",
            int(round(self.created_at * 1e6)).to_bytes(12, "big", signed=True),
            int(round(self.retention_seconds * 1e6)).to_bytes(12, "big", signed=True),
        ]
        for text in (self.policy, self.shredding_algorithm, self.mac_label,
                     self.dac_owner):
            raw = text.encode("utf-8")
            parts.append(len(raw).to_bytes(4, "big"))
            parts.append(raw)
        parts.append(b"\x01" if self.litigation_hold else b"\x00")
        parts.append(int(round(self.litigation_timeout * 1e6)).to_bytes(12, "big", signed=True))
        parts.append(len(self.litigation_credential_hash).to_bytes(4, "big"))
        parts.append(self.litigation_credential_hash)
        parts.append(self.f_flag.to_bytes(4, "big"))
        return b"".join(parts)

    def to_dict(self) -> dict:
        return {
            "created_at": self.created_at,
            "retention_seconds": self.retention_seconds,
            "policy": self.policy,
            "shredding_algorithm": self.shredding_algorithm,
            "litigation_hold": self.litigation_hold,
            "litigation_timeout": self.litigation_timeout,
            "litigation_credential_hash": self.litigation_credential_hash.hex(),
            "f_flag": self.f_flag,
            "mac_label": self.mac_label,
            "dac_owner": self.dac_owner,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordAttributes":
        return cls(
            created_at=float(data["created_at"]),
            retention_seconds=float(data["retention_seconds"]),
            policy=data["policy"],
            shredding_algorithm=data["shredding_algorithm"],
            litigation_hold=bool(data["litigation_hold"]),
            litigation_timeout=float(data["litigation_timeout"]),
            litigation_credential_hash=bytes.fromhex(data["litigation_credential_hash"]),
            f_flag=int(data["f_flag"]),
            mac_label=data["mac_label"],
            dac_owner=data["dac_owner"],
        )
