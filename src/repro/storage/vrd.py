"""Virtual Record Descriptors — Table 1 of the paper.

A VRD is the secure identity of a virtual record:

========  ==================================================================
Field     Description
========  ==================================================================
SN        system-wide unique serial number (issued by the SCPU)
attr      WORM attributes (:class:`~repro.storage.record.RecordAttributes`)
RDL       list of physical record descriptors making up the VR
metasig   SCPU signature on (SN, attr)
datasig   SCPU signature on (SN, Hash(data)) — chained hash over the RDL
========  ==================================================================

``data_hash`` is also carried in the clear so readers can recompute and
compare it without reparsing the datasig envelope; the authoritative copy
is of course the one inside the signed envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.crypto.envelope import SignedEnvelope
from repro.storage.record import RecordAttributes, RecordDescriptor

__all__ = ["VirtualRecordDescriptor"]


@dataclass(frozen=True)
class VirtualRecordDescriptor:
    """One VRD (Table 1).  Immutable; attribute updates produce new VRDs."""

    sn: int
    attr: RecordAttributes
    rdl: Tuple[RecordDescriptor, ...]
    metasig: SignedEnvelope
    datasig: SignedEnvelope
    data_hash: bytes

    def __post_init__(self) -> None:
        if self.sn < 1:
            raise ValueError("serial numbers start at 1")

    @property
    def total_bytes(self) -> int:
        """Total payload size across all records in the VR."""
        return sum(rd.length for rd in self.rdl)

    @property
    def record_count(self) -> int:
        return len(self.rdl)

    @property
    def is_client_verifiable(self) -> bool:
        """False while the witnessing is HMAC-only (§4.3 burst mode)."""
        return self.metasig.scheme != "hmac" and self.datasig.scheme != "hmac"

    def with_signatures(self, metasig: SignedEnvelope,
                        datasig: SignedEnvelope) -> "VirtualRecordDescriptor":
        """Copy with upgraded signatures (deferred strengthening)."""
        return replace(self, metasig=metasig, datasig=datasig)

    def with_attr(self, attr: RecordAttributes,
                  metasig: SignedEnvelope) -> "VirtualRecordDescriptor":
        """Copy with updated attributes + matching fresh metasig (lit_hold)."""
        return replace(self, attr=attr, metasig=metasig)

    def to_dict(self) -> dict:
        return {
            "sn": self.sn,
            "attr": self.attr.to_dict(),
            "rdl": [{"key": rd.key, "length": rd.length} for rd in self.rdl],
            "metasig": self.metasig.to_dict(),
            "datasig": self.datasig.to_dict(),
            "data_hash": self.data_hash.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VirtualRecordDescriptor":
        return cls(
            sn=int(data["sn"]),
            attr=RecordAttributes.from_dict(data["attr"]),
            rdl=tuple(RecordDescriptor(key=rd["key"], length=int(rd["length"]))
                      for rd in data["rdl"]),
            metasig=SignedEnvelope.from_dict(data["metasig"]),
            datasig=SignedEnvelope.from_dict(data["datasig"]),
            data_hash=bytes.fromhex(data["data_hash"]),
        )
