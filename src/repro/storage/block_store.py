"""Untrusted block storage for record payloads.

This is the conventional rewritable magnetic storage under the WORM layer:
the main CPU writes record data here and the insider adversary can rewrite
any of it at will (§2.1 gives Mallory superuser powers and physical disk
access).  Nothing in this package is trusted; detection of tampering comes
entirely from SCPU signatures over data hashes.

Two backends share one interface:

* :class:`MemoryBlockStore` — dict-backed, for tests and simulation;
* :class:`DirectoryBlockStore` — one file per record under a directory,
  for the runnable examples (data survives process restarts, and secure
  deletion visibly overwrites file contents before unlinking).

The explicit :meth:`BlockStore.unchecked_overwrite` models the physical
attack path: it bypasses every WORM check, exactly like an insider pulling
the disk and editing sectors on another machine.
"""

from __future__ import annotations

import os
import secrets
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.core.errors import MissingRecordError

__all__ = ["BlockStore", "MemoryBlockStore", "DirectoryBlockStore", "MissingRecordError"]


class BlockStore(ABC):
    """Interface of the untrusted record payload store."""

    @abstractmethod
    def put(self, data: bytes) -> str:
        """Store *data* under a fresh key; returns the key."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the payload under *key* (raises :class:`MissingRecordError`)."""

    @abstractmethod
    def overwrite(self, key: str, data: bytes) -> None:
        """Overwrite the payload under an existing *key* (shredding passes)."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove *key* entirely."""

    @abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over stored keys."""

    @abstractmethod
    def size_of(self, key: str) -> int:
        """Payload length under *key*."""

    # -- the insider's door -------------------------------------------------

    def unchecked_overwrite(self, key: str, data: bytes) -> None:
        """Rewrite a record the way a physical-access insider would.

        Identical effect to :meth:`overwrite` but named so attack code
        reads honestly; no WORM bookkeeping notices this happened.
        """
        self.overwrite(key, data)


class MemoryBlockStore(BlockStore):
    """Dict-backed store; the default for tests and simulations."""

    def __init__(self) -> None:
        self._blocks: Dict[str, bytes] = {}
        self._counter = 0

    def put(self, data: bytes) -> str:
        self._counter += 1
        key = f"rec-{self._counter:012d}-{secrets.token_hex(4)}"
        self._blocks[key] = bytes(data)
        return key

    def get(self, key: str) -> bytes:
        try:
            return self._blocks[key]
        except KeyError:
            raise MissingRecordError(key) from None

    def overwrite(self, key: str, data: bytes) -> None:
        if key not in self._blocks:
            raise MissingRecordError(key)
        self._blocks[key] = bytes(data)

    def delete(self, key: str) -> None:
        if key not in self._blocks:
            raise MissingRecordError(key)
        del self._blocks[key]

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._blocks))

    def size_of(self, key: str) -> int:
        return len(self.get(key))


class DirectoryBlockStore(BlockStore):
    """One file per record under *root*; used by the example scripts.

    Keys map to flat file names (no nesting), validated so a hostile key
    cannot escape the directory.
    """

    def __init__(self, root: os.PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._counter = self._scan_counter()

    def _scan_counter(self) -> int:
        highest = 0
        for path in self._root.glob("rec-*"):
            try:
                highest = max(highest, int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return highest

    def _path(self, key: str) -> Path:
        if "/" in key or "\\" in key or key.startswith("."):
            raise ValueError(f"invalid record key: {key!r}")
        return self._root / key

    def put(self, data: bytes) -> str:
        self._counter += 1
        key = f"rec-{self._counter:012d}-{secrets.token_hex(4)}"
        self._path(key).write_bytes(data)
        return key

    def get(self, key: str) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise MissingRecordError(key)
        return path.read_bytes()

    def overwrite(self, key: str, data: bytes) -> None:
        path = self._path(key)
        if not path.exists():
            raise MissingRecordError(key)
        path.write_bytes(data)

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not path.exists():
            raise MissingRecordError(key)
        path.unlink()

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        return (p.name for p in sorted(self._root.glob("rec-*")))

    def size_of(self, key: str) -> int:
        path = self._path(key)
        if not path.exists():
            raise MissingRecordError(key)
        return path.stat().st_size
